# Developer conveniences. Everything is plain pytest underneath.

PYTHON ?= python

.PHONY: install test bench bench-report examples reproduce all clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Prints the paper-table reports while running and refreshes benchmarks/out/.
bench-report:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done
	@echo "all examples ran"

# The readable one-shot paper reproduction tour.
reproduce:
	$(PYTHON) examples/reproduce_paper.py

all: test bench examples

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/out
	find . -name __pycache__ -type d -exec rm -rf {} +
