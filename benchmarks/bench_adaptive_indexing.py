"""Adaptive indexing — does the observe → re-plan → hot-swap loop pay off?

The workload-adaptive re-indexer (:mod:`repro.service.adaptive`) promises
three things on a sustained skewed workload, and this harness measures all
of them, writing the machine-readable baseline to
``benchmarks/out/BENCH_adaptive.json``:

1. **Warm-up** — the shared sub-path product cache's hit rate strictly
   improves over successive rounds of the same workload (cold products are
   computed once, then shared by every later query).
2. **Adaptation win** — after one re-index cycle (mining the recorder,
   rebuilding the SPM index around observed hot vertices, hot-swapping it
   atomically), steady-state p99 latency is **no worse** than before the
   swap; hot candidates now gather index rows instead of traversing.
3. **Transparency** — result payloads are byte-identical across
   adaptive-on/adaptive-off and thread/process backends: adaptation may
   only ever change *when* an answer arrives, never *what* it says.

Quick mode: ``BENCH_SMOKE=1`` shrinks the workload and round counts; CI's
adaptive-smoke job uses it to guard the three contracts on every push.
"""

import json
import os
import time

from repro.engine.detector import OutlierDetector
from repro.datagen.workloads import generate_query_set
from repro.query.templates import TEMPLATE_Q1
from repro.service import QueryService, ServiceConfig, canonical_query_key

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

#: Distinct anchored Q1 queries in the cold tail of each round.
DISTINCT_QUERIES = 6 if SMOKE else 16
#: How many times each hot query repeats per round (workload skew).
HOT_REPEATS = 2 if SMOKE else 4
#: Workload rounds per phase; round 1 of each phase is cache warm-up and
#: excluded from the steady-state p99 comparison.
ROUNDS = 3 if SMOKE else 5

#: The hot head of the workload: unanchored full-candidate-set queries
#: over length-4 judged-by paths — the heaviest shape the service sees,
#: so per-query runtime dwarfs scheduler jitter.  Before adaptation every
#: candidate's partial row is traversed; after, the re-indexer has seen
#: all of ``author`` in the candidate sets (relative frequency 1.0) and
#: the swapped SPM index serves the first-segment rows as fancy-indexed
#: gathers.
HOT_WORKLOAD = [
    "FIND OUTLIERS FROM author "
    "JUDGED BY author.paper.author.paper.venue TOP 10;",
    "FIND OUTLIERS FROM author "
    "JUDGED BY author.paper.venue.paper.author TOP 10;",
    "FIND OUTLIERS FROM author "
    "JUDGED BY author.paper.term.paper.author TOP 10;",
]

#: Measurement-noise allowance on the p99 comparison: adaptation promises
#: *no regression* (the sub-path cache already amortizes traversal, so on
#: cache-warm steady state the swap's latency effect is parity-or-better),
#: and a 5% band keeps one scheduler hiccup from failing the run.
P99_NOISE_ALLOWANCE = 1.05


def _distinct_workload(network, size):
    """``size`` distinct, executable anchored Q1 queries."""
    candidates = generate_query_set(network, TEMPLATE_Q1, size * 2, seed=33)
    batch = OutlierDetector(network, strategy="baseline").detect_many(
        list(candidates)
    )
    seen, workload = set(), []
    for position, query in enumerate(candidates):
        if position in batch.errors:
            continue
        key = canonical_query_key(query)
        if key in seen:
            continue
        seen.add(key)
        workload.append(query)
        if len(workload) == size:
            break
    assert len(workload) >= max(2, size // 2), "workload generator starved"
    return workload


def _skewed(cold_workload):
    """The sustained round: hot heavy queries repeated, cold tail once."""
    return HOT_WORKLOAD * HOT_REPEATS + cold_workload


def _adaptive_service(network, *, backend="thread", workers=2):
    config = ServiceConfig(
        workers=workers,
        backend=backend,
        adaptive=True,
        reindex_interval_seconds=3600.0,  # cycles driven explicitly
        reindex_min_queries=1,
        subpath_cache_mb=64.0,
        cache_max_entries=0,  # measure execution, not memoization
        cache_ttl_seconds=None,
    )
    # Row cache off: it would memoize the hot rows in *both* phases and
    # hide the traversal-vs-index-gather delta under measurement noise.
    return QueryService.from_network(
        network, config, strategy="spm", row_cache_rows=0
    )


def _drive_round(service, round_queries):
    """Execute one round serially; per-query latencies in milliseconds."""
    latencies = []
    for query in round_queries:
        start = time.perf_counter()
        service.execute(query)
        latencies.append((time.perf_counter() - start) * 1e3)
    return latencies


def _p99(latencies):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1)))]


def _phase(service, round_queries, rounds):
    """``rounds`` sustained rounds; returns latencies + hit-rate curve.

    The hit-rate curve's first point is sampled right after the phase's
    *first query* — the cache warms within one round on a small segment
    vocabulary, so round-boundary samples alone would plateau immediately.
    """
    cache_stats = lambda: service.stats()["engine"]["subpath_cache"]  # noqa: E731
    latencies_per_round, hit_rate_curve = [], []
    for round_number in range(rounds):
        if round_number == 0:
            first = _drive_round(service, round_queries[:1])
            hit_rate_curve.append(cache_stats()["hit_rate"])
            latencies_per_round.append(
                first + _drive_round(service, round_queries[1:])
            )
        else:
            latencies_per_round.append(_drive_round(service, round_queries))
        hit_rate_curve.append(cache_stats()["hit_rate"])
    steady_rounds = latencies_per_round[1:] or latencies_per_round
    steady = [latency for round_ms in steady_rounds for latency in round_ms]
    # Phase p99 = median of per-round p99s: one GC pause or scheduler
    # hiccup can only poison one round, not the phase estimate.
    round_p99s = sorted(_p99(round_ms) for round_ms in steady_rounds)
    return {
        "rounds": rounds,
        "queries_per_round": len(round_queries),
        "hit_rate_curve": hit_rate_curve,
        "p99_ms": round_p99s[len(round_p99s) // 2],
        "p99_per_round_ms": round_p99s,
        "p50_ms": sorted(steady)[len(steady) // 2],
    }


def test_adaptation_pays_off(benchmark, bench_network, report, json_report):
    """Acceptance: hit rate strictly improves; p99 no worse after the swap."""
    workload = _distinct_workload(bench_network, DISTINCT_QUERIES)
    round_queries = _skewed(workload)

    def run():
        with _adaptive_service(bench_network) as service:
            before = _phase(service, round_queries, ROUNDS)
            swapped = service.reindex_now()
            index_meta = service.stats()["engine"]["index"]
            after = _phase(service, round_queries, ROUNDS)
            reindexer = service.reindexer.stats()
        return before, swapped, index_meta, after, reindexer

    before, swapped, index_meta, after, reindexer = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    hit_rate_improves = before["hit_rate_curve"][-1] > before["hit_rate_curve"][0]
    p99_no_worse = after["p99_ms"] <= before["p99_ms"] * P99_NOISE_ALLOWANCE

    lines = [
        f"adaptive indexing over {len(round_queries)} queries/round "
        f"({len(HOT_WORKLOAD)} hot x{HOT_REPEATS}, {ROUNDS} rounds/phase)",
        "",
        f"{'phase':>8} {'p50 ms':>9} {'p99 ms':>9} {'hit-rate curve'}",
        f"{'before':>8} {before['p50_ms']:>9.2f} {before['p99_ms']:>9.2f} "
        + " ".join(f"{rate:.2f}" for rate in before["hit_rate_curve"]),
        f"{'after':>8} {after['p50_ms']:>9.2f} {after['p99_ms']:>9.2f} "
        + " ".join(f"{rate:.2f}" for rate in after["hit_rate_curve"]),
        "",
        f"swap landed: {swapped}; index generation "
        f"{index_meta['generation']}, row coverage "
        f"{index_meta['row_coverage']:.3f}",
        f"sub-path hit rate strictly improving: {hit_rate_improves}",
        f"p99 no worse after adaptation: {p99_no_worse} "
        f"({before['p99_ms']:.2f} -> {after['p99_ms']:.2f} ms)",
    ]
    report("adaptive_indexing", "\n".join(lines))
    json_report(
        "BENCH_adaptive",
        {
            "smoke": SMOKE,
            "workload": {
                "cold_distinct": len(workload),
                "hot": len(HOT_WORKLOAD),
                "hot_repeats": HOT_REPEATS,
                "rounds_per_phase": ROUNDS,
            },
            "before": before,
            "after": after,
            "swap_landed": swapped,
            "index": {
                "generation": index_meta["generation"],
                "row_coverage": index_meta["row_coverage"],
            },
            "reindexer": {
                "cycles": reindexer["cycles"],
                "reindexes": reindexer["reindexes"],
                "last_reindex_unix": reindexer["last_reindex_unix"],
            },
            "hit_rate_strictly_improving": hit_rate_improves,
            "p99_no_worse_after_adaptation": p99_no_worse,
        },
    )

    assert swapped, "the re-index cycle never swapped an index in"
    assert index_meta["generation"] >= 1
    assert hit_rate_improves, (
        f"sub-path hit rate flat: {before['hit_rate_curve']}"
    )
    assert p99_no_worse, (
        f"p99 regressed: {before['p99_ms']:.2f} -> {after['p99_ms']:.2f} ms"
    )


def test_adaptation_is_transparent(benchmark, bench_network, report):
    """Acceptance: byte-identical payloads across adaptive on/off and
    thread/process backends (adaptation changes latency, never answers)."""
    workload = _distinct_workload(bench_network, max(4, DISTINCT_QUERIES // 2))

    def collect(backend, adaptive):
        if adaptive:
            service = _adaptive_service(
                bench_network, backend=backend, workers=2
            )
        else:
            config = ServiceConfig(
                workers=2,
                backend=backend,
                cache_max_entries=0,
                cache_ttl_seconds=None,
            )
            service = QueryService.from_network(
                bench_network, config, strategy="spm"
            )
        with service:
            if adaptive:
                for query in workload:
                    service.execute(query)
                assert service.reindex_now(), "adaptive leg never swapped"
            results = [service.execute(query) for query in workload]
            return json.dumps(
                [result.to_dict() for result in results], sort_keys=True
            )

    def sweep():
        return {
            f"{backend}/{'adaptive' if adaptive else 'static'}": collect(
                backend, adaptive
            )
            for backend in ("thread", "process")
            for adaptive in (False, True)
        }

    payloads = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reference = payloads["thread/static"]
    identical = {leg: payload == reference for leg, payload in payloads.items()}

    lines = [
        f"payload identity over {len(workload)} distinct Q1 queries",
        "",
    ] + [f"{leg:>18}: {'identical' if ok else 'DIVERGED'}"
         for leg, ok in sorted(identical.items())]
    report("adaptive_transparency", "\n".join(lines))

    assert all(identical.values()), (
        "adaptation changed answers: "
        + ", ".join(leg for leg, ok in identical.items() if not ok)
    )
