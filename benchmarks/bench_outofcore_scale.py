"""Benchmark — million-vertex scale on the mmap/out-of-core tier.

The paper's target corpora (AMiner: 2.4M papers) never fit the in-RAM
assumption the rest of this harness makes, so this module exercises the
large-graph tier end to end:

1. **Scale leg** (runs first, so its RSS attribution is clean): stream a
   ≥1M-vertex synthetic network straight onto ``storage="mmap"``, build
   the full PM index **out-of-core** in bounded row blocks
   (:func:`~repro.engine.index.build_pm_index_blocked`), reload it
   zero-copy via :func:`~repro.engine.index_io.load_index_mmap`, and run
   warm queries — sampling resident set size throughout.  The headline
   numbers: peak RSS during the whole mmap leg versus the in-RAM footprint
   the same network + index would occupy (both reported, bound asserted).
2. **RAM reference leg** (full mode): the same network and in-core PM
   build held in RAM, for the warm-latency comparison (mmap must stay
   within 2x on warm paths) and full-scale score parity.
3. **Parity grid**: ``ram``/``mmap`` storage x in-core/blocked build must
   produce *byte-identical* scores — plus the same check for the bounded
   SPM build against its blocked counterpart.

Artifacts land in ``benchmarks/out/``:

* ``outofcore_scale.txt`` — human-readable summary;
* ``BENCH_scale.json`` — machine-readable baseline (vertex count, build
  times, ``rss_peak_mb`` per leg, warm latencies, parity verdicts).

Quick mode: ``BENCH_SMOKE=1`` (CI's scale-smoke job) shrinks the corpus to
a few thousand vertices, skips the RAM reference leg's latency bound (too
noisy at that scale), and replaces the RSS bound with its structural
equivalent — every index and adjacency buffer must be file-backed
(``np.memmap``), i.e. the bytes live on disk, not in the resident set.
"""

import os
import tempfile
import threading
import time

import numpy as np

from repro.datagen.synthetic import (
    StreamingCorpusConfig,
    streaming_bibliographic_network,
)
from repro.engine.detector import OutlierDetector
from repro.engine.index import (
    build_pm_index,
    build_pm_index_blocked,
    build_spm_index_blocked,
    build_spm_index_bounded,
)
from repro.engine.index_io import load_index_mmap
from repro.hin.network import VertexId
from repro.hin.storage import MmapArrayStore, is_store_backed
from repro.utils.sparsetools import csr_storage_bytes

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

SCALE_CONFIG = (
    StreamingCorpusConfig(
        num_papers=4_000,
        num_authors=1_500,
        num_venues=60,
        num_terms=900,
        chunk_papers=1_500,
    )
    if SMOKE
    else StreamingCorpusConfig()  # ~1.08M vertices (defaults)
)

GRID_CONFIG = StreamingCorpusConfig(
    num_papers=2_500,
    num_authors=1_000,
    num_venues=40,
    num_terms=600,
    chunk_papers=900,
)

SEED = 2015

#: Warm-path query anchors: ``a0`` is the most prolific author by
#: construction (Zipf rank 1), the rest step down the popularity curve.
ANCHORS = ("a0", "a1", "a2", "a5", "a10", "a20")

BLOCK_ROWS = 512 if SMOKE else 8192


def _query(anchor: str, top: int = 10) -> str:
    return (
        f'FIND OUTLIERS FROM author{{"{anchor}"}}.paper.author '
        f"JUDGED BY author.paper.venue TOP {top};"
    )


class RssSampler:
    """Samples ``VmRSS`` on a background thread; peak attributable per phase.

    ``VmHWM`` (the kernel high-water mark, what ``json_report`` records) is
    monotone over the process lifetime, so a leg that must *prove* its
    bound needs its own sampled peak — started before the leg, read after.
    """

    def __init__(self, interval: float = 0.05) -> None:
        self._interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.peak_mb = 0.0

    @staticmethod
    def current_mb() -> float:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
        return 0.0  # pragma: no cover - VmRSS always present on Linux

    def _run(self) -> None:
        while not self._stop.is_set():
            self.peak_mb = max(self.peak_mb, self.current_mb())
            self._stop.wait(self._interval)

    def __enter__(self) -> "RssSampler":
        self.peak_mb = self.current_mb()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
        self.peak_mb = max(self.peak_mb, self.current_mb())


def _network_footprint_bytes(network) -> int:
    return sum(
        csr_storage_bytes(network.adjacency(et.source, et.target))
        for et in network.schema.edge_types
    )


def _warm_latencies(detector, queries):
    """Median per-query latency on the second (warm) pass, in ms."""
    for query in queries:  # warm: touch every row/page once
        detector.detect(query)
    samples = []
    for query in queries:
        start = time.perf_counter()
        detector.detect(query)
        samples.append((time.perf_counter() - start) * 1e3)
    return float(np.median(samples)), samples


def _scores_of(detector, queries):
    results = []
    for query in queries:
        result = detector.detect(query)
        results.append(sorted(result.scores.items()))
    return results


def test_outofcore_scale(report, json_report):
    queries = [_query(anchor) for anchor in ANCHORS]
    payload: dict = {
        "smoke": SMOKE,
        "config": {
            "num_papers": SCALE_CONFIG.num_papers,
            "num_authors": SCALE_CONFIG.num_authors,
            "num_venues": SCALE_CONFIG.num_venues,
            "num_terms": SCALE_CONFIG.num_terms,
            "block_rows": BLOCK_ROWS,
        },
        "num_vertices": SCALE_CONFIG.num_vertices,
    }
    lines = [
        "million-vertex scale: mmap storage + blocked out-of-core PM build",
        f"sizes: {'quick (BENCH_SMOKE)' if SMOKE else 'full'}",
        "",
        f"vertices: {SCALE_CONFIG.num_vertices:,} "
        f"(papers={SCALE_CONFIG.num_papers:,} authors={SCALE_CONFIG.num_authors:,} "
        f"venues={SCALE_CONFIG.num_venues:,} terms={SCALE_CONFIG.num_terms:,})",
    ]

    # ---- Leg 1: mmap tier, out-of-core build (first: clean RSS) ------
    with tempfile.TemporaryDirectory(prefix="repro-scale-") as workdir:
        store_dir = os.path.join(workdir, "pm-index")
        with RssSampler() as mmap_rss:
            baseline_mb = RssSampler.current_mb()
            t0 = time.perf_counter()
            network = streaming_bibliographic_network(
                SCALE_CONFIG, seed=SEED, storage="mmap", storage_dir=workdir
            )
            gen_seconds = time.perf_counter() - t0
            t0 = time.perf_counter()
            build_pm_index_blocked(
                network, block_rows=BLOCK_ROWS, store=MmapArrayStore(store_dir)
            )
            build_seconds = time.perf_counter() - t0
            index = load_index_mmap(store_dir)
            detector = OutlierDetector(network, strategy="pm", index=index)
            warm_ms, _ = _warm_latencies(detector, queries)
        mmap_scores = _scores_of(detector, queries)

        # The bytes the RAM tier would hold resident: every adjacency
        # matrix plus every materialized index matrix (here they live on
        # disk instead — sum the store's files for the index part).
        index_disk_bytes = sum(
            os.path.getsize(os.path.join(store_dir, f))
            for f in os.listdir(store_dir)
        )
        in_ram_estimate_mb = (
            _network_footprint_bytes(network) + index_disk_bytes
        ) / 1e6
        edges = int(network.num_edges())

        # Structural bound (asserted in every mode): the matrices the
        # detector serves from are file-backed views, not resident copies.
        for edge_type in network.schema.edge_types:
            assert is_store_backed(
                network.adjacency(edge_type.source, edge_type.target)
            )
        for path in index.paths:
            assert is_store_backed(index.full_matrix(path))

        payload["scale_leg"] = {
            "edges": edges,
            "generate_seconds": round(gen_seconds, 2),
            "build_seconds": round(build_seconds, 2),
            "baseline_rss_mb": round(baseline_mb, 1),
            "peak_rss_mb": round(mmap_rss.peak_mb, 1),
            "in_ram_footprint_mb": round(in_ram_estimate_mb, 1),
            "index_disk_mb": round(index_disk_bytes / 1e6, 1),
            "warm_query_median_ms": round(warm_ms, 3),
        }
        lines += [
            f"edges: {edges:,}",
            f"generate: {gen_seconds:.1f}s   blocked PM build: {build_seconds:.1f}s "
            f"(block_rows={BLOCK_ROWS})",
            f"index on disk: {index_disk_bytes / 1e6:,.0f} MB",
            f"in-RAM footprint (adjacency + index): {in_ram_estimate_mb:,.0f} MB",
            f"peak RSS during mmap leg: {mmap_rss.peak_mb:,.0f} MB "
            f"(baseline {baseline_mb:,.0f} MB)",
            f"warm query median: {warm_ms:.2f} ms",
        ]

        if not SMOKE:
            assert SCALE_CONFIG.num_vertices >= 1_000_000
            # The point of the tier: the whole out-of-core leg must stay
            # well below what the RAM tier would hold resident.
            assert mmap_rss.peak_mb < 0.5 * in_ram_estimate_mb, (
                f"mmap leg peak RSS {mmap_rss.peak_mb:.0f} MB not well below "
                f"in-RAM footprint {in_ram_estimate_mb:.0f} MB"
            )

        # ---- Leg 2: RAM reference (full mode only at scale) ----------
        if not SMOKE:
            network_ram = streaming_bibliographic_network(SCALE_CONFIG, seed=SEED)
            t0 = time.perf_counter()
            detector_ram = OutlierDetector(network_ram, strategy="pm")
            ram_build_seconds = time.perf_counter() - t0
            ram_warm_ms, _ = _warm_latencies(detector_ram, queries)
            ram_scores = _scores_of(detector_ram, queries)
            assert ram_scores == mmap_scores, "full-scale ram/mmap score drift"
            payload["ram_leg"] = {
                "build_seconds": round(ram_build_seconds, 2),
                "warm_query_median_ms": round(ram_warm_ms, 3),
                "index_ram_mb": round(detector_ram.index_size_bytes() / 1e6, 1),
            }
            lines += [
                "",
                f"RAM reference: in-core build {ram_build_seconds:.1f}s, "
                f"index {detector_ram.index_size_bytes() / 1e6:,.0f} MB resident, "
                f"warm query median {ram_warm_ms:.2f} ms",
                f"warm-path ratio mmap/ram: {warm_ms / ram_warm_ms:.2f}x",
                "full-scale scores: byte-identical across tiers",
            ]
            payload["warm_ratio"] = round(warm_ms / ram_warm_ms, 3)
            assert warm_ms <= 2.0 * ram_warm_ms, (
                f"warm mmap queries {warm_ms:.2f} ms exceed 2x the RAM tier "
                f"({ram_warm_ms:.2f} ms)"
            )
            del detector_ram, network_ram

    # ---- Leg 3: parity grid (small, exact) ---------------------------
    grid_queries = [_query(anchor, top=5) for anchor in ("a0", "a1", "a3")]
    legs = {}
    with tempfile.TemporaryDirectory(prefix="repro-grid-") as workdir:
        for storage in ("ram", "mmap"):
            kwargs = {"storage": storage}
            if storage == "mmap":
                kwargs["storage_dir"] = os.path.join(workdir, "net")
            net = streaming_bibliographic_network(GRID_CONFIG, seed=7, **kwargs)
            for build in ("incore", "blocked"):
                if build == "incore":
                    index = build_pm_index(net)
                else:
                    index = build_pm_index_blocked(
                        net,
                        block_rows=97,  # deliberately unaligned block size
                        store=MmapArrayStore(
                            os.path.join(workdir, f"{storage}-idx")
                        )
                        if storage == "mmap"
                        else None,
                    )
                detector = OutlierDetector(net, strategy="pm", index=index)
                legs[(storage, build)] = _scores_of(detector, grid_queries)

        reference = legs[("ram", "incore")]
        for key, scores in legs.items():
            assert scores == reference, f"score drift in leg {key}"

        # SPM: byte-budgeted bounded build vs its blocked counterpart.
        net = streaming_bibliographic_network(GRID_CONFIG, seed=7)
        ranked = [VertexId("author", i) for i in range(40)]
        budget = 200_000
        bounded_index, admitted = build_spm_index_bounded(
            net, ranked, max_bytes=budget
        )
        blocked_index, admitted_blocked = build_spm_index_blocked(
            net,
            ranked,
            max_bytes=budget,
            block_rows=7,
            store=MmapArrayStore(os.path.join(workdir, "spm")),
        )
        assert admitted == admitted_blocked
        spm_queries = [_query("a0", top=5)]
        spm_a = _scores_of(
            OutlierDetector(net, strategy="spm", index=bounded_index), spm_queries
        )
        spm_b = _scores_of(
            OutlierDetector(net, strategy="spm", index=blocked_index), spm_queries
        )
        assert spm_a == spm_b, "SPM bounded/blocked score drift"

    payload["parity"] = {
        "pm_grid_legs": sorted("/".join(k) for k in legs),
        "pm_grid_identical": True,
        "spm_admitted": len(admitted),
        "spm_identical": True,
    }
    lines += [
        "",
        "parity grid (ram/mmap x in-core/blocked): scores byte-identical "
        f"across {len(legs)} legs",
        f"SPM bounded vs blocked: {len(admitted)} vertices admitted, "
        "scores byte-identical",
    ]

    report("outofcore_scale", "\n".join(lines))
    json_report("BENCH_scale", payload)
