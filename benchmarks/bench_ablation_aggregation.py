"""Ablation — sum vs min vs max aggregation of normalized connectivity.

Section 5.2 argues for summing κ over the reference set: the minimum is
degenerate (most candidates are completely disconnected from at least one
reference vertex) and the maximum rewards one moderate connection over
uniformly weak connections.  This bench quantifies both arguments on the
benchmark ego query.
"""

import numpy as np
import pytest

from repro.core.measures import NetOutMeasure
from repro.engine.executor import QueryExecutor
from repro.engine.strategies import PMStrategy

QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.venue TOP 10;"
)


@pytest.mark.parametrize("aggregation", ["sum", "mean", "min", "max"])
def test_aggregation_timing(benchmark, bench_network, aggregation):
    benchmark.group = "ablation-aggregation"
    executor = QueryExecutor(
        PMStrategy(bench_network), measure=NetOutMeasure(aggregation)
    )
    result = benchmark(executor.execute, QUERY)
    assert len(result) == 10


def test_aggregation_report(benchmark, bench_corpus, bench_network, report):
    def run_all():
        results = {}
        for aggregation in ("sum", "mean", "min", "max"):
            executor = QueryExecutor(
                PMStrategy(bench_network), measure=NetOutMeasure(aggregation)
            )
            results[aggregation] = executor.execute(QUERY)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    min_scores = np.array(list(results["min"].scores.values()))
    zero_fraction = float((min_scores == 0).mean())

    lines = ["aggregation ablation on the hub ego query (paper §5.2)", ""]
    for aggregation, result in results.items():
        lines.append(f"{aggregation:>5}: top-5 = {result.names()[:5]}")
    lines.append("")
    lines.append(
        f"min degeneracy: {zero_fraction:.0%} of candidates have Ω_min = 0 "
        "(disconnected from at least one reference vertex) — the paper's "
        "argument against min"
    )
    lines.append(
        "sum and mean produce the same ranking (mean = sum / |Sr|); "
        "max rewards a single moderate connection"
    )
    report("ablation_aggregation", "\n".join(lines))

    # The paper's degeneracy argument: min zeroes out most candidates.
    assert zero_fraction > 0.5
    # sum and mean rank identically (scale by constant |Sr|).
    assert results["sum"].names() == results["mean"].names()
    # The planted cross-field outliers survive only under sum/mean.
    assert set(results["sum"].names()[:5]) == set(bench_corpus.cross_field)
