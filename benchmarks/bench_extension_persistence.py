"""Extension bench — index persistence (offline build, ship, reload).

The PM index is built offline (§6.2) and, in any production deployment,
shipped between processes.  This bench measures save/load cost and on-disk
size for the benchmark corpus, and asserts reloads are result-identical.
"""

import time

import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.index import build_pm_index
from repro.engine.index_io import load_index, save_index
from repro.engine.strategies import PMStrategy

QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.venue TOP 5;"
)


@pytest.fixture(scope="module")
def pm_index(bench_network):
    return build_pm_index(bench_network)


def test_save_timing(benchmark, pm_index, tmp_path_factory):
    benchmark.group = "extension-persistence"
    target = tmp_path_factory.mktemp("save")

    def save():
        save_index(pm_index, target / "index")

    benchmark.pedantic(save, rounds=1, iterations=1)


def test_load_timing(benchmark, pm_index, tmp_path_factory):
    benchmark.group = "extension-persistence"
    target = tmp_path_factory.mktemp("load") / "index"
    save_index(pm_index, target)
    index = benchmark.pedantic(load_index, args=(target,), rounds=1, iterations=1)
    assert index.size_bytes() == pm_index.size_bytes()


def test_persistence_report(benchmark, bench_network, pm_index, tmp_path_factory, report):
    target = tmp_path_factory.mktemp("report") / "index"

    def cycle():
        start = time.perf_counter()
        save_index(pm_index, target)
        save_seconds = time.perf_counter() - start
        start = time.perf_counter()
        index = load_index(target)
        load_seconds = time.perf_counter() - start
        disk_bytes = sum(f.stat().st_size for f in target.iterdir())
        return index, save_seconds, load_seconds, disk_bytes

    index, save_seconds, load_seconds, disk_bytes = benchmark.pedantic(
        cycle, rounds=1, iterations=1
    )

    original = QueryExecutor(PMStrategy(bench_network, index=pm_index)).execute(QUERY)
    reloaded = QueryExecutor(PMStrategy(bench_network, index=index)).execute(QUERY)

    lines = [
        "PM index persistence on the benchmark corpus",
        "",
        f"in-memory index size : {pm_index.size_bytes() / 1e6:8.2f} MB "
        "(CSR accounting)",
        f"on-disk size         : {disk_bytes / 1e6:8.2f} MB (npz, compressed)",
        f"save time            : {save_seconds * 1e3:8.1f} ms",
        f"load time            : {load_seconds * 1e3:8.1f} ms",
        "",
        f"reload is result-identical: {original.names() == reloaded.names()}",
    ]
    report("extension_persistence", "\n".join(lines))

    assert original.names() == reloaded.names()
    assert disk_bytes > 0
