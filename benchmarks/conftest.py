"""Shared fixtures and reporting helpers for the benchmark harness.

Every module in this directory regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  Benchmarks print their tables to stdout
(run with ``pytest benchmarks/ --benchmark-only -s`` to watch) and also
write them to ``benchmarks/out/`` so EXPERIMENTS.md can reference stable
artifacts.

Scale note: the paper's corpus has 2.2M papers and its query sets 10,000
queries; this harness defaults to a few thousand papers and O(100) queries
per set — large enough for the relative effects (who wins, by what factor)
to be stable, small enough to run in seconds.  See DESIGN.md §2 for the
substitution rationale.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.datagen.synthetic import EgoNetworkSpec, GeneratorConfig, hub_ego_corpus
from repro.datagen.workloads import generate_query_set
from repro.query.templates import QUERY_TEMPLATES

OUT_DIR = Path(__file__).parent / "out"

#: Queries per template set (the paper uses 10,000; see module docstring).
QUERY_SET_SIZE = 120

BENCH_CONFIG = GeneratorConfig(
    num_communities=5,
    authors_per_community=250,
    venues_per_community=12,
    terms_per_community=200,
    common_terms=50,
    papers_per_community=1200,
    # The paper's corpus is ~1000x larger, so even a tiny missing-author rate
    # gives its NULL marker an enormous record scattered over thousands of
    # venues; at this scale the rate must be higher for NULL to accumulate an
    # equivalent profile (Table 5, query 3 surfaces it among the top
    # outliers — its Ω sinks as its visibility grows quadratically).
    missing_author_prob=0.08,
    missing_venue_prob=0.005,
)


# At benchmark scale the reference set is much richer than in the unit-test
# corpus, so the cross-field archetype needs proportionally more foreign
# output (higher visibility) for the Table 3 separation to match the paper:
# established authors with hundreds of papers, like the paper's examples.
BENCH_EGO_SPEC = EgoNetworkSpec(
    hub_papers=80,
    cross_field_papers=(180, 320),
    cross_field_home_papers=4,
    seed=2015,
)


@pytest.fixture(scope="session")
def bench_corpus():
    """The benchmark corpus: synthetic DBLP-like network + planted ego groups."""
    return hub_ego_corpus(config=BENCH_CONFIG, spec=BENCH_EGO_SPEC)


@pytest.fixture(scope="session")
def bench_network(bench_corpus):
    return bench_corpus.network


@pytest.fixture(scope="session")
def query_sets(bench_network):
    """{template name: list of query strings} for Q1-Q3 (paper Table 4)."""
    return {
        template.name: generate_query_set(
            bench_network, template, QUERY_SET_SIZE, seed=7
        )
        for template in QUERY_TEMPLATES
    }


def write_report(name: str, text: str) -> None:
    """Print a benchmark report and persist it under ``benchmarks/out/``."""
    OUT_DIR.mkdir(exist_ok=True)
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    print(banner + text)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def report():
    return write_report


def rss_peak_mb() -> float:
    """This process's lifetime peak resident set size, in MB.

    Reads ``VmHWM`` (the kernel's high-water mark) so the number covers
    everything since process start — it can only grow, so per-phase
    attribution needs explicit sampling (see ``bench_outofcore_scale``).
    Falls back to ``ru_maxrss`` where ``/proc`` is unavailable.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def write_json_report(name: str, payload: dict) -> None:
    """Persist a machine-readable benchmark baseline under ``benchmarks/out/``.

    Text reports are for humans; JSON baselines let CI (and future
    sessions) diff benchmark results without parsing tables.  Every
    baseline carries an ``rss_peak_mb`` field so memory regressions are
    pinned alongside latency (payloads may pre-set a more precise value).
    """
    OUT_DIR.mkdir(exist_ok=True)
    payload = dict(payload)
    payload.setdefault("rss_peak_mb", round(rss_peak_mb(), 1))
    (OUT_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.fixture(scope="session")
def json_report():
    return write_json_report
