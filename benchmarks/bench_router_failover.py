"""Replica-router failover overhead — chaos benchmark for ``repro route``.

The fault-tolerance contract of :mod:`repro.service.router` is only worth
its complexity if (a) routing through it does not change any answer and
(b) losing a replica costs a blip, not the fleet.  This harness measures
both, over real HTTP against in-thread replicas:

1. **Correctness** — every query's ``result`` payload routed through the
   fleet is byte-identical (canonical JSON) to the same query answered by
   a single direct replica.
2. **Failover overhead** — killing a replica mid-run must leave
   steady-state qps (the rounds after the disruption) within 10% of the
   same run's pre-kill steady state — the no-kill baseline; every client
   request through the kill still answers 200.  The comparison is *paired*
   (windows of one run, same process, seconds apart) because on a shared
   box two separate runs routinely differ by >10% from scheduler noise
   alone — a cross-run ratio would benchmark the machine, not the router.

The machine-readable baseline lands in ``benchmarks/out/BENCH_router.json``.
Quick mode (``BENCH_SMOKE=1``, CI's bench-smoke job) shrinks the workload
and rounds; the asserted contract is identical.
"""

import json
import os
import statistics
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.datagen.workloads import generate_query_set
from repro.engine.detector import OutlierDetector
from repro.query.templates import TEMPLATE_Q1
from repro.service import (
    QueryService,
    Router,
    RouterConfig,
    ServiceConfig,
    make_router_server,
    make_server,
)
from repro.service.cache import canonical_query_key

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

WORKLOAD_SIZE = 12 if SMOKE else 32
ROUNDS = 8 if SMOKE else 10
CLIENT_THREADS = 4 if SMOKE else 8
#: The kill lands mid-round KILL_ROUND; round 0 is the cold warmup.
KILL_ROUND = 4 if SMOKE else 5
#: Rounds per steady-state window (pre-kill and post-kill); the window
#: statistic is the *median*, so one scheduler hiccup cannot fail the run.
STEADY_ROUNDS = 3


class _Replica:
    """One in-thread QueryService + HTTP server (stoppable = killable)."""

    def __init__(self, network):
        import threading

        # Result caching off: every request recomputes, so round qps is
        # compute-bound and stable — a cached workload would measure
        # thread-scheduling noise instead of serving capacity.
        self.service = QueryService.from_network(
            network,
            ServiceConfig(workers=2, cache_max_entries=0),
            strategy="pm",
        )
        self.server = make_server(self.service)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()
        self.host, self.port = self.server.server_address[:2]
        self.stopped = False

    def kill(self):
        """Abrupt stop: the listening socket dies like a SIGKILLed process."""
        if self.stopped:
            return
        self.stopped = True
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10.0)

    def close(self):
        self.kill()
        self.service.close()


def _post(host, port, query):
    import http.client

    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        body = json.dumps({"query": query}).encode("utf-8")
        connection.request(
            "POST", "/query", body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _canonical_result(payload: dict) -> bytes:
    """The answer alone, canonical JSON — ``elapsed_ms``/``cached`` vary."""
    return json.dumps(payload["result"], sort_keys=True).encode("utf-8")


def _workload(network) -> list[str]:
    """Distinct executable queries (canonical forms unique)."""
    candidates = generate_query_set(
        network, TEMPLATE_Q1, WORKLOAD_SIZE * 3, seed=11
    )
    batch = OutlierDetector(network, strategy="baseline").detect_many(
        list(candidates)
    )
    seen, workload = set(), []
    for position, query in enumerate(candidates):
        if position in batch.errors:
            continue
        key = canonical_query_key(query)
        if key in seen:
            continue
        seen.add(key)
        workload.append(query)
        if len(workload) == WORKLOAD_SIZE:
            break
    assert len(workload) >= max(8, WORKLOAD_SIZE // 2)
    return workload


def _run_rounds(host, port, workload, *, kill_round=None, on_kill=None):
    """Drive ``ROUNDS`` concurrent rounds; returns (per-round qps, payloads,
    statuses).  ``on_kill()`` fires once, mid-round ``kill_round``."""
    qps, payloads, statuses = [], {}, []
    with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
        for round_number in range(ROUNDS):
            started = time.perf_counter()
            futures = [
                pool.submit(_post, host, port, query) for query in workload
            ]
            if round_number == kill_round and on_kill is not None:
                on_kill()
                on_kill = None
            for query, future in zip(workload, futures):
                status, payload = future.result()
                statuses.append(status)
                if status == 200:
                    payloads[canonical_query_key(query)] = _canonical_result(
                        payload
                    )
            qps.append(len(workload) / (time.perf_counter() - started))
    return qps, payloads, statuses


def _fleet(network, count=3):
    replicas = {f"replica-{i}": _Replica(network) for i in range(count)}
    router = Router(
        list(replicas),
        RouterConfig(
            probe_interval_seconds=0.2,
            attempt_timeout_seconds=10.0,
            failover_backoff_seconds=0.0,
            breaker_threshold=2,
            breaker_reset_seconds=1.0,
        ),
    )
    for replica_id, replica in replicas.items():
        router.set_replica_address(replica_id, replica.host, replica.port)
    return replicas, router


@pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")
def test_router_failover_overhead(bench_network, json_report, report):
    import threading

    workload = _workload(bench_network)

    # -- Baseline: one direct replica, no router in the path -------------
    direct = _Replica(bench_network)
    try:
        _, direct_payloads, direct_statuses = _run_rounds(
            direct.host, direct.port, workload
        )
    finally:
        direct.close()
    assert all(status == 200 for status in direct_statuses)

    # -- Chaos run: one fleet, a SIGKILL-equivalent mid-run ---------------
    replicas, router = _fleet(bench_network)
    server = make_router_server(router)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    victim = router.ring.owner(canonical_query_key(workload[0]))
    try:
        qps, routed_payloads, routed_statuses = _run_rounds(
            host,
            port,
            workload,
            kill_round=KILL_ROUND,
            on_kill=replicas[victim].kill,
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)
        for replica in replicas.values():
            replica.close()

    # -- Correctness: routing (and failover) never changes an answer -----
    assert routed_payloads == direct_payloads
    # -- Availability: the kill is invisible to clients -------------------
    assert all(status == 200 for status in routed_statuses)

    # -- Overhead: post-kill steady state vs the same run's pre-kill ------
    # window (round 0 is the cold warmup; the kill round itself is the
    # disruption being absorbed, so neither window includes it).
    before = qps[KILL_ROUND - STEADY_ROUNDS : KILL_ROUND]
    after = qps[-STEADY_ROUNDS:]
    steady_before = statistics.median(before)
    steady_after = statistics.median(after)
    ratio = steady_after / steady_before

    lines = [
        f"workload: {len(workload)} distinct queries x {ROUNDS} rounds, "
        f"{CLIENT_THREADS} client threads, 3 replicas",
        "qps per round: "
        + ", ".join(f"{value:.1f}" for value in qps)
        + f"   ({victim} killed during round {KILL_ROUND + 1})",
        f"steady-state qps: before kill {steady_before:.1f}, "
        f"after kill {steady_after:.1f}  (ratio {ratio:.3f})",
        f"payloads byte-identical to direct replica: "
        f"{len(direct_payloads)} queries",
    ]
    report("BENCH_router_failover", "\n".join(lines))
    json_report(
        "BENCH_router",
        {
            "mode": "smoke" if SMOKE else "full",
            "workload_size": len(workload),
            "rounds": ROUNDS,
            "kill_round": KILL_ROUND,
            "client_threads": CLIENT_THREADS,
            "replicas": 3,
            "qps_per_round": [round(v, 2) for v in qps],
            "steady_state_qps_before_kill": round(steady_before, 2),
            "steady_state_qps_after_kill": round(steady_after, 2),
            "steady_state_ratio": round(ratio, 4),
            "payloads_identical_to_direct": True,
            "client_failures": sum(1 for s in routed_statuses if s != 200),
        },
    )

    # The fleet must absorb the loss: post-kill steady state within 10%
    # of the pre-kill (no-kill baseline) steady state.
    assert ratio >= 0.9, (
        f"steady-state qps degraded {1 - ratio:.1%} after a replica kill "
        f"(before {steady_before:.1f}, after {steady_after:.1f})"
    )
