"""Detector zoo — NetOut vs every baseline on the planted scenario grid.

The cross-detector comparison behind ``docs/detector_zoo.md``: every
registered detector (NetOut through the query engine plus the seven
baseline methods) runs over every planted-outlier scenario archetype, and
the grid's ROC AUC / precision@k / average precision lands in
``benchmarks/out/BENCH_zoo.{txt,json}``.

The headline observation mirrors the paper's Section 8: no single method
dominates the grid.  NetOut and the vector-space detectors win the
attribute archetypes; graph-walk methods (PPR) win the fraud ring, where
the anomaly is *where you are connected*, not *what your profile looks
like* — exactly the query-dependence argument motivating query-based
detection.

Quick mode: ``BENCH_SMOKE=1`` (CI's bench-smoke job) switches to the
scenarios' small sizes.
"""

from __future__ import annotations

import os

from repro.zoo import ZooRunConfig, render_summary, run_zoo, strip_timings

SMOKE = os.environ.get("BENCH_SMOKE") == "1"


def test_detector_zoo_grid(benchmark, report, json_report):
    config = ZooRunConfig(seeds=(0,), k=5, quick=SMOKE)
    result_report = benchmark.pedantic(run_zoo, args=(config,), rounds=1, iterations=1)

    lines = [
        "detector zoo: ROC AUC / precision@5 / AP per (detector, scenario)",
        f"sizes: {'quick (BENCH_SMOKE)' if SMOKE else 'full'}",
        "",
        render_summary(result_report),
        "",
    ]

    # Per-scenario winners by AUC — the no-free-lunch summary.
    best: dict[str, tuple[str, float]] = {}
    for entry in result_report["results"]:
        auc = entry["metrics"]["roc_auc"]
        scenario = entry["scenario"]
        if scenario not in best or auc > best[scenario][1]:
            best[scenario] = (entry["detector"], auc)
    lines.append("best detector per scenario (by AUC):")
    for scenario, (detector, auc) in best.items():
        lines.append(f"  {scenario:<20} {detector:<10} AUC {auc:.3f}")

    report("BENCH_zoo", "\n".join(lines))
    json_report("BENCH_zoo", strip_timings(result_report))

    # Every cell of the grid was evaluated.
    expected = len(result_report["detectors"]) * len(result_report["scenarios"])
    assert len(result_report["results"]) == expected
    # No universal winner: different scenarios crown different detectors
    # (the zoo's reason to exist).
    assert len({detector for detector, _ in best.values()}) >= 2
    # The planted outliers are detectable: some detector achieves a strong
    # AUC on every scenario.
    assert all(auc >= 0.8 for _, auc in best.values())
