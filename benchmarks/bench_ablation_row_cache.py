"""Ablation — cross-query row caching on top of each strategy.

Workloads repeat hub vertices (every coauthor query in a community re-reads
the same prolific authors' vectors), so an LRU row cache composes with the
paper's indexes: it removes repeated traversals from the Baseline, repeated
traversal *misses* from SPM, and mostly measures overhead on PM.
"""

import pytest

from repro.engine.caching import CachingStrategy
from repro.engine.executor import QueryExecutor
from repro.engine.strategies import make_strategy
from repro.engine.optimizer import WorkloadAnalyzer


def _spm_strategy(network, workload):
    analyzer = WorkloadAnalyzer(network)
    analyzer.analyze_many(workload)
    return make_strategy(network, "spm", index=analyzer.build_index(0.01))


@pytest.mark.parametrize("base", ["baseline", "spm", "pm"])
@pytest.mark.parametrize("cached", [False, True], ids=["plain", "cached"])
def test_cache_timing(benchmark, bench_network, query_sets, base, cached):
    workload = query_sets["Q1"]
    if base == "spm":
        strategy = _spm_strategy(bench_network, workload)
    else:
        strategy = make_strategy(bench_network, base)
    if cached:
        strategy = CachingStrategy(strategy, max_rows=50_000)
    executor = QueryExecutor(strategy, collect_stats=False)
    benchmark.group = f"row-cache-{base}"

    def run():
        results, __ = executor.execute_many(list(workload), skip_failures=True)
        return len(results)

    executed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert executed > 0


def test_cache_report(benchmark, bench_network, query_sets, report):
    import time

    workload = query_sets["Q1"]

    def sweep():
        rows = []
        for base in ("baseline", "spm", "pm"):
            for cached in (False, True):
                if base == "spm":
                    strategy = _spm_strategy(bench_network, workload)
                else:
                    strategy = make_strategy(bench_network, base)
                cache = None
                if cached:
                    cache = CachingStrategy(strategy, max_rows=50_000)
                    strategy = cache
                executor = QueryExecutor(strategy, collect_stats=False)
                start = time.perf_counter()
                executor.execute_many(list(workload), skip_failures=True)
                elapsed = time.perf_counter() - start
                hit_rate = cache.hit_rate if cache is not None else 0.0
                rows.append((base, cached, elapsed * 1e3, hit_rate))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"LRU row cache over {len(query_sets['Q1'])} Q1 queries",
        "",
        f"{'strategy':>9} {'cached':>7} {'total ms':>9} {'hit rate':>9}",
    ]
    timings = {}
    for base, cached, elapsed_ms, hit_rate in rows:
        timings[(base, cached)] = elapsed_ms
        lines.append(
            f"{base:>9} {str(cached):>7} {elapsed_ms:>9.1f} {hit_rate:>9.2f}"
        )
    lines.append("")
    lines.append(
        "shape: caching pays where materialization is expensive (baseline, "
        "SPM misses) and is near-neutral on PM"
    )
    report("ablation_row_cache", "\n".join(lines))

    assert timings[("baseline", True)] < timings[("baseline", False)]
