"""Ablation — multi-meta-path combination modes (paper §5.1's open choice).

Section 5.1: "Finding outliers given a collection of weighted feature
meta-paths can be done in a number of ways.  The connectivity between
vertices can be redefined, or independent outlier scores can be computed
considering each feature meta-path independently and then averaged.  We
leave the problem of determining the best method to a future study."

This bench runs that future study at small scale: the three candidate
methods (score averaging, rank averaging, combined connectivity) on the
paper's two-path query (venues + coauthors), measuring planted-outlier
recovery and cost.
"""

import pytest

from repro.engine.detector import OutlierDetector
from repro.engine.executor import QueryExecutor
from repro.engine.strategies import PMStrategy

QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.venue, author.paper.author TOP 10;"
)


@pytest.mark.parametrize("mode", QueryExecutor.COMBINE_MODES)
def test_combination_timing(benchmark, bench_network, mode):
    benchmark.group = "ablation-combination"
    detector = OutlierDetector(bench_network, strategy="pm", combine=mode)
    result = benchmark(detector.detect, QUERY)
    assert len(result) == 10


def test_combination_report(benchmark, bench_corpus, bench_network, report):
    planted = set(bench_corpus.cross_field) | set(bench_corpus.students)

    def run_all():
        results = {}
        for mode in QueryExecutor.COMBINE_MODES:
            detector = OutlierDetector(bench_network, strategy="pm", combine=mode)
            results[mode] = detector.detect(QUERY)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "multi-meta-path combination (venues + coauthors, top-10)",
        "",
        f"{'mode':>13} {'planted recovered':>18}   top-5",
    ]
    recovery = {}
    for mode, result in results.items():
        names = result.names()
        recovered = len(set(names) & planted)
        recovery[mode] = recovered
        lines.append(f"{mode:>13} {recovered:>15d}/10   {names[:5]}")
    lines.append("")
    lines.append(
        "the paper leaves the choice open (§5.1); all three surface the "
        "planted outliers, with rank averaging immune to per-path scale "
        "differences and combined connectivity cheapest (one scoring pass)"
    )
    report("ablation_combination", "\n".join(lines))

    for mode, recovered in recovery.items():
        assert recovered >= 5, f"{mode} lost the planted outliers"
