"""Ablation — strategy scaling with network size.

The paper evaluates on one fixed (2.2M-paper) corpus; this bench sweeps the
synthetic corpus size to show how the Baseline/PM gap grows with scale —
the reason indexing matters on their corpus even though all strategies are
fast on toy networks.  Also reports PM index build time and size per scale
(the offline cost the paper's online numbers exclude).
"""

import time

import pytest

from repro.datagen.synthetic import BibliographicNetworkGenerator, GeneratorConfig
from repro.datagen.workloads import generate_query_set
from repro.engine.detector import OutlierDetector
from repro.engine.index import build_pm_index
from repro.query.templates import TEMPLATE_Q1

SCALES = {
    "small": GeneratorConfig(
        num_communities=3, authors_per_community=100, venues_per_community=6,
        terms_per_community=80, papers_per_community=300,
    ),
    "medium": GeneratorConfig(
        num_communities=4, authors_per_community=200, venues_per_community=8,
        terms_per_community=150, papers_per_community=800,
    ),
    "large": GeneratorConfig(
        num_communities=5, authors_per_community=300, venues_per_community=10,
        terms_per_community=250, papers_per_community=1800,
    ),
}

QUERIES_PER_SCALE = 40


def _build(scale_name):
    network = BibliographicNetworkGenerator(SCALES[scale_name], seed=1).build_network()
    workload = generate_query_set(network, TEMPLATE_Q1, QUERIES_PER_SCALE, seed=2)
    return network, workload


@pytest.fixture(scope="module")
def corpora():
    return {name: _build(name) for name in SCALES}


@pytest.mark.parametrize("scale", list(SCALES), ids=list(SCALES))
def test_pm_index_build(benchmark, corpora, scale):
    network, __ = corpora[scale]
    benchmark.group = "scaling-index-build"
    index = benchmark.pedantic(build_pm_index, args=(network,), rounds=1, iterations=1)
    assert index.size_bytes() > 0


@pytest.mark.parametrize("scale", list(SCALES), ids=list(SCALES))
@pytest.mark.parametrize("strategy", ["baseline", "pm"])
def test_strategy_scaling(benchmark, corpora, scale, strategy):
    network, workload = corpora[scale]
    detector = OutlierDetector(network, strategy=strategy)
    benchmark.group = f"scaling-{scale}"

    def run():
        results, __ = detector.detect_many(workload, skip_failures=True)
        return len(results)

    executed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert executed > 0


def test_scaling_report(benchmark, corpora, report):
    def sweep():
        rows = []
        for scale, (network, workload) in corpora.items():
            start = time.perf_counter()
            index = build_pm_index(network)
            build_seconds = time.perf_counter() - start
            timings = {}
            for strategy in ("baseline", "pm"):
                detector = OutlierDetector(network, strategy=strategy)
                __, stats = detector.detect_many(workload, skip_failures=True)
                timings[strategy] = stats.wall_seconds * 1e3
            rows.append(
                (
                    scale,
                    network.num_vertices(),
                    network.num_edges(),
                    timings["baseline"],
                    timings["pm"],
                    build_seconds * 1e3,
                    index.size_bytes(),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"strategy scaling, {QUERIES_PER_SCALE} Q1 queries per corpus",
        "",
        f"{'scale':>7} {'vertices':>9} {'edges':>8} {'Baseline ms':>12} "
        f"{'PM ms':>8} {'speedup':>8} {'build ms':>9} {'index MB':>9}",
    ]
    speedups = []
    for scale, vertices, edges, baseline_ms, pm_ms, build_ms, size in rows:
        speedups.append(baseline_ms / pm_ms)
        lines.append(
            f"{scale:>7} {vertices:>9d} {edges:>8d} {baseline_ms:>12.1f} "
            f"{pm_ms:>8.1f} {baseline_ms / pm_ms:>7.1f}x {build_ms:>9.1f} "
            f"{size / 1e6:>9.2f}"
        )
    lines.append("")
    lines.append(
        "shape: the Baseline/PM gap grows with corpus size — at the paper's "
        "2.2M-paper scale this is the 5-100x of Figure 3"
    )
    report("ablation_scaling", "\n".join(lines))

    assert all(s > 1.0 for s in speedups)
    assert speedups[-1] > speedups[0], "speedup should grow with scale"
