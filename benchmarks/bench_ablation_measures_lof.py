"""Ablation — NetOut vs classical detectors (LOF, kNN-distance) on the
planted ego outliers.

Section 8 of the paper reports that substituting classical algorithms such
as LOF "cannot produce better results than NetOut" for its queries.  We
replay that comparison: each detector scores the hub's coauthors by their
venue neighbor vectors, and we measure precision@10 against the planted
ground truth (cross-field authors + students = 10 true outliers).
"""

import numpy as np
import pytest

from repro.baselines.cdoutlier import community_distribution_outliers
from repro.baselines.knn_outlier import knn_distance_scores
from repro.baselines.lof import local_outlier_factor
from repro.core.measures import NetOutMeasure
from repro.engine.evaluator import SetEvaluator
from repro.engine.strategies import PMStrategy
from repro.metapath.metapath import MetaPath
from repro.query.parser import parse_set_expression

PV = MetaPath.parse("author.paper.venue")


@pytest.fixture(scope="module")
def candidate_data(bench_corpus):
    network = bench_corpus.network
    strategy = PMStrategy(network)
    evaluator = SetEvaluator(strategy)
    __, members = evaluator.evaluate(
        parse_set_expression('author{"Prof. Hub"}.paper.author')
    )
    phi = strategy.neighbor_matrix(PV, members)
    names = network.vertex_names("author")
    member_names = [names[i] for i in members]
    truth = set(bench_corpus.cross_field) | set(bench_corpus.students)
    return phi, member_names, truth


def _precision_at(k, ordered_names, truth):
    return len(set(ordered_names[:k]) & truth) / k


@pytest.mark.parametrize("method", ["netout", "lof", "knn", "cdoutlier"])
def test_detector_timing(benchmark, candidate_data, method):
    phi, __, __ = candidate_data
    benchmark.group = "ablation-detectors"
    dense = np.asarray(phi.todense())
    if method == "netout":
        benchmark(NetOutMeasure().score, phi, phi)
    elif method == "lof":
        benchmark(local_outlier_factor, dense, 10)
    elif method == "cdoutlier":
        benchmark.pedantic(
            community_distribution_outliers,
            args=(dense,),
            kwargs={"communities": 4, "patterns": 3, "seed": 0},
            rounds=1,
            iterations=1,
        )
    else:
        benchmark(knn_distance_scores, dense, 10)


def test_detector_quality_report(benchmark, candidate_data, report):
    phi, member_names, truth = candidate_data
    dense = np.asarray(phi.todense())

    def run_all():
        netout = NetOutMeasure().score(phi, phi)
        lof = local_outlier_factor(dense, min_pts=10)
        knn = knn_distance_scores(dense, k=10)
        cd = community_distribution_outliers(
            dense, communities=4, patterns=3, seed=0
        ).scores
        return netout, lof, knn, cd

    netout, lof, knn, cd = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # NetOut: ascending (low = outlier); the rest: descending.
    by_netout = [member_names[i] for i in np.argsort(netout)]
    by_lof = [member_names[i] for i in np.argsort(-lof)]
    by_knn = [member_names[i] for i in np.argsort(-knn)]
    by_cd = [member_names[i] for i in np.argsort(-cd)]

    rows = [
        ("NetOut", by_netout),
        ("LOF", by_lof),
        ("kNN-dist", by_knn),
        ("CDOutlier", by_cd),
    ]
    lines = [
        f"planted-outlier recovery among {len(member_names)} hub coauthors "
        f"({len(truth)} planted outliers)",
        "",
        f"{'method':>9} {'P@5':>6} {'P@10':>6}   top-5",
    ]
    precisions = {}
    for label, ordered in rows:
        p5 = _precision_at(5, ordered, truth)
        p10 = _precision_at(10, ordered, truth)
        precisions[label] = p10
        lines.append(f"{label:>9} {p5:>6.2f} {p10:>6.2f}   {ordered[:5]}")
    lines.append("")
    lines.append(
        "paper's claim (§8): classical detectors (e.g. LOF) do not produce "
        "better results than NetOut on query-based HIN outliers"
    )
    report("ablation_measures_lof", "\n".join(lines))

    assert precisions["NetOut"] >= precisions["LOF"]
    assert precisions["NetOut"] >= precisions["kNN-dist"]
    assert precisions["NetOut"] >= precisions["CDOutlier"]
    assert precisions["NetOut"] >= 0.8
