"""Service throughput — worker-pool scaling, cache speedup, overload bursts.

The concurrent query service (:mod:`repro.service`) exists to amortize one
shared PM index across many callers.  This harness demonstrates the three
properties the design promises:

1. **Scaling** — a pool of 8 workers sustains ≥3x the qps of 1 worker on a
   workload of distinct queries.  Pure in-process scoring is GIL-bound, so
   the benchmark models the deployment the service layer targets: a measure
   whose scoring includes a short *remote index-shard fetch* (a sleep — it
   releases the GIL exactly as socket I/O would), on top of the real NetOut
   arithmetic.
2. **Caching** — a repeated workload is answered from the canonical-form
   result cache at a large multiple of cold qps.
3. **Bounded overload** — a burst far beyond ``workers + queue_depth``
   sheds the excess with typed ``ServiceOverloadedError`` (retry hints
   attached); every admitted request still completes correctly, and nothing
   hangs.
4. **Backend scaling** — on a CPU-bound (GIL-serialized) workload the
   process backend's qps scales with workers where the thread backend's
   cannot, with byte-identical results; the curve lands in
   ``benchmarks/out/BENCH_service.json``.

Quick mode: set ``BENCH_SMOKE=1`` to shrink the backend-scaling sweep
(smaller workload, 1-and-2-worker points, relaxed floor); CI's bench-smoke
job uses it to guard the thread/process parity and scaling direction on
every push.
"""

import json
import os
import time
from concurrent.futures import wait

from repro.core.measures import NetOutMeasure
from repro.datagen.workloads import generate_query_set
from repro.engine.index import build_pm_index
from repro.exceptions import ServiceOverloadedError
from repro.query.templates import TEMPLATE_Q1
from repro.service import (
    EngineHandle,
    QueryService,
    ServiceConfig,
    canonical_query_key,
)
from repro.service.simload import GilBoundNetOutMeasure

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

#: Simulated per-score remote fetch; sleep releases the GIL like socket I/O.
REMOTE_FETCH_SECONDS = 0.008
WORKLOAD_SIZE = 48


class RemoteNetOutMeasure(NetOutMeasure):
    """NetOut with each scoring call preceded by a remote index fetch."""

    name = "netout-remote"

    def __init__(self, delay_seconds: float = REMOTE_FETCH_SECONDS) -> None:
        super().__init__()
        self.delay_seconds = delay_seconds

    def score(self, phi_candidates, phi_reference):
        time.sleep(self.delay_seconds)
        return super().score(phi_candidates, phi_reference)


def _distinct_workload(network, size):
    """``size`` distinct, executable queries (unique canonical forms)."""
    from repro.engine.detector import OutlierDetector

    candidates = generate_query_set(network, TEMPLATE_Q1, size * 2, seed=21)
    batch = OutlierDetector(network, strategy="baseline").detect_many(
        list(candidates)
    )
    seen, workload = set(), []
    for position, query in enumerate(candidates):
        if position in batch.errors:
            continue
        key = canonical_query_key(query)
        if key in seen:
            continue
        seen.add(key)
        workload.append(query)
        if len(workload) == size:
            break
    assert len(workload) >= size // 2, "workload generator starved"
    return workload


def _drive(service, workload):
    """Submit the whole workload, wait for every future; returns qps."""
    start = time.perf_counter()
    futures = [service.submit(query) for query in workload]
    wait(futures, timeout=120.0)
    elapsed = time.perf_counter() - start
    for future in futures:
        future.result(timeout=0)  # surface any failure loudly
    return len(futures) / elapsed


def test_worker_pool_scaling(benchmark, bench_network, report):
    """Acceptance: >= 3x qps at 8 workers vs 1 on distinct queries."""
    workload = _distinct_workload(bench_network, WORKLOAD_SIZE)
    pm_index = build_pm_index(bench_network)

    def sweep():
        qps = {}
        for workers in (1, 2, 4, 8):
            handle = EngineHandle(
                bench_network,
                strategy="pm",
                index=pm_index,
                measure=RemoteNetOutMeasure(),
                collect_stats=False,
            )
            config = ServiceConfig(
                workers=workers,
                queue_depth=len(workload),
                cache_max_entries=0,  # measure execution, not memoization
                collect_stats=False,
            )
            with QueryService(handle, config) as service:
                qps[workers] = _drive(service, workload)
        return qps

    qps = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"worker-pool scaling over {WORKLOAD_SIZE} distinct Q1 queries",
        f"(netout + {REMOTE_FETCH_SECONDS * 1e3:.0f} ms simulated remote "
        "index fetch per scoring call)",
        "",
        f"{'workers':>8} {'qps':>8} {'speedup':>8}",
    ]
    for workers in sorted(qps):
        lines.append(
            f"{workers:>8} {qps[workers]:>8.1f} {qps[workers] / qps[1]:>7.2f}x"
        )
    speedup = qps[8] / qps[1]
    lines += ["", f"8-worker speedup: {speedup:.2f}x (acceptance floor: 3x)"]
    report("service_throughput_scaling", "\n".join(lines))

    assert speedup >= 3.0, f"8 workers only {speedup:.2f}x over 1 worker"


#: Backend-scaling sweep parameters.  The GIL-emulating measure makes the
#: workload architecturally CPU-bound (see repro.service.simload): threads
#: serialize on a per-process lock exactly as they would on the GIL, so the
#: curve is deterministic on any host, including 1-core CI runners.
SCALING_WORKERS = (1, 2) if SMOKE else (1, 2, 4, 8)
SCALING_WORKLOAD = 12 if SMOKE else 48
SCALING_COMPUTE_SECONDS = 0.02
#: Acceptance floor for process-over-thread qps at the top worker count.
SCALING_FLOOR = 1.4 if SMOKE else 3.0


def test_backend_scaling(benchmark, bench_network, report, json_report):
    """Acceptance: >= 3x qps for the process backend over the thread
    backend at 8 workers on a CPU-bound mix, with byte-identical results."""
    workload = _distinct_workload(bench_network, SCALING_WORKLOAD)
    pm_index = build_pm_index(bench_network)
    measure = GilBoundNetOutMeasure(compute_seconds=SCALING_COMPUTE_SECONDS)

    def run(backend, workers, collect=False):
        handle = EngineHandle(
            bench_network,
            strategy="pm",
            index=pm_index,
            measure=measure,
            collect_stats=False,
        )
        config = ServiceConfig(
            workers=workers,
            backend=backend,
            queue_depth=len(workload),
            cache_max_entries=0,  # measure execution, not memoization
            collect_stats=False,
        )
        with QueryService(handle, config) as service:
            if collect:
                results = service.execute_many(workload, timeout=300.0)
                payload = [result.to_dict() for result in results]
            else:
                payload = None
            qps = _drive(service, workload)
        return qps, payload

    def sweep():
        curve = {"thread": {}, "process": {}}
        wire = {}
        for backend in ("thread", "process"):
            for workers in SCALING_WORKERS:
                collect = workers == SCALING_WORKERS[-1]
                qps, payload = run(backend, workers, collect=collect)
                curve[backend][workers] = qps
                if collect:
                    wire[backend] = payload
        return curve, wire

    curve, wire = benchmark.pedantic(sweep, rounds=1, iterations=1)

    top = SCALING_WORKERS[-1]
    speedup = curve["process"][top] / curve["thread"][top]
    identical = json.dumps(wire["thread"], sort_keys=True) == json.dumps(
        wire["process"], sort_keys=True
    )

    lines = [
        f"thread vs process backend over {len(workload)} distinct Q1 "
        "queries",
        f"(netout + {SCALING_COMPUTE_SECONDS * 1e3:.0f} ms GIL-emulated "
        "interpreter work per scoring call)",
        "",
        f"{'workers':>8} {'thread qps':>11} {'process qps':>12} {'ratio':>7}",
    ]
    for workers in SCALING_WORKERS:
        ratio = curve["process"][workers] / curve["thread"][workers]
        lines.append(
            f"{workers:>8} {curve['thread'][workers]:>11.1f} "
            f"{curve['process'][workers]:>12.1f} {ratio:>6.2f}x"
        )
    lines += [
        "",
        f"process/thread at {top} workers: {speedup:.2f}x "
        f"(floor: {SCALING_FLOOR}x)",
        f"results byte-identical across backends: {identical}",
    ]
    report("service_backend_scaling", "\n".join(lines))
    json_report(
        "BENCH_service",
        {
            "workload_size": len(workload),
            "compute_seconds": SCALING_COMPUTE_SECONDS,
            "smoke": SMOKE,
            "qps": {
                backend: {str(workers): qps for workers, qps in points.items()}
                for backend, points in curve.items()
            },
            "speedup_process_over_thread_at_top": speedup,
            "top_workers": top,
            "byte_identical": identical,
        },
    )

    assert identical, "backends returned different result payloads"
    assert speedup >= SCALING_FLOOR, (
        f"process backend only {speedup:.2f}x over thread at {top} workers"
    )


def test_result_cache_speedup(benchmark, bench_network, report):
    """A repeated workload is served from the result cache at >> cold qps."""
    workload = _distinct_workload(bench_network, WORKLOAD_SIZE // 2)
    handle = EngineHandle(
        bench_network,
        strategy="pm",
        measure=RemoteNetOutMeasure(),
        collect_stats=False,
    )
    config = ServiceConfig(
        workers=4, queue_depth=len(workload), cache_ttl_seconds=None
    )

    def run():
        with QueryService(handle, config) as service:
            cold = _drive(service, workload)
            warm = _drive(service, workload)
            snapshot = service.stats()["cache"]
        return cold, warm, snapshot

    cold, warm, snapshot = benchmark.pedantic(run, rounds=1, iterations=1)

    report(
        "service_throughput_cache",
        "\n".join(
            [
                f"result cache over {len(workload)} repeated Q1 queries",
                "",
                f"{'pass':>6} {'qps':>10}",
                f"{'cold':>6} {cold:>10.1f}",
                f"{'warm':>6} {warm:>10.1f}",
                "",
                f"warm/cold: {warm / cold:.1f}x   "
                f"cache hit rate: {snapshot['hit_rate']:.2f}",
            ]
        ),
    )
    assert snapshot["hits"] >= len(workload)
    assert warm > cold * 3


def test_overload_burst_sheds_typed(benchmark, bench_network, report):
    """Acceptance: a full-queue burst yields typed errors, no hangs, and
    correct results for everything admitted."""
    workload = _distinct_workload(bench_network, 24)
    handle = EngineHandle(
        bench_network,
        strategy="pm",
        measure=RemoteNetOutMeasure(delay_seconds=0.02),
        collect_stats=False,
    )
    reference = {
        canonical_query_key(query): handle.execute(query).names()
        for query in workload
    }
    config = ServiceConfig(workers=2, queue_depth=2, cache_max_entries=0)

    def burst():
        admitted, shed = [], 0
        with QueryService(handle, config) as service:
            for query in workload:
                try:
                    admitted.append((query, service.submit(query)))
                except ServiceOverloadedError as error:
                    assert error.retry_after_seconds > 0
                    shed += 1
            done, not_done = wait(
                [future for _, future in admitted], timeout=60.0
            )
        assert not not_done, "burst left hanging futures"
        wrong = [
            query
            for query, future in admitted
            if future.result().names() != reference[canonical_query_key(query)]
        ]
        return len(admitted), shed, wrong

    admitted, shed, wrong = benchmark.pedantic(burst, rounds=1, iterations=1)

    report(
        "service_throughput_burst",
        "\n".join(
            [
                f"burst of {len(workload)} queries into capacity "
                f"{config.capacity} (2 workers + 2 queued)",
                "",
                f"admitted: {admitted}   shed (typed 429s): {shed}",
                "admitted results all match the sequential reference: "
                f"{not wrong}",
            ]
        ),
    )
    assert shed > 0, "burst never exceeded capacity"
    assert admitted + shed == len(workload)
    assert wrong == []
