"""Paper Figure 3 — total execution time of query sets Q1-Q3 under
Baseline / PM / SPM.

The paper processes 10,000 template-instantiated queries per set and finds
pre-materialization 5-100x faster than the baseline, with SPM generally
between PM and the baseline.  We replay the same three templates (Table 4)
over a smaller query set and report the same series.
"""

import pytest

from repro.engine.detector import OutlierDetector
from repro.engine.optimizer import WorkloadAnalyzer
from repro.engine.strategies import make_strategy

SPM_THRESHOLD = 0.01  # the paper's relative frequency threshold

STRATEGIES = ("baseline", "pm", "spm")


def _build_detector(network, strategy_name, workload):
    if strategy_name == "spm":
        return OutlierDetector(
            network,
            strategy="spm",
            spm_workload=workload,
            spm_threshold=SPM_THRESHOLD,
        )
    return OutlierDetector(network, strategy=strategy_name)


@pytest.mark.parametrize("template_name", ["Q1", "Q2", "Q3"])
@pytest.mark.parametrize("strategy_name", STRATEGIES)
def test_figure3_query_set(
    benchmark, bench_network, query_sets, template_name, strategy_name
):
    """One bar of Figure 3: (query set, strategy) -> total execution time."""
    workload = query_sets[template_name]
    detector = _build_detector(bench_network, strategy_name, workload)
    benchmark.group = f"figure3-{template_name}"

    def run():
        results, stats = detector.detect_many(workload, skip_failures=True)
        return len(results)

    executed = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert executed > 0


def test_figure3_report(benchmark, bench_network, query_sets, report):
    """The full Figure 3 data table, plus the paper's ordering assertions."""

    def run_all():
        table = {}
        for template_name, workload in query_sets.items():
            for strategy_name in STRATEGIES:
                detector = _build_detector(bench_network, strategy_name, workload)
                __, stats = detector.detect_many(workload, skip_failures=True)
                table[(template_name, strategy_name)] = (
                    stats.wall_seconds * 1e3,
                    stats.queries,
                )
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"total execution time (ms) for {len(next(iter(query_sets.values())))} "
        f"queries per set (paper: 10,000 queries, log-scale ms)",
        "",
        f"{'set':>4} {'Baseline':>12} {'PM':>12} {'SPM':>12} "
        f"{'PM speedup':>12} {'SPM speedup':>12}",
    ]
    for template_name in query_sets:
        baseline_ms, __ = table[(template_name, "baseline")]
        pm_ms, __ = table[(template_name, "pm")]
        spm_ms, __ = table[(template_name, "spm")]
        lines.append(
            f"{template_name:>4} {baseline_ms:>12.1f} {pm_ms:>12.1f} "
            f"{spm_ms:>12.1f} {baseline_ms / pm_ms:>11.1f}x "
            f"{baseline_ms / spm_ms:>11.1f}x"
        )
    lines.append("")
    lines.append(
        "paper's shape: PM and SPM are 5-100x faster than Baseline; SPM is "
        "generally at or below PM"
    )
    report("figure3_execution_time", "\n".join(lines))

    # The paper's ordering claims.
    for template_name in query_sets:
        baseline_ms, __ = table[(template_name, "baseline")]
        pm_ms, __ = table[(template_name, "pm")]
        spm_ms, __ = table[(template_name, "spm")]
        assert pm_ms < baseline_ms, f"{template_name}: PM not faster than baseline"
        assert spm_ms < baseline_ms, f"{template_name}: SPM not faster than baseline"
        assert baseline_ms / pm_ms >= 2.0, (
            f"{template_name}: PM speedup below 2x — indexing is not paying off"
        )
