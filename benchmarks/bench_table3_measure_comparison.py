"""Paper Table 3 — top-5 outliers among a hub's coauthors under each measure.

The paper's finding is qualitative: Ω defined with *normalized connectivity*
(NetOut) surfaces established cross-field authors with a wide range of
visibilities, while PathSim and CosSim surface authors with fewer than two
papers — an inherent low-visibility bias.  We replay the query on the
planted ego corpus and assert that shape.
"""

import pytest

from repro.engine.detector import OutlierDetector

TOP5_QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.venue TOP 5;"
)


@pytest.fixture(scope="module")
def detectors(bench_network):
    return {
        name: OutlierDetector(bench_network, strategy="pm", measure=name)
        for name in ("netout", "pathsim", "cossim")
    }


@pytest.mark.parametrize("measure_name", ["netout", "pathsim", "cossim"])
def test_table3_query_timing(benchmark, detectors, measure_name):
    result = benchmark(detectors[measure_name].detect, TOP5_QUERY)
    assert len(result) == 5


def test_table3_report(benchmark, bench_corpus, detectors, report):
    network = bench_corpus.network

    def run_all():
        return {name: det.detect(TOP5_QUERY) for name, det in detectors.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"{'Rank':>4}  "
        + "".join(f"{m:>28s} {'Ω':>8s}   " for m in ("NetOut", "PathSim", "CosSim"))
    ]
    for position in range(5):
        row = [f"{position + 1:>4}  "]
        for name in ("netout", "pathsim", "cossim"):
            entry = results[name].outliers[position]
            papers = network.degree(
                network.find_vertex("author", entry.name), "paper"
            )
            row.append(f"{entry.name + f' ({papers:.0f}p)':>28s} {entry.score:>8.3f}   ")
        lines.append("".join(row))
    lines.append("")
    lines.append(
        "paper's shape: NetOut top-5 = established cross-field authors "
        "(wide visibility range); PathSim/CosSim top-5 = authors with <=2 papers"
    )
    report("table3_measure_comparison", "\n".join(lines))

    # Shape assertions (the paper's qualitative claims).
    netout_top = set(results["netout"].names())
    assert netout_top == set(bench_corpus.cross_field)
    for biased in ("pathsim", "cossim"):
        for name in results[biased].names():
            author = network.find_vertex("author", name)
            assert network.degree(author, "paper") <= 2, (
                f"{biased} top-5 should be low-visibility authors"
            )
