"""Paper Figure 5 — SPM relative-frequency threshold sweep.

Thresholds {0.001, 0.01, 0.05, 0.1}: (a) average query execution time rises
as the threshold rises (fewer vertices indexed); (b) index size falls.  The
paper eyeballs the sweet spot between 0.01 and 0.05.
"""

import pytest

from repro.engine.index import build_spm_index
from repro.engine.optimizer import WorkloadAnalyzer
from repro.engine.strategies import SPMStrategy
from repro.engine.executor import QueryExecutor

THRESHOLDS = (0.001, 0.01, 0.05, 0.1)


@pytest.fixture(scope="module")
def analyzer(bench_network, query_sets):
    analyzer = WorkloadAnalyzer(bench_network)
    # The paper uses the set of all template queries as the initialization
    # query set; we use the union of the three template workloads.
    for workload in query_sets.values():
        analyzer.analyze_many(workload)
    return analyzer


@pytest.mark.parametrize("threshold", THRESHOLDS, ids=lambda t: f"t={t}")
def test_figure5_index_build(benchmark, bench_network, analyzer, threshold):
    """Index-construction cost per threshold (complementary to the paper)."""
    benchmark.group = "figure5-build"
    selected = analyzer.frequent_vertices(threshold)
    index = benchmark.pedantic(
        build_spm_index, args=(bench_network, selected), rounds=1, iterations=1
    )
    assert index.size_bytes() >= 0


def test_figure5_report(benchmark, bench_network, query_sets, analyzer, report):
    workload = [q for queries in query_sets.values() for q in queries]

    def sweep():
        rows = []
        for threshold in THRESHOLDS:
            selected = analyzer.frequent_vertices(threshold)
            index = build_spm_index(bench_network, selected)
            executor = QueryExecutor(SPMStrategy(bench_network, index=index))
            __, stats = executor.execute_many(list(workload), skip_failures=True)
            average_ms = stats.wall_seconds * 1e3 / max(stats.queries, 1)
            rows.append(
                (threshold, len(selected), index.size_bytes(), average_ms)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "SPM threshold sweep (paper Figure 5)",
        "",
        f"{'threshold':>10} {'#indexed':>9} {'index bytes':>12} "
        f"{'avg exec (ms)':>14}",
    ]
    for threshold, count, size, average_ms in rows:
        lines.append(
            f"{threshold:>10g} {count:>9d} {size:>12d} {average_ms:>14.3f}"
        )
    lines.append("")
    lines.append(
        "paper's shape: index size decreases as the threshold rises, while "
        "average query time increases; sweet spot between 0.01 and 0.05"
    )
    report("figure5_threshold_sweep", "\n".join(lines))

    sizes = [size for __, __, size, __ in rows]
    times = [average_ms for __, __, __, average_ms in rows]
    # Figure 5(b): index size strictly non-increasing in the threshold.
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[0] > sizes[-1]
    # Figure 5(a): the loosest threshold must beat the tightest one; the
    # interior points are monotone in the paper, but at this scale we allow
    # timing noise between adjacent thresholds.
    assert times[0] < times[-1]
