"""Extension bench (paper §8) — progressive approximate top-k with confidence.

Section 8 proposes returning "the approximate top-k outliers, with
confidences, while the query is being processed so that users can determine
whether to continue".  Two scenarios bound the behaviour:

* **homogeneous reference** (Table 1 style, hundreds of identical reference
  records): per-reference contributions have almost no variance, the
  confidence intervals collapse quickly, and early stopping skips most of
  the reference set;
* **tight boundary** (the hub ego query, where the k-th and (k+1)-th
  candidates score 2.9 vs 4.0 with heavy-tailed contributions): the
  stability test correctly refuses to stop early — an approximate answer
  at 95% confidence simply is not available sooner.
"""

import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.progressive import ProgressiveQueryExecutor
from repro.engine.strategies import BaselineStrategy, PMStrategy
from repro.hin.bibliographic import BibliographicNetworkBuilder, Publication

EGO_QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.venue TOP 5;"
)

TOY_QUERY = (
    'FIND OUTLIERS FROM author '
    "JUDGED BY author.paper.venue TOP 2;"
)


def _homogeneous_network(reference_size=400):
    """Table 1 scaled up: many identical reference authors + 5 candidates."""
    builder = BibliographicNetworkBuilder()
    counter = 0

    def add(author, record):
        nonlocal counter
        for venue, count in record.items():
            for __ in range(count):
                counter += 1
                builder.add_publication(
                    Publication(f"h{counter}", [author], venue, terms=["t"])
                )

    for i in range(reference_size):
        add(f"Ref{i:04d}", {"VLDB": 10, "KDD": 10, "STOC": 1, "SIGGRAPH": 1})
    add("Sarah", {"VLDB": 10, "KDD": 10, "STOC": 1, "SIGGRAPH": 1})
    add("Rob", {"KDD": 1, "STOC": 20, "SIGGRAPH": 20})
    add("Emma", {"SIGGRAPH": 30})
    return builder.build()


@pytest.fixture(scope="module")
def homogeneous():
    return _homogeneous_network()


@pytest.mark.parametrize("mode", ["exact", "progressive-early-stop"])
def test_homogeneous_timing(benchmark, homogeneous, mode):
    benchmark.group = "extension-progressive"
    strategy = BaselineStrategy(homogeneous)
    if mode == "exact":
        executor = QueryExecutor(strategy, collect_stats=False)
        benchmark(executor.execute, TOY_QUERY)
    else:
        progressive = ProgressiveQueryExecutor(strategy, chunk_size=16, seed=0)
        benchmark(progressive.execute, TOY_QUERY, early_stop=True, min_fraction=0.05)


def test_progressive_report(benchmark, homogeneous, bench_network, report):
    def run_scenarios():
        # Scenario 1: homogeneous reference -> early stop saves most work.
        strategy = BaselineStrategy(homogeneous)
        exact_toy = QueryExecutor(strategy, collect_stats=False).execute(TOY_QUERY)
        progressive = ProgressiveQueryExecutor(
            strategy, chunk_size=16, seed=0, confidence=0.95
        )
        toy_result, toy_snapshot = progressive.execute(
            TOY_QUERY, early_stop=True, min_fraction=0.05
        )

        # Scenario 2: tight boundary -> stability arrives late, answers stay
        # correct whenever stability is declared.
        ego_strategy = PMStrategy(bench_network)
        exact_ego = QueryExecutor(ego_strategy, collect_stats=False).execute(EGO_QUERY)
        exact_top = set(exact_ego.names())
        trace = []
        stable_at = None
        streamer = ProgressiveQueryExecutor(ego_strategy, chunk_size=8, seed=0)
        for snapshot in streamer.stream(EGO_QUERY):
            provisional = {bench_network.vertex_name(v) for v in snapshot.top_k}
            recall = len(provisional & exact_top) / len(exact_top)
            trace.append((snapshot.fraction, recall, snapshot.stable))
            if stable_at is None and snapshot.stable:
                stable_at = (snapshot.fraction, recall)
        return exact_toy, toy_result, toy_snapshot, trace, stable_at

    exact_toy, toy_result, toy_snapshot, trace, stable_at = benchmark.pedantic(
        run_scenarios, rounds=1, iterations=1
    )

    lines = [
        "progressive top-k with confidence (paper §8 extension)",
        "",
        "scenario 1 — homogeneous reference (Table 1 x 400):",
        f"  early stop after {toy_snapshot.fraction:.0%} of the reference set "
        f"({toy_snapshot.processed}/{toy_snapshot.total} vertices)",
        f"  provisional top-2 = {toy_result.names()} "
        f"(exact = {exact_toy.names()})",
        "",
        "scenario 2 — tight boundary (hub ego query, Ω gap 2.9 vs 4.0):",
        f"{'fraction':>9} {'top-5 recall':>13} {'stable':>7}",
    ]
    step = max(1, len(trace) // 10)
    for fraction, recall, stable in trace[::step]:
        lines.append(f"{fraction:>9.2f} {recall:>13.2f} {str(stable):>7}")
    lines.append(
        f"  stability declared at {stable_at[0]:.0%} with recall "
        f"{stable_at[1]:.2f} — the executor refuses to hand back an "
        "uncertain answer early"
    )
    report("extension_progressive", "\n".join(lines))

    # Scenario 1: early stop saves a large majority of the reference pass
    # and is still exactly right.
    assert toy_snapshot.fraction <= 0.3
    assert toy_result.names() == exact_toy.names()
    # Scenario 2: whenever stability is declared, the answer is correct.
    assert stable_at is not None
    assert stable_at[1] == 1.0
    assert trace[-1][1] == 1.0
