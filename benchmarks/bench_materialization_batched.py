"""Benchmark — batched vs per-row meta-path materialization.

The engine's hot path materializes ``φ_P`` for whole candidate/reference
sets.  The batched layer answers each request with a handful of CSR
matrix-matrix products per block instead of ``|S|`` per-vertex Python
iterations; this module measures that speedup per strategy and verifies
the bulk path is *score-identical* end to end.

Two artifacts land in ``benchmarks/out/``:

* ``materialization_batched.txt`` — human-readable table, and
* ``BENCH_materialization.json`` — machine-readable baseline for CI diffs.

Quick mode: set ``BENCH_SMOKE=1`` to run on the unit-test-scale corpus
with one request size; CI's bench-smoke job uses this to keep the bulk
path's speedup and score-identity guarded on every push.
"""

import os
import time

import numpy as np
import pytest

from repro.datagen.synthetic import hub_ego_corpus
from repro.datagen.workloads import generate_query_set
from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import WorkloadAnalyzer
from repro.engine.strategies import MaterializationStrategy, make_strategy
from repro.metapath.metapath import MetaPath
from repro.query.templates import TEMPLATE_Q1

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

#: Candidate-set sizes to materialize.  The acceptance bar (≥5x on PM)
#: is asserted at |S| = 256; larger sizes document how the gap widens.
REQUEST_SIZES = (256,) if SMOKE else (256, 1024, 4096)

#: Speedup floors asserted per mode.  Smoke runs on shared CI runners
#: where timer noise is larger, so the floor is looser there.
MIN_PM_SPEEDUP = 2.0 if SMOKE else 5.0

COAUTHOR = MetaPath(("author", "paper", "author"))


class PerRowReference(MaterializationStrategy):
    """Bulk-API adapter that deliberately keeps the per-row Python loop.

    Wrapping any strategy, it forwards ``neighbor_row`` but inherits the
    base class's default ``_materialize_block`` — a per-vertex vstack —
    so timing it against the wrapped strategy isolates exactly what the
    batched layer buys.
    """

    name = "per-row"

    def __init__(self, inner: MaterializationStrategy) -> None:
        super().__init__(inner.network)
        self.inner = inner

    def neighbor_row(self, path, vertex_index, stats=None):
        return self.inner.neighbor_row(path, vertex_index, stats)

    def index_size_bytes(self) -> int:
        return self.inner.index_size_bytes()


@pytest.fixture(scope="module")
def network(request):
    if SMOKE:
        return hub_ego_corpus().network
    return request.getfixturevalue("bench_network")


@pytest.fixture(scope="module")
def workload(network):
    size = 40 if SMOKE else 120
    return generate_query_set(network, TEMPLATE_Q1, size, seed=7)


def _strategies(network, workload):
    analyzer = WorkloadAnalyzer(network)
    analyzer.analyze_many(workload)
    return {
        "baseline": make_strategy(network, "baseline"),
        "pm": make_strategy(network, "pm"),
        "spm": make_strategy(network, "spm", index=analyzer.build_index(0.01)),
    }


def _best_of(callable_, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _assert_identical(bulk, reference):
    assert bulk.shape == reference.shape
    assert bulk.dtype == reference.dtype == np.float64
    assert np.array_equal(bulk.indptr, reference.indptr)
    assert np.array_equal(bulk.indices, reference.indices)
    assert np.array_equal(bulk.data, reference.data)


def test_batched_speedup(benchmark, network, workload, report, json_report):
    strategies = _strategies(network, workload)
    num_authors = network.num_vertices("author")
    rng = np.random.default_rng(11)

    def sweep():
        rows = []
        for name, strategy in strategies.items():
            per_row = PerRowReference(strategy)
            for size in REQUEST_SIZES:
                request = rng.choice(
                    num_authors, size=min(size, num_authors), replace=False
                ).tolist()
                bulk = strategy.neighbor_matrix(COAUTHOR, request)
                reference = per_row.neighbor_matrix(COAUTHOR, request)
                _assert_identical(bulk, reference)
                bulk_s = _best_of(
                    lambda: strategy.neighbor_matrix(COAUTHOR, request)
                )
                row_s = _best_of(
                    lambda: per_row.neighbor_matrix(COAUTHOR, request)
                )
                rows.append((name, len(request), row_s, bulk_s))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"Batched vs per-row materialization of {COAUTHOR} "
        f"({'smoke' if SMOKE else 'full'} mode)",
        "",
        f"{'strategy':>9} {'|S|':>6} {'per-row ms':>11} {'batched ms':>11} "
        f"{'speedup':>8}",
    ]
    payload = {"mode": "smoke" if SMOKE else "full", "path": str(COAUTHOR),
               "results": []}
    pm_speedups = []
    for name, size, row_s, bulk_s in rows:
        speedup = row_s / bulk_s if bulk_s > 0 else float("inf")
        if name == "pm" and size >= 256:
            pm_speedups.append(speedup)
        lines.append(
            f"{name:>9} {size:>6} {row_s * 1e3:>11.2f} {bulk_s * 1e3:>11.2f} "
            f"{speedup:>8.1f}"
        )
        payload["results"].append(
            {
                "strategy": name,
                "request_size": size,
                "per_row_seconds": row_s,
                "batched_seconds": bulk_s,
                "speedup": speedup,
            }
        )
    lines.append("")
    lines.append(
        "shape: one selection-gather product per block replaces |S| Python "
        "iterations; the gap widens with |S|"
    )
    report("materialization_batched", "\n".join(lines))
    json_report("BENCH_materialization", payload)

    assert pm_speedups, "no PM measurement at |S| >= 256"
    assert max(pm_speedups) >= MIN_PM_SPEEDUP, (
        f"PM batched speedup {max(pm_speedups):.1f}x below the "
        f"{MIN_PM_SPEEDUP}x floor"
    )


def test_scores_byte_identical(benchmark, network, workload):
    """`QueryExecutor.execute` returns bit-equal scores through the bulk
    path and the per-row reference, for every strategy."""
    strategies = _strategies(network, workload)
    queries = workload[: 10 if SMOKE else 30]

    def run():
        mismatches = 0
        for strategy in strategies.values():
            bulk_executor = QueryExecutor(strategy, collect_stats=False)
            row_executor = QueryExecutor(
                PerRowReference(strategy), collect_stats=False
            )
            for query in queries:
                bulk_result = bulk_executor.execute(query)
                row_result = row_executor.execute(query)
                if bulk_result.scores != row_result.scores:
                    mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mismatches == 0
