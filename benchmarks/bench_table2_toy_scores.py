"""Paper Table 2 — Ω scores of the toy candidates under three measures.

This is the one experiment we reproduce *exactly*: the Table 1 publication
records are synthetic in the paper too, so every printed value must match
the paper to two decimals (NetOut: Sarah 100, Rob 6.24, Lucy 31.11, Joe 50,
Emma 3.33; analogously for ΩPathSim and ΩCosSim).
"""

import numpy as np
import pytest

from repro.core.measures import get_measure
from repro.datagen.fixtures import TABLE1_CANDIDATES, table1_network
from repro.engine.strategies import BaselineStrategy
from repro.metapath.metapath import MetaPath

PV = MetaPath.parse("author.paper.venue")

PAPER_TABLE2 = {
    "netout": [100.0, 6.24, 31.11, 50.0, 3.33],
    "pathsim": [100.0, 9.97, 32.79, 1.94, 5.44],
    "cossim": [100.0, 12.43, 32.83, 7.04, 7.04],
}


@pytest.fixture(scope="module")
def toy_vectors():
    network, candidates, reference = table1_network()
    strategy = BaselineStrategy(network)
    candidate_indices = [network.find_vertex("author", n).index for n in candidates]
    reference_indices = [network.find_vertex("author", n).index for n in reference]
    return (
        strategy.neighbor_matrix(PV, candidate_indices),
        strategy.neighbor_matrix(PV, reference_indices),
    )


@pytest.mark.parametrize("measure_name", ["netout", "pathsim", "cossim"])
def test_table2_measure_timing(benchmark, toy_vectors, measure_name):
    """Time the scoring step of each measure on the Table 1 toy data."""
    phi_candidates, phi_reference = toy_vectors
    measure = get_measure(measure_name)
    scores = benchmark(measure.score, phi_candidates, phi_reference)
    np.testing.assert_allclose(
        np.round(scores, 2), PAPER_TABLE2[measure_name], atol=0.005
    )


def test_table2_report(benchmark, toy_vectors, report):
    """Regenerate Table 2 and assert exact agreement with the paper."""
    phi_candidates, phi_reference = toy_vectors

    def compute():
        return {
            name: get_measure(name).score(phi_candidates, phi_reference)
            for name in ("netout", "pathsim", "cossim")
        }

    scores = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = [
        f"{'':10s} {'ΩNetOut':>10s} {'ΩPathSim':>10s} {'ΩCosSim':>10s}"
        f"   (paper: NetOut/PathSim/CosSim)"
    ]
    for position, name in enumerate(TABLE1_CANDIDATES):
        measured = [scores[m][position] for m in ("netout", "pathsim", "cossim")]
        expected = [PAPER_TABLE2[m][position] for m in ("netout", "pathsim", "cossim")]
        lines.append(
            f"{name:10s} {measured[0]:>10.2f} {measured[1]:>10.2f} "
            f"{measured[2]:>10.2f}   (paper: {expected[0]:g}/{expected[1]:g}/"
            f"{expected[2]:g})"
        )
        np.testing.assert_allclose(np.round(measured, 2), expected, atol=0.005)
    report("table2_toy_scores", "\n".join(lines))
