"""Ablation — Equation 1's O(|Sr|+|Sc|) NetOut vs the naive O(|Sr|·|Sc|) one.

Section 6.1 derives the factorized evaluation
``Ω(v) = φ(v)·(Σ_r φ(r)) / ‖φ(v)‖²`` and argues it reduces the outlierness
computation from quadratic to linear in the set sizes.  This bench measures
both on growing reference sets and asserts (a) identical scores and
(b) a widening speed gap.
"""

import time

import numpy as np
import pytest
from scipy import sparse

from repro.core.measures import NetOutMeasure

SIZES = (50, 200, 800)
FEATURE_DIM = 300


def _random_phi(rows, seed):
    rng = np.random.default_rng(seed)
    dense = rng.poisson(0.05, size=(rows, FEATURE_DIM)).astype(float)
    return sparse.csr_matrix(dense)


@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"n={s}")
@pytest.mark.parametrize("variant", ["vectorized", "pairwise"])
def test_netout_evaluation_cost(benchmark, size, variant):
    benchmark.group = f"ablation-vectorized-n={size}"
    measure = NetOutMeasure()
    phi = _random_phi(size, seed=size)
    function = measure.score if variant == "vectorized" else measure.score_pairwise
    scores = benchmark(function, phi, phi)
    assert scores.shape == (size,)


def test_vectorized_report(benchmark, report):
    def sweep():
        rows = []
        measure = NetOutMeasure()
        for size in SIZES:
            phi = _random_phi(size, seed=size)
            start = time.perf_counter()
            fast = measure.score(phi, phi)
            fast_seconds = time.perf_counter() - start
            start = time.perf_counter()
            slow = measure.score_pairwise(phi, phi)
            slow_seconds = time.perf_counter() - start
            np.testing.assert_allclose(fast, slow, rtol=1e-9)
            rows.append((size, fast_seconds * 1e3, slow_seconds * 1e3))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "NetOut evaluation: Equation 1 (vectorized) vs naive pairwise",
        "",
        f"{'|Sc|=|Sr|':>10} {'Eq.1 (ms)':>10} {'pairwise (ms)':>14} {'speedup':>8}",
    ]
    for size, fast_ms, slow_ms in rows:
        lines.append(
            f"{size:>10d} {fast_ms:>10.2f} {slow_ms:>14.2f} "
            f"{slow_ms / fast_ms:>7.1f}x"
        )
    lines.append("")
    lines.append("paper's claim (§6.1): O(|Sr|+|Sc|) beats O(|Sr|·|Sc|), and the "
                 "gap widens with set size")
    report("ablation_vectorized", "\n".join(lines))

    speedups = [slow / fast for __, fast, slow in rows]
    assert speedups[-1] > speedups[0], "gap should widen with set size"
    assert speedups[-1] > 2.0
