"""Paper Figure 4 — SPM per-phase processing-time breakdown.

With the relative-frequency threshold at 0.01, the paper splits query
processing into three phases and finds that, for almost all query sets,
materializing meta-paths for *non-indexed* vertices dominates, while
loading indexed vectors is the cheapest phase.  We reproduce the same
three-series breakdown for Q1-Q3.
"""

import pytest

from repro.engine.detector import OutlierDetector

SPM_THRESHOLD = 0.01


@pytest.mark.parametrize("template_name", ["Q1", "Q2", "Q3"])
def test_figure4_phase_breakdown(
    benchmark, bench_network, query_sets, template_name
):
    workload = query_sets[template_name]
    detector = OutlierDetector(
        bench_network,
        strategy="spm",
        spm_workload=workload,
        spm_threshold=SPM_THRESHOLD,
    )
    benchmark.group = "figure4"

    def run():
        __, stats = detector.detect_many(workload, skip_failures=True)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    # Both materialization phases are exercised under a selective index.
    assert stats.indexed_vectors > 0
    assert stats.traversed_vectors > 0


def test_figure4_report(benchmark, bench_network, query_sets, report):
    def run_all():
        table = {}
        for template_name, workload in query_sets.items():
            detector = OutlierDetector(
                bench_network,
                strategy="spm",
                spm_workload=workload,
                spm_threshold=SPM_THRESHOLD,
            )
            __, stats = detector.detect_many(workload, skip_failures=True)
            table[template_name] = stats
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        f"SPM processing time breakdown (ms), threshold = {SPM_THRESHOLD}",
        "",
        f"{'set':>4} {'not indexed':>14} {'indexed':>10} {'outlierness':>12} "
        f"{'#traversed':>11} {'#indexed':>9}",
    ]
    for template_name, stats in table.items():
        lines.append(
            f"{template_name:>4} {stats.not_indexed_seconds * 1e3:>14.1f} "
            f"{stats.indexed_seconds * 1e3:>10.1f} "
            f"{stats.scoring_seconds * 1e3:>12.1f} "
            f"{stats.traversed_vectors:>11d} {stats.indexed_vectors:>9d}"
        )
    lines.append("")
    lines.append(
        "paper's shape: time is dominated by materializing vectors for "
        "non-indexed vertices; loading indexed vectors is the cheapest phase"
    )
    report("figure4_time_breakdown", "\n".join(lines))

    for template_name, stats in table.items():
        # The paper's dominant-phase claim.
        assert stats.not_indexed_seconds > stats.indexed_seconds, (
            f"{template_name}: indexed loading should be cheaper than traversal"
        )
        # Per-vector, an index lookup must beat a traversal.
        per_traversal = stats.not_indexed_seconds / stats.traversed_vectors
        per_lookup = stats.indexed_seconds / stats.indexed_vectors
        assert per_traversal > per_lookup
