"""Extension bench (paper §8) — query suggestion quality and cost.

Section 8: the system "might even be able to suggest how the users can
modify their queries to get more interesting, or more unusual, outliers."
The advisor enumerates alternative feature meta-paths and ranks them by the
separation of the resulting Ω distribution.  On the planted ego corpus the
ground truth is known: judging by *venues* is what exposes the planted
cross-field authors, so the advisor must rank that path at (or near) the
top.
"""

import pytest

from repro.engine.advisor import QueryAdvisor
from repro.engine.strategies import PMStrategy

BLAND_QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper TOP 5;"
)


@pytest.fixture(scope="module")
def advisor(bench_network):
    return QueryAdvisor(PMStrategy(bench_network))


def test_advisor_timing(benchmark, advisor):
    benchmark.group = "extension-advisor"
    suggestions = benchmark.pedantic(
        advisor.suggest,
        args=(BLAND_QUERY,),
        kwargs={"max_suggestions": 8, "max_length": 2, "include_current": True},
        rounds=1,
        iterations=1,
    )
    assert suggestions


def test_advisor_report(benchmark, advisor, bench_corpus, report):
    def run():
        return advisor.suggest(
            BLAND_QUERY, max_suggestions=8, max_length=2, include_current=True
        )

    suggestions = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "query suggestions for a bland starting query (JUDGED BY author.paper)",
        "",
        f"{'rank':>4} {'interestingness':>16}   feature meta-path / top-3",
    ]
    for position, suggestion in enumerate(suggestions, start=1):
        lines.append(
            f"{position:>4} {suggestion.score:>16.3f}   {suggestion.feature_path}"
        )
        lines.append(f"{'':>21}   {suggestion.result.names()[:3]}")
    lines.append("")
    lines.append(
        "shape: the venue judgment — the one that exposes the planted "
        "cross-field authors — ranks at the top"
    )
    report("extension_advisor", "\n".join(lines))

    paths = [str(s.feature_path) for s in suggestions]
    assert "author.paper.venue" in paths[:2], paths
    # The winning suggestion's top outliers are the planted ones.
    winner = suggestions[paths.index("author.paper.venue")]
    assert set(winner.result.names()) <= (
        set(bench_corpus.cross_field) | set(bench_corpus.students)
    )
