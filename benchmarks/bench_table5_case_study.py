"""Paper Table 5 — the NetOut case study: three qualitative queries.

* Query 1: outliers among the hub's coauthors judged by publishing venues
  (top outliers work in other fields).
* Query 2: the same candidates judged by coauthors (a substantially
  different ranking — outlier semantics are query-relative).
* Query 3: outliers among a big venue's authors judged by venues, where the
  ``NULL`` missing-data marker surfaces among the top outliers.
"""

import pytest

from repro.engine.detector import OutlierDetector

VENUE_QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.venue TOP 10;"
)
COAUTHOR_QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.author TOP 10;"
)
# The hub community's flagship venue (largest by Zipf construction).
VENUE_AUTHORS_QUERY = (
    'FIND OUTLIERS FROM venue{"C0-Venue-0"}.paper.author '
    "JUDGED BY author.paper.venue TOP 10;"
)


@pytest.fixture(scope="module")
def detector(bench_network):
    return OutlierDetector(bench_network, strategy="pm", measure="netout")


@pytest.mark.parametrize(
    "query",
    [VENUE_QUERY, COAUTHOR_QUERY, VENUE_AUTHORS_QUERY],
    ids=["by-venue", "by-coauthor", "venue-authors"],
)
def test_table5_query_timing(benchmark, detector, query):
    result = benchmark(detector.detect, query)
    assert len(result) == 10


def test_table5_report(benchmark, bench_corpus, detector, report):
    def run_all():
        return (
            detector.detect(VENUE_QUERY),
            detector.detect(COAUTHOR_QUERY),
            detector.detect(VENUE_AUTHORS_QUERY),
        )

    by_venue, by_coauthor, venue_authors = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    sections = []
    for title, result in (
        ("Sc = Sr = hub's coauthors, P = author.paper.venue", by_venue),
        ("Sc = Sr = hub's coauthors, P = author.paper.author", by_coauthor),
        ('Sc = Sr = venue{"C0-Venue-0"}.paper.author, P = author.paper.venue',
         venue_authors),
    ):
        sections.append(title)
        sections.append(result.to_table())
        sections.append("")
    report("table5_case_study", "\n".join(sections))

    # Shape assertions mirroring the paper's narrative.
    # 1. The venue judgment surfaces the planted cross-field authors.
    assert set(by_venue.names()[:5]) == set(bench_corpus.cross_field)
    # 2. The single-paper student appears in the top-10 but not the top-5
    #    (the paper's John Chien-Han Tseng, rank 7, Ω = 4.00).
    assert set(bench_corpus.students) & set(by_venue.names()[5:])
    # 3. Judging by coauthors produces a substantially different ranking.
    assert by_venue.names() != by_coauthor.names()
    overlap = set(by_venue.names()) & set(by_coauthor.names())
    assert len(overlap) <= 5
    # 4. The NULL missing-data marker surfaces for the flagship venue.
    assert "NULL" in venue_authors.names()
