"""Run every docstring example in the library as a doctest.

Keeps the documentation honest: if an API changes, its usage examples in
the docstrings fail here rather than rotting silently.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _module_names():
    names = []
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if module_info.name.endswith("__main__"):
            continue
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _module_names())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )


def test_doctests_exist_somewhere():
    """Guard against the suite silently running zero examples."""
    total = 0
    for module_name in _module_names():
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder()
        total += sum(len(t.examples) for t in finder.find(module))
    assert total >= 10
