"""Tests for :mod:`repro.core.measures` — exact Table 2 reproduction and more."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.measures import (
    CosineMeasure,
    Measure,
    NetOutMeasure,
    PathSimMeasure,
    available_measures,
    get_measure,
    register_measure,
)
from repro.engine.strategies import BaselineStrategy
from repro.exceptions import MeasureError
from repro.metapath.metapath import MetaPath

PV = MetaPath.parse("author.paper.venue")

#: Expected Ω values from the paper's Table 2, in Table 1 candidate order
#: (Sarah, Rob, Lucy, Joe, Emma), rounded as printed in the paper.
TABLE2_EXPECTED = {
    "netout": [100.0, 6.24, 31.11, 50.0, 3.33],
    "pathsim": [100.0, 9.97, 32.79, 1.94, 5.44],
    "cossim": [100.0, 12.43, 32.83, 7.04, 7.04],
}


@pytest.fixture(scope="module")
def table2_vectors(table1):
    network, candidates, reference = table1
    strategy = BaselineStrategy(network)
    candidate_indices = [network.find_vertex("author", n).index for n in candidates]
    reference_indices = [network.find_vertex("author", n).index for n in reference]
    return (
        strategy.neighbor_matrix(PV, candidate_indices),
        strategy.neighbor_matrix(PV, reference_indices),
    )


class TestTable2ExactReproduction:
    """Every Ω value printed in the paper's Table 2, to two decimals."""

    @pytest.mark.parametrize("measure_name", ["netout", "pathsim", "cossim"])
    def test_scores_match_paper(self, table2_vectors, measure_name):
        phi_candidates, phi_reference = table2_vectors
        scores = get_measure(measure_name).score(phi_candidates, phi_reference)
        np.testing.assert_allclose(
            np.round(scores, 2), TABLE2_EXPECTED[measure_name], atol=0.005
        )

    def test_pairwise_paths_agree(self, table2_vectors):
        phi_candidates, phi_reference = table2_vectors
        for measure_name in ("netout", "pathsim", "cossim"):
            measure = get_measure(measure_name)
            np.testing.assert_allclose(
                measure.score(phi_candidates, phi_reference),
                measure.score_pairwise(phi_candidates, phi_reference),
                rtol=1e-10,
            )

    def test_outlier_ordering_matches_paper_narrative(self, table2_vectors):
        """Emma < Rob < Lucy < Joe < Sarah under NetOut (Section 5.2)."""
        phi_candidates, phi_reference = table2_vectors
        scores = NetOutMeasure().score(phi_candidates, phi_reference)
        sarah, rob, lucy, joe, emma = scores
        assert emma < rob < lucy < joe < sarah

    def test_pathsim_and_cossim_bias_toward_low_visibility(self, table2_vectors):
        """Joe (2 papers) beats Emma (30 papers) under PathSim — the bias."""
        phi_candidates, phi_reference = table2_vectors
        pathsim = PathSimMeasure().score(phi_candidates, phi_reference)
        assert pathsim[3] < pathsim[4]  # Joe more outlying than Emma.
        netout = NetOutMeasure().score(phi_candidates, phi_reference)
        assert netout[4] < netout[3]  # NetOut disagrees: Emma is the outlier.


class TestNetOutMeasure:
    def test_identical_vertex_scores_reference_size(self):
        phi = np.array([[1.0, 2.0]])
        reference = np.repeat(phi, 7, axis=0)
        assert NetOutMeasure().score(phi, reference)[0] == pytest.approx(7.0)

    def test_zero_visibility_candidate_scores_zero(self):
        phi_candidates = np.array([[0.0, 0.0], [1.0, 0.0]])
        phi_reference = np.array([[1.0, 1.0]])
        scores = NetOutMeasure().score(phi_candidates, phi_reference)
        assert scores[0] == 0.0
        assert scores[1] == 1.0

    def test_mean_aggregation_scales_sum(self):
        phi_candidates = np.array([[1.0, 2.0]])
        phi_reference = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        total = NetOutMeasure("sum").score(phi_candidates, phi_reference)
        mean = NetOutMeasure("mean").score(phi_candidates, phi_reference)
        assert mean[0] == pytest.approx(total[0] / 3)

    def test_min_max_aggregations(self):
        phi_candidates = np.array([[1.0, 0.0]])
        phi_reference = np.array([[2.0, 0.0], [0.0, 5.0]])
        low = NetOutMeasure("min").score(phi_candidates, phi_reference)
        high = NetOutMeasure("max").score(phi_candidates, phi_reference)
        assert low[0] == 0.0
        assert high[0] == 2.0

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(MeasureError, match="aggregation"):
            NetOutMeasure("median")

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(MeasureError, match="dimensions"):
            NetOutMeasure().score(np.ones((1, 2)), np.ones((1, 3)))

    def test_dense_and_sparse_agree(self):
        rng = np.random.default_rng(3)
        candidates = rng.integers(0, 4, size=(6, 5)).astype(float)
        reference = rng.integers(0, 4, size=(8, 5)).astype(float)
        dense = NetOutMeasure().score(candidates, reference)
        sparse_scores = NetOutMeasure().score(
            sparse.csr_matrix(candidates), sparse.csr_matrix(reference)
        )
        np.testing.assert_allclose(dense, sparse_scores)

    def test_non_2d_input_rejected(self):
        with pytest.raises(MeasureError):
            NetOutMeasure().score(np.ones(3), np.ones((1, 3)))


class TestPathSimMeasure:
    def test_self_similarity_is_one_per_reference_copy(self):
        phi = np.array([[2.0, 1.0]])
        assert PathSimMeasure().score(phi, phi)[0] == pytest.approx(1.0)

    def test_zero_rows_score_zero(self):
        scores = PathSimMeasure().score(np.zeros((1, 3)), np.ones((2, 3)))
        assert scores[0] == 0.0

    def test_aggregations(self):
        phi_candidates = np.array([[1.0, 0.0]])
        phi_reference = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert PathSimMeasure("max").score(phi_candidates, phi_reference)[0] == 1.0
        assert PathSimMeasure("min").score(phi_candidates, phi_reference)[0] == 0.0
        assert PathSimMeasure("mean").score(phi_candidates, phi_reference)[
            0
        ] == pytest.approx(0.5)


class TestCosineMeasure:
    def test_parallel_vectors_have_unit_similarity(self):
        phi_candidates = np.array([[1.0, 1.0]])
        phi_reference = np.array([[10.0, 10.0]])
        assert CosineMeasure().score(phi_candidates, phi_reference)[0] == pytest.approx(1.0)

    def test_scale_invariance(self):
        """Joe and Emma have identical CosSim scores (same direction)."""
        phi_candidates = np.array([[0.0, 2.0], [0.0, 30.0]])
        phi_reference = np.array([[1.0, 1.0], [3.0, 0.0]])
        scores = CosineMeasure().score(phi_candidates, phi_reference)
        assert scores[0] == pytest.approx(scores[1])

    def test_zero_rows_score_zero(self):
        scores = CosineMeasure().score(np.zeros((1, 3)), np.ones((2, 3)))
        assert scores[0] == 0.0

    def test_min_max_fall_back_to_pairwise(self):
        phi_candidates = np.array([[1.0, 0.0]])
        phi_reference = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert CosineMeasure("max").score(phi_candidates, phi_reference)[0] == 1.0
        assert CosineMeasure("min").score(phi_candidates, phi_reference)[0] == 0.0


class TestRegistry:
    def test_builtins_available(self):
        assert {"netout", "pathsim", "cossim"} <= set(available_measures())

    def test_get_measure_case_insensitive(self):
        assert isinstance(get_measure("NetOut"), NetOutMeasure)

    def test_unknown_measure_lists_available(self):
        with pytest.raises(MeasureError, match="netout"):
            get_measure("nonexistent")

    def test_custom_measure_registration(self):
        class ConstantMeasure(Measure):
            name = "constant"

            def score(self, phi_candidates, phi_reference):
                rows = (
                    phi_candidates.shape[0]
                    if hasattr(phi_candidates, "shape")
                    else len(phi_candidates)
                )
                return np.zeros(rows)

        register_measure("constant-test", ConstantMeasure)
        assert isinstance(get_measure("constant-test"), ConstantMeasure)

    def test_empty_name_rejected(self):
        with pytest.raises(MeasureError):
            register_measure("", NetOutMeasure)
