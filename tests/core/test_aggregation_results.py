"""Tests for :mod:`repro.core.aggregation` and :mod:`repro.core.results`."""

import numpy as np
import pytest

from repro.core.aggregation import AGGREGATIONS, aggregate_normalized_connectivity
from repro.core.results import OutlierResult, ScoredVertex
from repro.hin.network import VertexId


class TestAggregation:
    @pytest.fixture()
    def matrix(self):
        return np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 6.0]])

    def test_sum(self, matrix):
        np.testing.assert_allclose(
            aggregate_normalized_connectivity(matrix, "sum"), [6.0, 6.0]
        )

    def test_mean(self, matrix):
        np.testing.assert_allclose(
            aggregate_normalized_connectivity(matrix, "mean"), [2.0, 2.0]
        )

    def test_min(self, matrix):
        np.testing.assert_allclose(
            aggregate_normalized_connectivity(matrix, "min"), [1.0, 0.0]
        )

    def test_max(self, matrix):
        np.testing.assert_allclose(
            aggregate_normalized_connectivity(matrix, "max"), [3.0, 6.0]
        )

    def test_empty_reference_returns_zeros(self):
        matrix = np.zeros((3, 0))
        for aggregation in AGGREGATIONS:
            np.testing.assert_allclose(
                aggregate_normalized_connectivity(matrix, aggregation), np.zeros(3)
            )

    def test_unknown_aggregation_rejected(self, matrix):
        with pytest.raises(ValueError, match="median"):
            aggregate_normalized_connectivity(matrix, "median")

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            aggregate_normalized_connectivity(np.ones(3), "sum")


def _make_result(scores_by_name, top_k=3):
    scores = {}
    names = {}
    for position, (name, score) in enumerate(scores_by_name.items()):
        vertex = VertexId("author", position)
        scores[vertex] = score
        names[vertex] = name
    return OutlierResult.from_scores(
        scores, names, top_k=top_k, reference_count=10
    )


class TestOutlierResult:
    def test_ranking_ascending_by_score(self):
        result = _make_result({"A": 3.0, "B": 1.0, "C": 2.0})
        assert result.names() == ["B", "C", "A"]
        assert [entry.rank for entry in result] == [1, 2, 3]

    def test_top_k_truncation(self):
        result = _make_result({"A": 3.0, "B": 1.0, "C": 2.0}, top_k=2)
        assert len(result) == 2
        assert result.names() == ["B", "C"]

    def test_full_score_map_retained(self):
        result = _make_result({"A": 3.0, "B": 1.0, "C": 2.0}, top_k=1)
        assert result.candidate_count == 3
        assert result.score_of(VertexId("author", 0)) == 3.0

    def test_ties_break_by_name(self):
        result = _make_result({"Zed": 1.0, "Amy": 1.0})
        assert result.names() == ["Amy", "Zed"]

    def test_score_of_non_candidate_raises(self):
        result = _make_result({"A": 1.0})
        with pytest.raises(KeyError):
            result.score_of(VertexId("author", 99))

    def test_to_table_contains_all_rows(self):
        result = _make_result({"A": 3.0, "B": 1.0})
        table = result.to_table()
        assert "Rank" in table
        assert "A" in table and "B" in table

    def test_to_table_max_rows(self):
        result = _make_result({"A": 3.0, "B": 1.0, "C": 2.0})
        table = result.to_table(max_rows=1)
        assert "B" in table and "A" not in table

    def test_to_table_empty(self):
        result = OutlierResult(
            outliers=[], scores={}, candidate_count=0, reference_count=0
        )
        assert result.to_table() == "(no outliers)"

    def test_scored_vertex_fields(self):
        result = _make_result({"A": 1.5})
        entry = result.outliers[0]
        assert isinstance(entry, ScoredVertex)
        assert entry.vertex == VertexId("author", 0)
        assert entry.name == "A"
        assert entry.score == 1.5
        assert entry.rank == 1
