"""Tests for OutlierResult export helpers (records/JSON/CSV) and CLI formats."""

import csv
import io
import json

import pytest

from repro.core.results import OutlierResult
from repro.hin.network import VertexId


@pytest.fixture()
def result():
    scores = {
        VertexId("author", 0): 3.0,
        VertexId("author", 1): 1.0,
        VertexId("author", 2): 2.0,
    }
    names = {
        VertexId("author", 0): "Carol",
        VertexId("author", 1): "Alice",
        VertexId("author", 2): "Bob",
    }
    return OutlierResult.from_scores(
        scores, names, top_k=2, reference_count=10, measure="netout"
    )


class TestToRecords:
    def test_records_in_rank_order(self, result):
        records = result.to_records()
        assert [r["name"] for r in records] == ["Alice", "Bob"]
        assert [r["rank"] for r in records] == [1, 2]
        assert records[0]["vertex_type"] == "author"
        assert records[0]["vertex_index"] == 1
        assert records[0]["score"] == 1.0


class TestToJson:
    def test_round_trips_through_json(self, result):
        payload = json.loads(result.to_json())
        assert payload["measure"] == "netout"
        assert payload["candidate_count"] == 3
        assert payload["reference_count"] == 10
        assert [o["name"] for o in payload["outliers"]] == ["Alice", "Bob"]


class TestToCsv:
    def test_csv_rows(self, result):
        buffer = io.StringIO()
        written = result.to_csv(buffer)
        assert written == 2
        buffer.seek(0)
        rows = list(csv.reader(buffer))
        assert rows[0] == ["rank", "name", "vertex_type", "vertex_index", "score"]
        assert rows[1][1] == "Alice"
        assert len(rows) == 3


class TestToDictFromDict:
    def test_round_trip_scores_and_ranks(self, result):
        back = OutlierResult.from_dict(result.to_dict())
        assert back.outliers == result.outliers
        assert back.scores == result.scores
        assert back.candidate_count == 3
        assert back.reference_count == 10
        assert back.measure == "netout"

    def test_payload_is_json_safe(self, result):
        back = OutlierResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.names() == result.names()
        assert back.scores == result.scores

    def test_degradation_flags_round_trip(self):
        vertex = VertexId("author", 0)
        degraded = OutlierResult.from_scores(
            {vertex: 1.0},
            {vertex: "Alice"},
            top_k=1,
            reference_count=2,
            degraded=True,
            degradation_reason="served from the baseline rung",
        )
        back = OutlierResult.from_dict(degraded.to_dict())
        assert back.degraded is True
        assert back.degradation_reason == "served from the baseline rung"

    def test_feature_scores_round_trip(self):
        vertex = VertexId("author", 0)
        result = OutlierResult.from_scores(
            {vertex: 1.0},
            {vertex: "Alice"},
            top_k=1,
            reference_count=2,
            feature_scores={"author.paper.venue": {vertex: 0.25}},
        )
        back = OutlierResult.from_dict(result.to_dict())
        assert back.feature_scores == {"author.paper.venue": {vertex: 0.25}}

    def test_stats_are_excluded(self, result):
        from repro.engine.stats import ExecutionStats

        result.stats = ExecutionStats()
        payload = result.to_dict()
        assert "stats" not in payload
        assert OutlierResult.from_dict(payload).stats is None


class TestCliFormats:
    @pytest.fixture(scope="class")
    def corpus_path(self, tmp_path_factory):
        from repro.cli import main

        path = tmp_path_factory.mktemp("fmt") / "corpus.json"
        out = io.StringIO()
        assert (
            main(
                ["generate", "--preset", "ego", "--seed", "0", "--out", str(path)],
                out=out,
            )
            == 0
        )
        return str(path)

    QUERY = (
        'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
        "JUDGED BY author.paper.venue TOP 3;"
    )

    def _run(self, argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_json_format(self, corpus_path):
        code, output = self._run(
            ["query", "--network", corpus_path, "--format", "json", self.QUERY]
        )
        assert code == 0
        payload = json.loads(output)
        assert len(payload["outliers"]) == 3

    def test_csv_format(self, corpus_path):
        code, output = self._run(
            ["query", "--network", corpus_path, "--format", "csv", self.QUERY]
        )
        assert code == 0
        rows = list(csv.reader(io.StringIO(output)))
        assert rows[0][0] == "rank"
        assert len(rows) == 4

    def test_workload_command(self, corpus_path):
        code, output = self._run(
            [
                "workload",
                "--network", corpus_path,
                "--template", "Q1",
                "--count", "10",
                "--strategies", "baseline,pm",
            ]
        )
        assert code == 0
        assert "baseline" in output
        assert "p99=" in output
        assert "index=" in output

    def test_html_format_writes_file(self, corpus_path, tmp_path):
        target = tmp_path / "report.html"
        code, output = self._run(
            [
                "query",
                "--network", corpus_path,
                "--format", "html",
                "--out", str(target),
                self.QUERY,
            ]
        )
        assert code == 0
        assert target.exists()
        assert target.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")

    def test_html_format_requires_out(self, corpus_path):
        code, output = self._run(
            ["query", "--network", corpus_path, "--format", "html", self.QUERY]
        )
        assert code == 1
        assert "--out" in output

    def test_csv_to_file(self, corpus_path, tmp_path):
        target = tmp_path / "result.csv"
        code, __ = self._run(
            [
                "query",
                "--network", corpus_path,
                "--format", "csv",
                "--out", str(target),
                self.QUERY,
            ]
        )
        assert code == 0
        assert target.read_text().startswith("rank,")

    def test_workload_replay_from_file(self, corpus_path, tmp_path):
        log = tmp_path / "log.sql"
        log.write_text(
            "-- a dead entry and two live ones\n"
            'FIND OUTLIERS FROM author{"Ghost"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;\n"
            + self.QUERY + "\n"
            + self.QUERY + "\n",
            encoding="utf-8",
        )
        code, output = self._run(
            [
                "workload",
                "--network", corpus_path,
                "--queries-file", str(log),
                "--strategies", "pm",
            ]
        )
        assert code == 0
        assert "3 queries" in output
        assert "n=2" in output  # the dead anchor was skipped

    def test_workload_missing_file(self, corpus_path):
        code, output = self._run(
            ["workload", "--network", corpus_path, "--queries-file", "/nope.sql"]
        )
        assert code == 1
        assert "not found" in output

    def test_workload_bad_strategies(self, corpus_path):
        code, output = self._run(
            ["workload", "--network", corpus_path, "--strategies", " , "]
        )
        assert code == 1
        assert "no strategies" in output
