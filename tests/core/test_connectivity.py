"""Tests for :mod:`repro.core.connectivity` — the paper's Section 5.1 examples."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.connectivity import (
    connectivity,
    connectivity_matrix,
    normalized_connectivity,
    visibilities,
    visibility,
)
from repro.exceptions import MeasureError
from repro.metapath.materialize import materialize_row
from repro.metapath.metapath import MetaPath

PV = MetaPath.parse("author.paper.venue")


class TestFigure2Example:
    """Exact numbers from Section 5.1 / Figure 2."""

    @pytest.fixture()
    def vectors(self, figure2):
        jim = figure2.find_vertex("author", "Jim")
        mary = figure2.find_vertex("author", "Mary")
        return (
            materialize_row(figure2, PV, jim),
            materialize_row(figure2, PV, mary),
        )

    def test_connectivity_is_28(self, vectors):
        phi_jim, phi_mary = vectors
        assert connectivity(phi_jim, phi_mary) == 28.0

    def test_visibilities(self, vectors):
        phi_jim, phi_mary = vectors
        assert visibility(phi_jim) == 56.0  # 4² + 2² + 6²
        assert visibility(phi_mary) == 14.0  # 2² + 1² + 3²

    def test_normalized_connectivity_asymmetric(self, vectors):
        phi_jim, phi_mary = vectors
        assert normalized_connectivity(phi_jim, phi_mary) == 0.5
        assert normalized_connectivity(phi_mary, phi_jim) == 2.0

    def test_self_normalized_connectivity_is_one(self, vectors):
        phi_jim, phi_mary = vectors
        assert normalized_connectivity(phi_jim, phi_jim) == 1.0
        assert normalized_connectivity(phi_mary, phi_mary) == 1.0


class TestConnectivity:
    def test_dense_and_sparse_agree(self):
        dense_a = np.array([1.0, 2.0, 0.0])
        dense_b = np.array([0.0, 3.0, 4.0])
        sparse_a = sparse.csr_matrix(dense_a)
        sparse_b = sparse.csr_matrix(dense_b)
        expected = 6.0
        assert connectivity(dense_a, dense_b) == expected
        assert connectivity(sparse_a, sparse_b) == expected
        assert connectivity(dense_a, sparse_b) == expected

    def test_symmetry(self):
        a = np.array([1.0, 2.0])
        b = np.array([3.0, 4.0])
        assert connectivity(a, b) == connectivity(b, a)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(MeasureError, match="different dimensions"):
            connectivity(np.array([1.0]), np.array([1.0, 2.0]))

    def test_matrix_input_rejected(self):
        with pytest.raises(MeasureError):
            connectivity(np.ones((2, 2)), np.ones(2))

    def test_multi_row_sparse_rejected(self):
        with pytest.raises(MeasureError, match="single row"):
            connectivity(sparse.csr_matrix(np.ones((2, 2))), np.ones(2))


class TestVisibility:
    def test_zero_vector(self):
        assert visibility(np.zeros(4)) == 0.0

    def test_matches_squared_norm(self):
        vector = np.array([1.0, -2.0, 3.0])
        assert visibility(vector) == pytest.approx(np.dot(vector, vector))

    def test_visibilities_rowwise(self):
        matrix = np.array([[1.0, 2.0], [0.0, 3.0], [0.0, 0.0]])
        np.testing.assert_allclose(visibilities(matrix), [5.0, 9.0, 0.0])

    def test_visibilities_sparse(self):
        matrix = sparse.csr_matrix(np.array([[1.0, 2.0], [0.0, 3.0]]))
        np.testing.assert_allclose(visibilities(matrix), [5.0, 9.0])


class TestNormalizedConnectivity:
    def test_zero_visibility_returns_zero(self):
        assert normalized_connectivity(np.zeros(3), np.ones(3)) == 0.0

    def test_random_walk_interpretation(self):
        """κ(a, b) > 1 iff a is more connected to b than to itself."""
        a = np.array([1.0, 0.0])
        b = np.array([5.0, 0.0])
        assert normalized_connectivity(a, b) == 5.0
        assert normalized_connectivity(b, a) == pytest.approx(0.2)


class TestConnectivityMatrix:
    def test_matches_pairwise(self):
        rng = np.random.default_rng(0)
        candidates = rng.integers(0, 3, size=(4, 6)).astype(float)
        reference = rng.integers(0, 3, size=(5, 6)).astype(float)
        matrix = connectivity_matrix(candidates, reference)
        for i in range(4):
            for j in range(5):
                assert matrix[i, j] == pytest.approx(
                    connectivity(candidates[i], reference[j])
                )

    def test_sparse_inputs(self):
        candidates = sparse.csr_matrix(np.eye(3))
        reference = sparse.csr_matrix(np.ones((2, 3)))
        matrix = connectivity_matrix(candidates, reference)
        np.testing.assert_allclose(matrix, np.ones((3, 2)))
