"""Tests for :mod:`repro.relational` (tables, database, HIN conversion)."""

import pytest

from repro.relational import (
    Column,
    ForeignKey,
    RelationalDatabase,
    Table,
    database_to_hin,
)
from repro.relational.table import RelationalError


# ----------------------------------------------------------------------
# Shared example: customers -- orders -- products (with a junction).
# ----------------------------------------------------------------------
@pytest.fixture()
def shop():
    db = RelationalDatabase()
    customers = Table(
        "customer",
        [Column("id", int), Column("name"), Column("city")],
        "id",
    )
    customers.insert_many(
        [
            {"id": 1, "name": "alice", "city": "Boston"},
            {"id": 2, "name": "bob", "city": "Boston"},
            {"id": 3, "name": "carol", "city": "Reno"},
        ]
    )
    db.add_table(customers)

    products = Table("product", [Column("id", int), Column("name")], "id")
    products.insert_many(
        [
            {"id": 10, "name": "laptop"},
            {"id": 11, "name": "keyboard"},
            {"id": 12, "name": "tractor"},
        ]
    )
    db.add_table(products)

    orders = Table(
        "purchase",
        [
            Column("id", int),
            Column("customer_id", int),
            Column("product_id", int),
        ],
        "id",
        [
            ForeignKey("customer_id", "customer", "id"),
            ForeignKey("product_id", "product", "id"),
        ],
    )
    orders.insert_many(
        [
            {"id": 100, "customer_id": 1, "product_id": 10},
            {"id": 101, "customer_id": 1, "product_id": 11},
            {"id": 102, "customer_id": 2, "product_id": 10},
            {"id": 103, "customer_id": 2, "product_id": 11},
            {"id": 104, "customer_id": 3, "product_id": 12},
            {"id": 105, "customer_id": 3, "product_id": 12},
        ]
    )
    db.add_table(orders)
    return db


class TestTable:
    def test_insert_and_get(self):
        table = Table("t", [Column("id", int), Column("x")], "id")
        table.insert({"id": 1, "x": "a"})
        assert table.get(1) == {"id": 1, "x": "a"}

    def test_type_coercion(self):
        table = Table("t", [Column("id", int), Column("score", float)], "id")
        table.insert({"id": "5", "score": "2.5"})
        assert table.get(5) == {"id": 5, "score": 2.5}

    def test_coercion_failure(self):
        table = Table("t", [Column("id", int)], "id")
        with pytest.raises(RelationalError, match="coerce"):
            table.insert({"id": "abc"})

    def test_missing_columns_default_none(self):
        table = Table("t", [Column("id", int), Column("x")], "id")
        table.insert({"id": 1})
        assert table.get(1)["x"] is None

    def test_unknown_column_rejected(self):
        table = Table("t", [Column("id", int)], "id")
        with pytest.raises(RelationalError, match="unknown column"):
            table.insert({"id": 1, "ghost": 2})

    def test_duplicate_primary_key_rejected(self):
        table = Table("t", [Column("id", int)], "id")
        table.insert({"id": 1})
        with pytest.raises(RelationalError, match="duplicate"):
            table.insert({"id": 1})

    def test_null_primary_key_rejected(self):
        table = Table("t", [Column("id", int), Column("x")], "id")
        with pytest.raises(RelationalError, match="null"):
            table.insert({"x": "a"})

    def test_distinct(self):
        table = Table("t", [Column("id", int), Column("c")], "id")
        table.insert_many(
            [{"id": 1, "c": "a"}, {"id": 2, "c": "a"}, {"id": 3, "c": None}]
        )
        assert table.distinct("c") == {"a"}

    def test_invalid_names_rejected(self):
        with pytest.raises(RelationalError):
            Table("has space", [Column("id", int)], "id")
        with pytest.raises(RelationalError):
            Column("has space")
        with pytest.raises(RelationalError):
            Column("x", dtype=list)

    def test_primary_key_must_be_column(self):
        with pytest.raises(RelationalError, match="primary key"):
            Table("t", [Column("id", int)], "missing")

    def test_from_csv(self):
        table = Table.from_csv(
            "t",
            "id,city\n1,Boston\n2,\n",
            "id",
            dtypes={"id": int},
        )
        assert table.row_count == 2
        assert table.get(2)["city"] is None

    def test_from_csv_empty_rejected(self):
        with pytest.raises(RelationalError, match="header"):
            Table.from_csv("t", "", "id")


class TestDatabase:
    def test_fk_must_target_registered_table(self):
        db = RelationalDatabase()
        with pytest.raises(RelationalError, match="unknown"):
            db.add_table(
                Table(
                    "order",
                    [Column("id", int), Column("c", int)],
                    "id",
                    [ForeignKey("c", "customer", "id")],
                )
            )

    def test_fk_must_target_primary_key(self):
        db = RelationalDatabase()
        db.add_table(Table("customer", [Column("id", int), Column("x")], "id"))
        with pytest.raises(RelationalError, match="primary key"):
            db.add_table(
                Table(
                    "order",
                    [Column("id", int), Column("c", int)],
                    "id",
                    [ForeignKey("c", "customer", "x")],
                )
            )

    def test_duplicate_table_rejected(self, shop):
        with pytest.raises(RelationalError, match="duplicate table"):
            shop.add_table(Table("customer", [Column("id", int)], "id"))

    def test_integrity_passes(self, shop):
        shop.check_integrity()

    def test_integrity_catches_dangling_reference(self, shop):
        shop.table("purchase").insert(
            {"id": 999, "customer_id": 42, "product_id": 10}
        )
        with pytest.raises(RelationalError, match="missing"):
            shop.check_integrity()

    def test_null_fk_allowed(self, shop):
        shop.table("purchase").insert({"id": 999, "customer_id": None, "product_id": 10})
        shop.check_integrity()

    def test_junction_detection(self, shop):
        assert [t.name for t in shop.junction_tables()] == ["purchase"]

    def test_non_junction_with_extra_columns(self):
        db = RelationalDatabase()
        db.add_table(Table("a", [Column("id", int)], "id"))
        db.add_table(Table("b", [Column("id", int)], "id"))
        bridging = Table(
            "link",
            [
                Column("id", int),
                Column("a_id", int),
                Column("b_id", int),
                Column("note"),
            ],
            "id",
            [ForeignKey("a_id", "a", "id"), ForeignKey("b_id", "b", "id")],
        )
        db.add_table(bridging)
        assert db.junction_tables() == []


class TestConversion:
    def test_tables_become_vertex_types(self, shop):
        network = database_to_hin(shop, collapse_junction_tables=False)
        for vertex_type in ("customer", "product", "purchase"):
            assert network.schema.has_vertex_type(vertex_type)
        assert network.num_vertices("customer") == 3
        assert network.num_vertices("purchase") == 6

    def test_foreign_keys_become_edges(self, shop):
        network = database_to_hin(shop, collapse_junction_tables=False)
        assert network.schema.has_edge_type("purchase", "customer")
        assert network.schema.has_edge_type("customer", "purchase")

    def test_junction_collapse(self, shop):
        network = database_to_hin(shop, name_columns={"customer": "name"})
        assert not network.schema.has_vertex_type("purchase")
        assert network.schema.has_edge_type("customer", "product")
        alice = network.find_vertex("customer", "alice")
        # Alice purchased two distinct products once each.
        assert network.degree(alice, "product") == 2.0

    def test_junction_collapse_preserves_multiplicity(self, shop):
        network = database_to_hin(shop, name_columns={"customer": "name"})
        carol = network.find_vertex("customer", "carol")
        # Carol bought the tractor twice -> edge count 2.
        assert network.degree(carol, "product") == 2.0

    def test_name_columns(self, shop):
        network = database_to_hin(shop, name_columns={"customer": "name"})
        assert network.has_vertex("customer", "alice")

    def test_name_collision_disambiguated(self):
        db = RelationalDatabase()
        table = Table("user", [Column("id", int), Column("name")], "id")
        table.insert_many([{"id": 1, "name": "sam"}, {"id": 2, "name": "sam"}])
        db.add_table(table)
        network = database_to_hin(db, name_columns={"user": "name"})
        assert network.has_vertex("user", "sam")
        assert network.has_vertex("user", "sam#2")

    def test_expand_columns(self, shop):
        network = database_to_hin(
            shop,
            name_columns={"customer": "name"},
            expand_columns={"customer": ["city"]},
        )
        assert network.schema.has_vertex_type("city")
        assert network.has_vertex("city", "Boston")
        boston = network.find_vertex("city", "Boston")
        assert network.degree(boston, "customer") == 2.0

    def test_expanded_column_removed_from_attributes(self, shop):
        network = database_to_hin(
            shop,
            name_columns={"customer": "name"},
            expand_columns={"customer": ["city"]},
        )
        alice = network.vertex(network.find_vertex("customer", "alice"))
        assert "city" not in alice.attributes

    def test_attributes_carried(self, shop):
        network = database_to_hin(shop, name_columns={"customer": "name"})
        alice = network.vertex(network.find_vertex("customer", "alice"))
        assert alice.attributes["city"] == "Boston"

    def test_expand_unknown_column_rejected(self, shop):
        with pytest.raises(RelationalError, match="unknown column"):
            database_to_hin(shop, expand_columns={"customer": ["ghost"]})

    def test_integrity_checked_by_default(self, shop):
        shop.table("purchase").insert(
            {"id": 999, "customer_id": 42, "product_id": 10}
        )
        with pytest.raises(RelationalError):
            database_to_hin(shop)

    def test_null_fk_produces_no_edge(self, shop):
        shop.table("purchase").insert(
            {"id": 999, "customer_id": None, "product_id": 12}
        )
        network = database_to_hin(shop, name_columns={"customer": "name"})
        tractor = network.find_vertex("product", "12")
        # Carol's 2 purchases + the orphan's 1 edge to... none (null FK on
        # the customer side drops the whole junction edge).
        assert network.degree(tractor, "customer") == 2.0

    def test_outlier_query_on_converted_database(self, shop):
        """The §8 end goal: run the outlier language on relational data."""
        from repro.engine.detector import OutlierDetector

        network = database_to_hin(
            shop,
            name_columns={"customer": "name", "product": "name"},
            expand_columns={"customer": ["city"]},
        )
        detector = OutlierDetector(network)
        result = detector.detect(
            "FIND OUTLIERS FROM customer JUDGED BY customer.product TOP 1;"
        )
        # Carol buys tractors nobody else buys.
        assert result.names() == ["carol"]
