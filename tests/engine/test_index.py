"""Tests for :mod:`repro.engine.index`."""

import pytest
from scipy import sparse

from repro.engine.index import MetaPathIndex, build_pm_index, build_spm_index
from repro.exceptions import ExecutionError
from repro.hin.network import VertexId
from repro.metapath.materialize import materialize
from repro.metapath.metapath import MetaPath
from repro.utils.sparsetools import csr_storage_bytes

PV = MetaPath.parse("author.paper.venue")
PCA = MetaPath.parse("author.paper.author")


class TestMetaPathIndex:
    def test_full_matrix_lookup(self, figure1):
        index = MetaPathIndex()
        matrix = materialize(figure1, PV)
        index.store_full(PV, matrix)
        zoe = figure1.find_vertex("author", "Zoe")
        row = index.lookup(PV, zoe.index)
        assert (row != matrix.getrow(zoe.index)).nnz == 0

    def test_lookup_missing_path_returns_none(self):
        assert MetaPathIndex().lookup(PV, 0) is None

    def test_full_lookup_out_of_range_returns_none(self, figure1):
        index = MetaPathIndex()
        index.store_full(PV, materialize(figure1, PV))
        assert index.lookup(PV, 999) is None

    def test_partial_rows(self, figure1):
        index = MetaPathIndex()
        matrix = materialize(figure1, PV)
        index.store_row(PV, 0, matrix.getrow(0))
        assert index.lookup(PV, 0) is not None
        assert index.lookup(PV, 1) is None
        assert index.has_row(PV, 0)
        assert not index.has_row(PV, 1)

    def test_partial_after_full_rejected(self, figure1):
        index = MetaPathIndex()
        matrix = materialize(figure1, PV)
        index.store_full(PV, matrix)
        with pytest.raises(ExecutionError, match="full matrix"):
            index.store_row(PV, 0, matrix.getrow(0))

    def test_full_supersedes_partial(self, figure1):
        index = MetaPathIndex()
        matrix = materialize(figure1, PV)
        index.store_row(PV, 0, matrix.getrow(0))
        index.store_full(PV, matrix)
        assert index.full_matrix(PV) is not None
        assert index.lookup(PV, 1) is not None

    def test_multi_row_store_rejected(self, figure1):
        index = MetaPathIndex()
        matrix = materialize(figure1, PV)
        with pytest.raises(ExecutionError, match="single row"):
            index.store_row(PV, 0, matrix)

    def test_size_bytes_accounting(self, figure1):
        index = MetaPathIndex()
        matrix = materialize(figure1, PV)
        index.store_full(PV, matrix)
        assert index.size_bytes() == csr_storage_bytes(matrix)

    def test_partial_size_grows_with_rows(self, figure1):
        index = MetaPathIndex()
        matrix = materialize(figure1, PCA)
        index.store_row(PCA, 0, matrix.getrow(0))
        first = index.size_bytes()
        index.store_row(PCA, 1, matrix.getrow(1))
        assert index.size_bytes() > first

    def test_row_count(self, figure1):
        index = MetaPathIndex()
        matrix = materialize(figure1, PV)
        index.store_full(PV, matrix)
        index.store_row(PCA, 0, materialize(figure1, PCA).getrow(0))
        assert index.row_count() == matrix.shape[0] + 1

    def test_paths_listing(self, figure1):
        index = MetaPathIndex()
        index.store_full(PV, materialize(figure1, PV))
        index.store_row(PCA, 0, materialize(figure1, PCA).getrow(0))
        assert set(index.paths) == {PV, PCA}


class TestBuildPMIndex:
    def test_all_length2_paths_materialized(self, figure1):
        index = build_pm_index(figure1)
        for types in figure1.schema.length2_metapaths():
            path = MetaPath(types)
            matrix = index.full_matrix(path)
            assert matrix is not None
            expected = materialize(figure1, path)
            assert (matrix != expected).nnz == 0

    def test_index_covers_12_paths(self, figure1):
        index = build_pm_index(figure1)
        assert len(index.paths) == 12


class TestBuildSPMIndex:
    def test_rows_only_for_selected(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        index = build_spm_index(figure1, [zoe])
        assert index.has_row(PV, zoe.index)
        assert index.has_row(PCA, zoe.index)
        other = (zoe.index + 1) % figure1.num_vertices("author")
        assert not index.has_row(PV, other)

    def test_rows_match_materialization(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        index = build_spm_index(figure1, [zoe])
        expected = materialize(figure1, PV).getrow(zoe.index)
        assert (index.lookup(PV, zoe.index) != expected).nnz == 0

    def test_empty_selection(self, figure1):
        index = build_spm_index(figure1, [])
        assert index.size_bytes() == 0
        assert index.row_count() == 0

    def test_selected_vertices_of_multiple_types(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        kdd = figure1.find_vertex("venue", "KDD")
        index = build_spm_index(figure1, [zoe, kdd])
        assert index.has_row(MetaPath.parse("venue.paper.author"), kdd.index)
        assert index.has_row(PCA, zoe.index)

    def test_spm_smaller_than_pm(self, small_corpus):
        zoe = VertexId("author", 0)
        spm = build_spm_index(small_corpus, [zoe])
        pm = build_pm_index(small_corpus)
        assert spm.size_bytes() < pm.size_bytes()
