"""Tests for :mod:`repro.engine.strategies` — correctness and phase accounting."""

import numpy as np
import pytest

from repro.engine.index import build_spm_index
from repro.engine.stats import ExecutionStats
from repro.engine.strategies import (
    BaselineStrategy,
    PMStrategy,
    SPMStrategy,
    make_strategy,
)
from repro.exceptions import ExecutionError, MetaPathError
from repro.metapath.materialize import materialize
from repro.metapath.metapath import MetaPath

PV = MetaPath.parse("author.paper.venue")
PCA = MetaPath.parse("author.paper.author")
LONG = MetaPath.parse("author.paper.venue.paper.author")
ODD = MetaPath.parse("author.paper.venue.paper.author.paper")


def all_strategies(network, selected=None):
    return [
        BaselineStrategy(network),
        PMStrategy(network),
        SPMStrategy(network, selected=selected or []),
        SPMStrategy(network, selected=list(network.vertices("author"))),
    ]


class TestCorrectnessAcrossStrategies:
    @pytest.mark.parametrize("path", [PV, PCA, LONG, ODD], ids=str)
    def test_rows_match_ground_truth(self, figure1, path):
        truth = materialize(figure1, path)
        for strategy in all_strategies(figure1):
            for vertex in figure1.vertices("author"):
                row = strategy.neighbor_row(path, vertex.index)
                assert (row != truth.getrow(vertex.index)).nnz == 0, (
                    f"{strategy.name} row mismatch for {path} at {vertex}"
                )

    @pytest.mark.parametrize("path", [PV, LONG], ids=str)
    def test_matrices_match_ground_truth(self, figure1, path):
        truth = materialize(figure1, path)
        indices = [v.index for v in figure1.vertices("author")]
        for strategy in all_strategies(figure1):
            block = strategy.neighbor_matrix(path, indices)
            assert (block != truth).nnz == 0

    def test_single_hop_path(self, figure1):
        path = MetaPath.parse("author.paper")
        truth = figure1.adjacency("author", "paper")
        for strategy in all_strategies(figure1):
            row = strategy.neighbor_row(path, 0)
            assert (row != truth.getrow(0)).nnz == 0

    def test_length0_path_is_identity(self, figure1):
        path = MetaPath(("author",))
        for strategy in (PMStrategy(figure1), SPMStrategy(figure1)):
            row = strategy.neighbor_row(path, 1)
            assert row.nnz == 1
            assert row[0, 1] == 1.0

    def test_empty_matrix_request(self, figure1):
        for strategy in all_strategies(figure1):
            block = strategy.neighbor_matrix(PV, [])
            assert block.shape == (0, figure1.num_vertices("venue"))

    def test_synthetic_corpus_equivalence(self, small_corpus):
        """Strategies agree on a larger, messier network too."""
        truth = materialize(small_corpus, LONG)
        indices = list(range(0, small_corpus.num_vertices("author"), 7))
        selected = [v for v in small_corpus.vertices("author")][::3]
        strategies = [
            BaselineStrategy(small_corpus),
            PMStrategy(small_corpus),
            SPMStrategy(small_corpus, selected=selected),
        ]
        for strategy in strategies:
            block = strategy.neighbor_matrix(LONG, indices)
            expected = truth[indices, :]
            assert abs(block - expected).max() < 1e-9


class TestValidation:
    def test_invalid_path_rejected(self, figure1):
        bad = MetaPath.parse("author.venue")
        for strategy in all_strategies(figure1):
            with pytest.raises(MetaPathError):
                strategy.neighbor_row(bad, 0)

    def test_pm_out_of_range_vertex(self, figure1):
        with pytest.raises(MetaPathError, match="out of range"):
            PMStrategy(figure1).neighbor_row(PV, 999)

    def test_make_strategy_names(self, figure1):
        assert make_strategy(figure1, "baseline").name == "baseline"
        assert make_strategy(figure1, "PM").name == "pm"
        assert make_strategy(figure1, "spm").name == "spm"

    def test_make_strategy_unknown(self, figure1):
        with pytest.raises(ExecutionError, match="unknown strategy"):
            make_strategy(figure1, "turbo")

    def test_make_strategy_spm_selected(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        strategy = make_strategy(figure1, "spm", selected=[zoe])
        assert strategy.index.has_row(PV, zoe.index)


class TestPhaseAccounting:
    def test_baseline_counts_traversals(self, figure1):
        stats = ExecutionStats()
        BaselineStrategy(figure1).neighbor_row(PV, 0, stats)
        assert stats.traversed_vectors == 1
        assert stats.indexed_vectors == 0
        assert stats.not_indexed_seconds > 0
        assert stats.indexed_seconds == 0

    def test_pm_counts_indexed(self, figure1):
        stats = ExecutionStats()
        PMStrategy(figure1).neighbor_row(PV, 0, stats)
        assert stats.indexed_vectors == 1
        assert stats.traversed_vectors == 0
        assert stats.indexed_seconds > 0

    def test_pm_bulk_counts_all_vectors(self, figure1):
        stats = ExecutionStats()
        PMStrategy(figure1).neighbor_matrix(PV, [0, 1, 2], stats)
        assert stats.indexed_vectors == 3

    def test_spm_hit_vs_miss_phases(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        strategy = SPMStrategy(figure1, selected=[zoe])
        hit_stats = ExecutionStats()
        strategy.neighbor_row(PV, zoe.index, hit_stats)
        assert hit_stats.indexed_vectors == 1
        assert hit_stats.indexed_seconds > 0
        assert hit_stats.not_indexed_seconds == 0

        other = (zoe.index + 1) % figure1.num_vertices("author")
        miss_stats = ExecutionStats()
        strategy.neighbor_row(PV, other, miss_stats)
        assert miss_stats.traversed_vectors == 1
        assert miss_stats.not_indexed_seconds > 0

    def test_index_size_reporting(self, figure1):
        assert BaselineStrategy(figure1).index_size_bytes() == 0
        assert PMStrategy(figure1).index_size_bytes() > 0
        zoe = figure1.find_vertex("author", "Zoe")
        spm = SPMStrategy(figure1, selected=[zoe])
        assert 0 < spm.index_size_bytes() < PMStrategy(figure1).index_size_bytes()

    def test_prebuilt_index_reused(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        index = build_spm_index(figure1, [zoe])
        strategy = SPMStrategy(figure1, index=index)
        assert strategy.index is index
