"""Tests for :mod:`repro.engine.resilience` and :mod:`repro.faultinject`.

Everything here is deterministic: clocks and sleeps are injected fakes, and
faults fire on seeded schedules, so the suite proves *exactly* which rung of
the degradation ladder answered each query and when deadlines trip.
"""

import pytest

from repro import faultinject
from repro.engine.deadline import (
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.engine.detector import OutlierDetector
from repro.engine.executor import QueryExecutor
from repro.engine.resilience import (
    DEGRADATION_LADDER,
    CircuitBreaker,
    Deadline,
    FallbackStrategy,
    ResiliencePolicy,
    ResourceGuard,
    estimate_length2_nnz,
    estimate_pm_index_bytes,
    estimate_spm_index_bytes,
    retry_with_backoff,
)
from repro.engine.strategies import BaselineStrategy
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    DegradedResultWarning,
    ExecutionError,
    QuerySemanticError,
    ResourceLimitError,
    TransientFaultError,
)
from repro.faultinject import FaultInjector, FaultRule
from repro.metapath.metapath import MetaPath
from repro.query.parser import parse_query

ZOE_QUERY = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 3;"
)
TWO_FEATURE_QUERY = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue, author.paper.author TOP 3;"
)


class FakeClock:
    """A clock that advances a fixed step every time it is read."""

    def __init__(self, step: float = 0.01) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def make_policy(**kwargs) -> ResiliencePolicy:
    """A policy with fake time sources so no test ever sleeps for real."""
    kwargs.setdefault("clock", FakeClock())
    kwargs.setdefault("sleep", lambda _seconds: None)
    kwargs.setdefault("retry_base_delay", 0.0)
    return ResiliencePolicy(**kwargs)


# ----------------------------------------------------------------------
# Deadline primitives
# ----------------------------------------------------------------------
class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline.unlimited()
        assert not deadline.expired
        deadline.check("anything")  # does not raise

    def test_expiry_raises_with_budget_and_elapsed(self):
        clock = FakeClock(step=0.03)
        deadline = Deadline(0.05, clock=clock)
        with pytest.raises(DeadlineExceededError) as excinfo:
            while True:
                deadline.check("loop body")
        assert excinfo.value.budget_seconds == pytest.approx(0.05)
        assert excinfo.value.elapsed_seconds > 0.05

    def test_remaining_decreases(self):
        clock = FakeClock(step=0.01)
        deadline = Deadline(1.0, clock=clock)
        first = deadline.remaining()
        second = deadline.remaining()
        assert second < first

    def test_scope_installs_and_restores(self):
        deadline = Deadline.unlimited()
        assert current_deadline() is None
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            check_deadline("inside scope")
        assert current_deadline() is None

    def test_nested_scopes(self):
        outer, inner = Deadline.unlimited(), Deadline.unlimited()
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_none_scope_is_noop(self):
        with deadline_scope(None):
            assert current_deadline() is None
            check_deadline("no deadline active")  # does not raise

    def test_negative_budget_rejected(self):
        with pytest.raises(ExecutionError):
            Deadline(-1.0)


class TestDeadlineAcceptance:
    """Acceptance (a): deadline-exceeded raises within 2x the budget."""

    def test_query_deadline_raises_within_twice_budget(self, figure1):
        budget = 0.02
        policy = make_policy(
            timeout_seconds=budget,
            clock=FakeClock(step=0.01),
            allow_partial=False,
        )
        detector = OutlierDetector(figure1, strategy="baseline", resilience=policy)
        with pytest.raises(DeadlineExceededError) as excinfo:
            detector.detect(ZOE_QUERY)
        error = excinfo.value
        assert error.budget_seconds == pytest.approx(budget)
        # Cooperative checks are dense enough that the overrun is bounded:
        # the fake clock steps 0.01 per read, so one extra check at most.
        assert error.elapsed_seconds <= 2 * budget

    def test_no_timeout_means_no_deadline(self, figure1):
        policy = make_policy(timeout_seconds=None)
        detector = OutlierDetector(figure1, strategy="baseline", resilience=policy)
        result = detector.detect(ZOE_QUERY)
        assert len(result) == 3
        assert not result.degraded


class TestPartialResults:
    def test_deadline_mid_scoring_yields_partial_ranking(self, figure1):
        policy = make_policy(allow_partial=True)
        executor = QueryExecutor(BaselineStrategy(figure1), resilience=policy)
        original = executor._score_single_path
        calls = {"n": 0}

        def flaky(feature, candidates, reference, stats):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise DeadlineExceededError(
                    "budget gone", budget_seconds=0.1, elapsed_seconds=0.2
                )
            return original(feature, candidates, reference, stats)

        executor._score_single_path = flaky
        with pytest.warns(DegradedResultWarning):
            result = executor.execute(parse_query(TWO_FEATURE_QUERY))
        assert result.degraded
        assert "1 of 2 feature meta-paths" in result.degradation_reason
        assert len(result) == 3
        assert result.names()  # still a ranked answer

    def test_partial_disallowed_raises(self, figure1):
        policy = make_policy(allow_partial=False)
        executor = QueryExecutor(BaselineStrategy(figure1), resilience=policy)

        def always_late(feature, candidates, reference, stats):
            raise DeadlineExceededError(
                "budget gone", budget_seconds=0.1, elapsed_seconds=0.2
            )

        executor._score_single_path = always_late
        with pytest.raises(DeadlineExceededError):
            executor.execute(parse_query(TWO_FEATURE_QUERY))

    def test_no_partial_when_nothing_scored(self, figure1):
        """Partial needs at least one scored feature; else the error surfaces."""
        policy = make_policy(allow_partial=True)
        executor = QueryExecutor(BaselineStrategy(figure1), resilience=policy)

        def always_late(feature, candidates, reference, stats):
            raise DeadlineExceededError(
                "budget gone", budget_seconds=0.1, elapsed_seconds=0.2
            )

        executor._score_single_path = always_late
        with pytest.raises(DeadlineExceededError):
            executor.execute(parse_query(TWO_FEATURE_QUERY))


# ----------------------------------------------------------------------
# Retry with exponential backoff
# ----------------------------------------------------------------------
class TestRetry:
    def test_transient_then_recover(self):
        attempts = {"n": 0}
        sleeps: list[float] = []

        def operation():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise TransientFaultError("flaky")
            return "ok"

        result = retry_with_backoff(
            operation, attempts=3, base_delay=0.1, multiplier=2.0, sleep=sleeps.append
        )
        assert result == "ok"
        assert attempts["n"] == 3
        assert sleeps == [0.1, 0.2]  # exponential backoff, recorded not slept

    def test_exhausted_attempts_propagate_last_error(self):
        def operation():
            raise TransientFaultError("never recovers")

        with pytest.raises(TransientFaultError):
            retry_with_backoff(operation, attempts=3, sleep=lambda _s: None)

    def test_non_retryable_propagates_immediately(self):
        attempts = {"n": 0}

        def operation():
            attempts["n"] += 1
            raise ExecutionError("permanent")

        with pytest.raises(ExecutionError):
            retry_with_backoff(operation, attempts=5, sleep=lambda _s: None)
        assert attempts["n"] == 1

    def test_deadline_checked_before_backoff_sleep(self):
        clock = FakeClock(step=0.2)
        deadline = Deadline(0.1, clock=clock)

        def operation():
            raise TransientFaultError("flaky")

        with pytest.raises(DeadlineExceededError):
            retry_with_backoff(
                operation, attempts=5, sleep=lambda _s: None, deadline=deadline
            )

    def test_zero_attempts_rejected(self):
        with pytest.raises(ExecutionError):
            retry_with_backoff(lambda: None, attempts=0)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _failing(self):
        raise TransientFaultError("down")

    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(3):
            with pytest.raises(TransientFaultError):
                breaker.call(self._failing)
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(self._failing)

    def test_open_short_circuits_the_operation(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        with pytest.raises(TransientFaultError):
            breaker.call(self._failing)
        calls = {"n": 0}

        def counted():
            calls["n"] += 1

        with pytest.raises(CircuitOpenError):
            breaker.call(counted)
        assert calls["n"] == 0  # the guarded operation was never invoked

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            with pytest.raises(TransientFaultError):
                breaker.call(self._failing)
        breaker.call(lambda: "fine")
        assert breaker.consecutive_failures == 0
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_reset_window(self):
        clock = FakeClock(step=0.0)
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=10.0, clock=clock
        )
        with pytest.raises(TransientFaultError):
            breaker.call(self._failing)
        assert breaker.state == CircuitBreaker.OPEN
        clock.now += 11.0  # the reset window elapses
        assert breaker.call(lambda: "recovered") == "recovered"
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        clock = FakeClock(step=0.0)
        breaker = CircuitBreaker(
            failure_threshold=2, reset_seconds=10.0, clock=clock
        )
        for _ in range(2):
            with pytest.raises(TransientFaultError):
                breaker.call(self._failing)
        clock.now += 11.0
        with pytest.raises(TransientFaultError):  # the trial call fails...
            breaker.call(self._failing)
        assert breaker.state == CircuitBreaker.OPEN  # ...and re-opens
        with pytest.raises(CircuitOpenError):
            breaker.call(self._failing)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ExecutionError):
            CircuitBreaker(failure_threshold=0)


class TestBreakerAcceptance:
    """Acceptance (c): the breaker opens after N consecutive index-build
    failures and short-circuits further attempts — no more build calls."""

    def test_breaker_short_circuits_index_builds(self, figure1):
        policy = make_policy(retry_attempts=1, breaker_threshold=2)
        rule = FaultRule(point="index_build", times=None)  # always failing
        with faultinject.inject(rule) as injector:
            # Two detectors sharing the policy: each PM build attempt fails,
            # feeding the shared breaker.
            for _ in range(2):
                detector = OutlierDetector(figure1, strategy="pm", resilience=policy)
                result = detector.detect(ZOE_QUERY)
                assert result.degraded
            build_calls_when_open = injector.calls["index_build"]
            assert policy.breaker("pm-index-build").state == CircuitBreaker.OPEN

            # Third detector: the open breaker short-circuits before the
            # builder runs, so the fault point sees no new calls... but the
            # query is still answered by a weaker rung.
            detector = OutlierDetector(figure1, strategy="pm", resilience=policy)
            result = detector.detect(ZOE_QUERY)
            assert injector.calls["index_build"] == build_calls_when_open
            assert result.degraded
            assert "circuit breaker" in result.degradation_reason
            assert len(result) == 3


# ----------------------------------------------------------------------
# Memory guardrails
# ----------------------------------------------------------------------
class TestResourceGuard:
    def test_unlimited_guard_passes_everything(self):
        ResourceGuard(None).check_estimate(10**12, "anything")

    def test_over_budget_raises_with_sizes(self):
        guard = ResourceGuard(max_memory_bytes=1000)
        with pytest.raises(ResourceLimitError) as excinfo:
            guard.check_estimate(2000, "the PM index build")
        assert excinfo.value.estimated_bytes == 2000
        assert excinfo.value.limit_bytes == 1000

    def test_under_budget_passes(self):
        ResourceGuard(max_memory_bytes=1000).check_estimate(999, "small build")

    def test_estimates_are_positive_and_ordered(self, figure1):
        """PM prices every vertex; SPM over a subset must cost less."""
        pm_bytes = estimate_pm_index_bytes(figure1)
        zoe = figure1.find_vertex("author", "Zoe")
        spm_bytes = estimate_spm_index_bytes(figure1, [zoe])
        assert pm_bytes > 0
        assert 0 < spm_bytes < pm_bytes

    def test_length2_estimate_requires_two_hops(self, figure1):
        with pytest.raises(ExecutionError):
            estimate_length2_nnz(figure1, MetaPath.parse("author.paper.author.paper"))

    def test_nnz_estimate_bounded_by_dense(self, figure1):
        path = MetaPath.parse("author.paper.venue")
        estimate = estimate_length2_nnz(figure1, path)
        dense = figure1.num_vertices("author") * figure1.num_vertices("venue")
        assert 0 < estimate <= dense

    def test_tiny_memory_budget_demotes_the_pm_rung(self, figure1):
        """An unaffordable PM estimate demotes instead of OOM-ing."""
        policy = make_policy(max_memory_mb=1e-6)  # ~1 byte: PM cannot fit
        detector = OutlierDetector(figure1, strategy="pm", resilience=policy)
        result = detector.detect(ZOE_QUERY)
        assert result.degraded
        assert "memory budget" in result.degradation_reason
        assert detector.strategy.active_rung != "pm"
        assert len(result) == 3

    def test_memory_budget_raises_when_degradation_disallowed(self, figure1):
        policy = make_policy(max_memory_mb=1e-6, allow_degraded=False)
        strategy = FallbackStrategy(figure1, ladder=("pm",), policy=policy)
        executor = QueryExecutor(strategy, resilience=policy)
        with pytest.raises(ResourceLimitError):
            executor.execute(ZOE_QUERY)


# ----------------------------------------------------------------------
# The degradation ladder (acceptance (b))
# ----------------------------------------------------------------------
class TestDegradationLadder:
    def test_pm_build_failure_degrades_to_baseline_and_ranks(self, figure1):
        """Acceptance (b): forced PM build failure walks the ladder down to
        on-the-fly counting and still returns a ranked, flagged result."""
        policy = make_policy(retry_attempts=1)
        rule = FaultRule(point="index_build", times=None)
        with faultinject.inject(rule, seed=7) as injector:
            detector = OutlierDetector(figure1, strategy="pm", resilience=policy)
            with pytest.warns(DegradedResultWarning):
                result = detector.detect(ZOE_QUERY)
        assert injector.fired["index_build"] > 0
        assert result.degraded
        assert result.degradation_reason.startswith("pm: build failed")
        assert "spm:" in result.degradation_reason
        strategy = detector.strategy
        assert isinstance(strategy, FallbackStrategy)
        assert strategy.active_rung == "baseline"
        assert [rung for rung, _ in strategy.events] == ["pm", "spm"]
        # The answer itself is a complete ranking from the baseline rung.
        assert len(result) == 3
        assert result.names()[0] is not None
        assert result.to_json()  # degraded flag serializes

    def test_degraded_ranking_matches_undegraded_baseline(self, figure1):
        """The baseline rung answers identically to a plain baseline run."""
        policy = make_policy(retry_attempts=1)
        with faultinject.inject(FaultRule(point="index_build", times=None)):
            detector = OutlierDetector(figure1, strategy="pm", resilience=policy)
            with pytest.warns(DegradedResultWarning):
                degraded = detector.detect(ZOE_QUERY)
        plain = OutlierDetector(figure1, strategy="baseline").detect(ZOE_QUERY)
        assert [(e.name, pytest.approx(e.score)) for e in plain] == [
            (e.name, e.score) for e in degraded
        ]

    def test_deterministic_under_fixed_seed(self, figure1):
        """Same seed, same rules -> byte-identical degradation story."""
        outcomes = []
        for _ in range(2):
            policy = make_policy(retry_attempts=2)
            rule = FaultRule(point="index_build", probability=0.5, times=None)
            with faultinject.inject(rule, seed=123) as injector:
                detector = OutlierDetector(figure1, strategy="pm", resilience=policy)
                result = detector.detect(ZOE_QUERY)
                outcomes.append(
                    (
                        dict(injector.calls),
                        dict(injector.fired),
                        result.degraded,
                        result.degradation_reason,
                        [(e.name, e.score) for e in result],
                    )
                )
        assert outcomes[0] == outcomes[1]

    def test_transient_fault_recovered_by_retry_not_degraded(self, figure1):
        """One transient build failure is absorbed by the retry layer."""
        policy = make_policy(retry_attempts=3)
        rule = FaultRule(point="index_build", times=1)
        with faultinject.inject(rule) as injector:
            detector = OutlierDetector(figure1, strategy="pm", resilience=policy)
            result = detector.detect(ZOE_QUERY)
        assert injector.fired["index_build"] == 1
        assert not result.degraded
        assert result.degradation_reason is None
        assert detector.strategy.active_rung == "pm"

    def test_allow_degraded_false_raises_instead(self, figure1):
        policy = make_policy(retry_attempts=1, allow_degraded=False)
        with faultinject.inject(FaultRule(point="index_build", times=None)):
            # allow_degraded=False -> plain strategy path, no ladder: the
            # build failure surfaces directly.
            with pytest.raises(TransientFaultError):
                OutlierDetector(figure1, strategy="pm", resilience=policy)

    def test_spm_request_starts_partway_down_the_ladder(self, figure1):
        policy = make_policy(retry_attempts=1)
        detector = OutlierDetector(figure1, strategy="spm", resilience=policy)
        assert isinstance(detector.strategy, FallbackStrategy)
        assert detector.strategy.ladder == ("spm", "baseline")

    def test_unknown_rung_rejected(self, figure1):
        with pytest.raises(ExecutionError):
            FallbackStrategy(figure1, ladder=("pm", "turbo"))

    def test_empty_ladder_rejected(self, figure1):
        with pytest.raises(ExecutionError):
            FallbackStrategy(figure1, ladder=())

    def test_matrix_multiply_fault_degrades_serving_pm(self, figure1):
        """A fault while *serving* from PM (not building) also demotes."""
        policy = make_policy(retry_attempts=1)
        detector = OutlierDetector(figure1, strategy="pm", resilience=policy)
        assert detector.strategy.active_rung == "pm"
        # PM multiplies stored length-2 matrices only for longer paths.
        long_query = (
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.author.paper.venue TOP 3;"
        )
        with faultinject.inject(FaultRule(point="matrix_multiply", times=None)):
            with pytest.warns(DegradedResultWarning):
                result = detector.detect(long_query)
        assert result.degraded
        assert detector.strategy.active_rung != "pm"
        assert len(result) == 3


# ----------------------------------------------------------------------
# Policy plumbing
# ----------------------------------------------------------------------
class TestResiliencePolicy:
    def test_defaults_are_permissive(self):
        policy = ResiliencePolicy()
        assert policy.deadline() is None
        assert policy.max_memory_bytes is None
        assert policy.allow_degraded and policy.allow_partial

    def test_deadline_built_from_timeout(self):
        policy = make_policy(timeout_seconds=5.0)
        deadline = policy.deadline()
        assert deadline is not None
        assert deadline.budget_seconds == 5.0

    def test_max_memory_mb_converts_to_bytes(self):
        assert make_policy(max_memory_mb=2.5).max_memory_bytes == 2_500_000

    def test_breakers_are_cached_per_key(self):
        policy = make_policy()
        assert policy.breaker("pm-index-build") is policy.breaker("pm-index-build")
        assert policy.breaker("pm-index-build") is not policy.breaker("spm-index-build")

    def test_detector_rejects_unknown_strategy_name(self, figure1):
        with pytest.raises(ExecutionError):
            OutlierDetector(figure1, strategy="warp", resilience=make_policy())


# ----------------------------------------------------------------------
# Fault injection harness
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_no_injector_means_noop(self):
        assert faultinject.active_injector() is None
        faultinject.check("index_build")  # does not raise

    def test_unknown_point_rejected(self):
        with pytest.raises(ExecutionError):
            FaultRule(point="warp_drive")

    def test_bad_probability_rejected(self):
        with pytest.raises(ExecutionError):
            FaultRule(point="io", probability=1.5)

    def test_times_limits_firings(self):
        with faultinject.inject(FaultRule(point="io", times=2)) as injector:
            fired = 0
            for _ in range(5):
                try:
                    faultinject.check("io")
                except TransientFaultError:
                    fired += 1
        assert fired == 2
        assert injector.calls["io"] == 5
        assert injector.fired["io"] == 2

    def test_after_calls_delays_eligibility(self):
        rule = FaultRule(point="cache_read", after_calls=3, times=1)
        with faultinject.inject(rule) as injector:
            outcomes = []
            for _ in range(5):
                try:
                    faultinject.check("cache_read")
                    outcomes.append("ok")
                except TransientFaultError:
                    outcomes.append("fault")
        assert outcomes == ["ok", "ok", "ok", "fault", "ok"]
        assert injector.fired["cache_read"] == 1

    def test_probability_schedule_is_seed_deterministic(self):
        def run(seed):
            pattern = []
            rule = FaultRule(point="matrix_multiply", probability=0.5)
            with faultinject.inject(rule, seed=seed):
                for _ in range(20):
                    try:
                        faultinject.check("matrix_multiply")
                        pattern.append(0)
                    except TransientFaultError:
                        pattern.append(1)
            return pattern

        assert run(42) == run(42)
        assert run(42) != run(43)  # different seed, different schedule

    def test_custom_error_and_message(self):
        rule = FaultRule(point="io", error=ExecutionError, message="disk on fire")
        with faultinject.inject(rule):
            with pytest.raises(ExecutionError, match="disk on fire"):
                faultinject.check("io")

    def test_context_manager_deactivates_on_exit(self):
        with faultinject.inject(FaultRule(point="io")) as injector:
            assert faultinject.active_injector() is injector
        assert faultinject.active_injector() is None
        faultinject.check("io")  # quiet again

    def test_manual_activate_deactivate(self):
        injector = FaultInjector(rules=[FaultRule(point="io")])
        injector.activate()
        try:
            assert faultinject.active_injector() is injector
        finally:
            injector.deactivate()
        assert faultinject.active_injector() is None


class TestCacheReadFaults:
    def test_cache_read_fault_self_heals(self, figure1):
        """An injected cache-read fault drops the row and recomputes: the
        query still answers correctly, and the event is counted."""
        from repro.engine.caching import CachingStrategy

        strategy = CachingStrategy(BaselineStrategy(figure1))
        executor = QueryExecutor(strategy)
        clean = executor.execute(ZOE_QUERY)  # populate the cache
        rule = FaultRule(point="cache_read", times=1)
        with faultinject.inject(rule):
            healed = executor.execute(ZOE_QUERY)
        assert strategy.faulted_reads == 1
        assert [(e.name, e.score) for e in healed] == [
            (e.name, e.score) for e in clean
        ]


# ----------------------------------------------------------------------
# Execution-time TOP k validation (satellite)
# ----------------------------------------------------------------------
class TestTopKValidation:
    def _query_with_top_k(self, top_k):
        ast = parse_query(ZOE_QUERY)
        object.__setattr__(ast, "top_k", top_k)
        return ast

    def test_float_top_k_rejected_at_execution(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1))
        with pytest.raises(QuerySemanticError, match="TOP k"):
            executor.execute(self._query_with_top_k(2.5))

    def test_bool_top_k_rejected_at_execution(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1))
        with pytest.raises(QuerySemanticError, match="TOP k"):
            executor.execute(self._query_with_top_k(True))

    def test_zero_and_negative_top_k_rejected(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1))
        for bad in (0, -3):
            with pytest.raises(QuerySemanticError, match="positive"):
                executor.execute(self._query_with_top_k(bad))

    def test_valid_top_k_unaffected(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1))
        assert len(executor.execute(self._query_with_top_k(2))) == 2
