"""Tests for :mod:`repro.engine.executor` — end-to-end query execution."""

import numpy as np
import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.strategies import BaselineStrategy, PMStrategy, SPMStrategy
from repro.exceptions import ExecutionError, QuerySemanticError, QuerySyntaxError
from repro.query.parser import parse_query

TABLE2_QUERY = """
FIND OUTLIERS
FROM author{"Sarah"} UNION author{"Rob"} UNION author{"Lucy"}
     UNION author{"Joe"} UNION author{"Emma"}
COMPARED TO author AS A WHERE COUNT(A.paper) = 22
JUDGED BY author.paper.venue
TOP 5;
"""


class TestEndToEnd:
    def test_table2_query_reproduces_paper_scores(self, table1):
        """Full pipeline (parse -> evaluate -> score) reproduces Table 2.

        The reference set 'authors with exactly 22 papers' selects exactly
        the 100 reference authors (10+10+1+1 = 22 papers each; Sarah also
        has 22 and is legitimately part of the reference population).
        """
        network, _, _ = table1
        executor = QueryExecutor(BaselineStrategy(network))
        result = executor.execute(TABLE2_QUERY)
        # Sarah matches the WHERE too, so |Sr| = 101 and every score is
        # shifted by one extra reference clone relative to Table 2's 100;
        # re-derive expectations directly: Ω = κ·|Sr| for clones.
        assert result.reference_count == 101
        scores = {entry.name: entry.score for entry in result}
        assert scores["Sarah"] == pytest.approx(101.0)
        assert scores["Emma"] == pytest.approx(101 / 30, rel=1e-6)
        assert result.names()[0] == "Emma"  # strongest outlier first

    def test_results_identical_across_strategies(self, figure1):
        query = (
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        results = []
        for strategy in (
            BaselineStrategy(figure1),
            PMStrategy(figure1),
            SPMStrategy(figure1, selected=[figure1.find_vertex("author", "Zoe")]),
        ):
            result = QueryExecutor(strategy).execute(query)
            results.append([(e.name, round(e.score, 12)) for e in result])
        assert results[0] == results[1] == results[2]

    def test_accepts_parsed_ast(self, figure1):
        ast = parse_query(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 2;"
        )
        result = QueryExecutor(BaselineStrategy(figure1)).execute(ast)
        assert len(result) == 2

    def test_reference_defaults_to_candidates(self, figure1):
        result = QueryExecutor(BaselineStrategy(figure1)).execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        assert result.reference_count == result.candidate_count == 3

    def test_top_k_larger_than_candidates(self, figure1):
        result = QueryExecutor(BaselineStrategy(figure1)).execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 50;"
        )
        assert len(result) == 3

    def test_multiple_features_weighted_average(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1))
        venue_only = executor.execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        coauthor_only = executor.execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.author TOP 3;"
        )
        both = executor.execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue: 3.0, author.paper.author TOP 3;"
        )
        for vertex, combined in both.scores.items():
            expected = (
                3.0 * venue_only.scores[vertex] + 1.0 * coauthor_only.scores[vertex]
            ) / 4.0
            assert combined == pytest.approx(expected)

    def test_measure_selection_by_name(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1), measure="cossim")
        result = executor.execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        assert result.measure == "cossim"


class TestErrors:
    def test_syntax_error_propagates(self, figure1):
        with pytest.raises(QuerySyntaxError):
            QueryExecutor(BaselineStrategy(figure1)).execute("FIND weirdness;")

    def test_semantic_error_propagates(self, figure1):
        with pytest.raises(QuerySemanticError):
            QueryExecutor(BaselineStrategy(figure1)).execute(
                'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
                "JUDGED BY venue.paper.term TOP 3;"
            )

    def test_empty_candidate_set(self, figure1):
        with pytest.raises(ExecutionError, match="candidate set is empty"):
            QueryExecutor(BaselineStrategy(figure1)).execute(
                'FIND OUTLIERS FROM author AS A WHERE COUNT(A.paper) > 99 '
                "JUDGED BY author.paper.venue TOP 3;"
            )

    def test_empty_reference_set(self, figure1):
        with pytest.raises(ExecutionError, match="reference set is empty"):
            QueryExecutor(BaselineStrategy(figure1)).execute(
                'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
                "COMPARED TO author AS A WHERE COUNT(A.paper) > 99 "
                "JUDGED BY author.paper.venue TOP 3;"
            )


class TestStats:
    def test_stats_attached_by_default(self, figure1):
        result = QueryExecutor(BaselineStrategy(figure1)).execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        assert result.stats is not None
        assert result.stats.wall_seconds > 0
        assert result.stats.total_seconds > 0

    def test_stats_disabled(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1), collect_stats=False)
        result = executor.execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        assert result.stats is None

    def test_baseline_records_not_indexed_phase(self, figure1):
        result = QueryExecutor(BaselineStrategy(figure1)).execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        assert result.stats.not_indexed_seconds > 0
        assert result.stats.indexed_seconds == 0
        assert result.stats.scoring_seconds > 0

    def test_pm_records_indexed_phase(self, figure1):
        result = QueryExecutor(PMStrategy(figure1)).execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        assert result.stats.indexed_seconds > 0
        assert result.stats.not_indexed_seconds == 0


class TestExecuteMany:
    def test_aggregated_stats(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1))
        queries = [
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        ] * 4
        results, aggregate = executor.execute_many(queries)
        assert len(results) == 4
        assert aggregate.queries == 4
        assert aggregate.wall_seconds >= sum(r.stats.wall_seconds for r in results) * 0.99

    def test_skip_failures(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1))
        queries = [
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;",
            # Empty candidate set -> ExecutionError -> skipped.
            'FIND OUTLIERS FROM author AS A WHERE COUNT(A.paper) > 99 '
            "JUDGED BY author.paper.venue TOP 3;",
        ]
        results, aggregate = executor.execute_many(queries, skip_failures=True)
        assert len(results) == 1

    def test_skip_failures_covers_dead_anchors(self, figure1):
        """A query-log entry whose anchor vanished is skipped, not fatal."""
        executor = QueryExecutor(BaselineStrategy(figure1))
        queries = [
            'FIND OUTLIERS FROM author{"Ghost Author"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;",
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;",
        ]
        results, __ = executor.execute_many(queries, skip_failures=True)
        assert len(results) == 1

    def test_skip_failures_does_not_hide_syntax_errors(self, figure1):
        from repro.exceptions import QuerySyntaxError

        executor = QueryExecutor(BaselineStrategy(figure1))
        with pytest.raises(QuerySyntaxError):
            executor.execute_many(["FIND gibberish"], skip_failures=True)

    def test_failures_are_collected_per_query(self, figure1):
        """One failing query no longer aborts the batch: errors come back
        keyed by query index alongside the successful results."""
        executor = QueryExecutor(BaselineStrategy(figure1))
        good = (
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        bad = (
            'FIND OUTLIERS FROM author AS A WHERE COUNT(A.paper) > 99 '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        batch = executor.execute_many([good, bad, good])
        results, stats = batch  # the historical 2-tuple unpacking works
        assert len(results) == 2
        assert stats.queries == 2
        assert set(batch.errors) == {1}
        assert isinstance(batch.errors[1], ExecutionError)

    def test_batch_execution_attributes(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1))
        query = (
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        batch = executor.execute_many([query])
        assert batch.results == batch[0]
        assert batch.stats is batch[1]
        assert batch.errors == {}
