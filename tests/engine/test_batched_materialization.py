"""Unit tests for the batched materialization layer.

Covers the canonical-output contract (float64, sorted, duplicate-free —
the dtype-drift regression), block counters, and the block-mode phase
accounting: attribution lands only in the two materialization phases,
never exceeds measured wall time, and SPM's element-count hit/miss
counters match the row-at-a-time path exactly.
"""

import math
import time

import numpy as np
import pytest

from repro.engine.caching import CachingStrategy
from repro.engine.stats import PHASE_INDEXED, PHASE_NOT_INDEXED, ExecutionStats
from repro.engine.strategies import (
    BLOCK_ROWS,
    BaselineStrategy,
    PMStrategy,
    SPMStrategy,
)
from repro.hin.bibliographic import BibliographicNetworkBuilder, Publication
from repro.metapath.metapath import MetaPath

COAUTHOR = MetaPath(("author", "paper", "author"))
TWO_SEGMENT = MetaPath(("author", "paper", "venue", "paper", "author"))


@pytest.fixture(scope="module")
def network():
    builder = BibliographicNetworkBuilder()
    publications = []
    for p in range(40):
        publications.append(
            Publication(
                key=f"p{p}",
                authors=[f"A{p % 12}", f"A{(p * 3 + 1) % 12}"],
                venue=f"V{p % 4}",
                terms=[f"t{p % 6}", f"t{(p + 2) % 6}"],
            )
        )
    builder.add_publications(publications)
    return builder.build()


def _strategies(network):
    selected = list(network.vertices("author"))[::3]
    return [
        BaselineStrategy(network),
        PMStrategy(network),
        SPMStrategy(network, selected=selected),
        CachingStrategy(BaselineStrategy(network), max_rows=256),
    ]


class TestCanonicalOutput:
    """Regression: every strategy returns float64 CSR in canonical form
    (sorted, duplicate-free indices) from both the row and bulk APIs."""

    @pytest.mark.parametrize("path", [COAUTHOR, TWO_SEGMENT])
    def test_rows_and_matrices_are_canonical(self, network, path):
        indices = list(range(network.num_vertices("author")))
        for strategy in _strategies(network):
            row = strategy.neighbor_row(path, indices[0])
            block = strategy.neighbor_matrix(path, indices)
            for matrix in (row, block):
                assert matrix.dtype == np.float64, strategy.name
                assert matrix.has_sorted_indices, strategy.name
                for start, stop in zip(matrix.indptr, matrix.indptr[1:]):
                    columns = matrix.indices[start:stop]
                    assert np.all(np.diff(columns) > 0), strategy.name

    def test_warm_cache_stays_canonical(self, network):
        cached = CachingStrategy(BaselineStrategy(network), max_rows=256)
        indices = list(range(network.num_vertices("author")))
        cold = cached.neighbor_matrix(COAUTHOR, indices)
        warm = cached.neighbor_matrix(COAUTHOR, indices)
        assert warm.dtype == np.float64
        assert warm.has_sorted_indices
        assert np.array_equal(cold.indptr, warm.indptr)
        assert np.array_equal(cold.indices, warm.indices)
        assert np.array_equal(cold.data, warm.data)


class TestBlockCounters:
    def test_block_count_and_vector_counters(self, network):
        indices = list(range(network.num_vertices("author")))
        expected_blocks = math.ceil(len(indices) / BLOCK_ROWS)

        baseline_stats = ExecutionStats()
        BaselineStrategy(network).neighbor_matrix(
            COAUTHOR, indices, baseline_stats
        )
        assert baseline_stats.materialized_blocks == expected_blocks
        assert baseline_stats.traversed_vectors == len(indices)
        assert baseline_stats.indexed_vectors == 0

        pm_stats = ExecutionStats()
        PMStrategy(network).neighbor_matrix(COAUTHOR, indices, pm_stats)
        assert pm_stats.materialized_blocks == expected_blocks
        assert pm_stats.indexed_vectors == len(indices)
        assert pm_stats.traversed_vectors == 0

    @pytest.mark.parametrize("path", [COAUTHOR, TWO_SEGMENT])
    def test_spm_counters_match_per_row_path(self, network, path):
        """Bulk element-count accounting reproduces the row-at-a-time
        hit/miss counters exactly, segment expansions included."""
        selected = list(network.vertices("author"))[::3]
        indices = list(range(network.num_vertices("author")))

        bulk = SPMStrategy(network, selected=selected)
        bulk_stats = ExecutionStats()
        bulk.neighbor_matrix(path, indices, bulk_stats)

        per_row = SPMStrategy(network, selected=selected)
        row_stats = ExecutionStats()
        for index in indices:
            per_row.neighbor_row(path, index, row_stats)

        assert bulk_stats.indexed_vectors == row_stats.indexed_vectors
        assert bulk_stats.traversed_vectors == row_stats.traversed_vectors
        assert bulk_stats.indexed_vectors > 0
        assert bulk_stats.traversed_vectors > 0


class TestBlockPhaseAttribution:
    def test_attribution_bounded_by_wall_and_complete(self, network):
        """Block-mode time lands only in the two materialization phases,
        both phases receive time under mixed coverage, and their sum never
        exceeds the measured wall time of the call."""
        selected = list(network.vertices("author"))[::3]
        strategy = SPMStrategy(network, selected=selected)
        indices = list(range(network.num_vertices("author")))
        stats = ExecutionStats()
        started = time.perf_counter()
        strategy.neighbor_matrix(TWO_SEGMENT, indices, stats)
        elapsed = time.perf_counter() - started

        assert stats.indexed_seconds > 0
        assert stats.not_indexed_seconds > 0
        assert set(stats.timer.totals) <= {PHASE_INDEXED, PHASE_NOT_INDEXED}
        assert stats.materialization_seconds <= elapsed
        assert stats.materialization_seconds == (
            stats.indexed_seconds + stats.not_indexed_seconds
        )
