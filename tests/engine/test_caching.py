"""Tests for :mod:`repro.engine.caching`."""

import pytest

from repro.engine.caching import CachingStrategy
from repro.engine.executor import QueryExecutor
from repro.engine.stats import ExecutionStats
from repro.engine.strategies import BaselineStrategy, PMStrategy
from repro.exceptions import ExecutionError
from repro.metapath.metapath import MetaPath

PV = MetaPath.parse("author.paper.venue")
PCA = MetaPath.parse("author.paper.author")


class TestCachingStrategy:
    def test_rows_match_inner(self, figure1):
        inner = BaselineStrategy(figure1)
        cached = CachingStrategy(inner)
        for vertex in figure1.vertices("author"):
            direct = inner.neighbor_row(PV, vertex.index)
            via_cache = cached.neighbor_row(PV, vertex.index)
            assert (direct != via_cache).nnz == 0

    def test_hit_miss_accounting(self, figure1):
        cached = CachingStrategy(BaselineStrategy(figure1))
        cached.neighbor_row(PV, 0)
        cached.neighbor_row(PV, 0)
        cached.neighbor_row(PV, 1)
        assert cached.misses == 2
        assert cached.hits == 1
        assert cached.hit_rate == pytest.approx(1 / 3)

    def test_distinct_paths_cached_separately(self, figure1):
        cached = CachingStrategy(BaselineStrategy(figure1))
        cached.neighbor_row(PV, 0)
        cached.neighbor_row(PCA, 0)
        assert cached.misses == 2
        assert cached.cached_rows == 2

    def test_lru_eviction(self, figure1):
        cached = CachingStrategy(BaselineStrategy(figure1), max_rows=2)
        cached.neighbor_row(PV, 0)
        cached.neighbor_row(PV, 1)
        cached.neighbor_row(PV, 2)  # evicts (PV, 0)
        assert cached.cached_rows == 2
        cached.neighbor_row(PV, 0)  # miss again
        assert cached.misses == 4

    def test_lru_recency_updated_on_hit(self, figure1):
        cached = CachingStrategy(BaselineStrategy(figure1), max_rows=2)
        cached.neighbor_row(PV, 0)
        cached.neighbor_row(PV, 1)
        cached.neighbor_row(PV, 0)  # refresh 0
        cached.neighbor_row(PV, 2)  # evicts 1, not 0
        cached.neighbor_row(PV, 0)
        assert cached.hits == 2

    def test_hits_record_no_phase_time(self, figure1):
        cached = CachingStrategy(BaselineStrategy(figure1))
        warm = ExecutionStats()
        cached.neighbor_row(PV, 0, warm)
        cold_seconds = warm.not_indexed_seconds
        assert cold_seconds > 0
        again = ExecutionStats()
        cached.neighbor_row(PV, 0, again)
        assert again.not_indexed_seconds == 0
        assert again.traversed_vectors == 0

    def test_clear(self, figure1):
        cached = CachingStrategy(BaselineStrategy(figure1))
        cached.neighbor_row(PV, 0)
        cached.clear()
        assert cached.cached_rows == 0
        assert cached.hit_rate == 0.0

    def test_invalid_capacity(self, figure1):
        with pytest.raises(ExecutionError):
            CachingStrategy(BaselineStrategy(figure1), max_rows=0)

    def test_index_size_includes_cache(self, figure1):
        cached = CachingStrategy(PMStrategy(figure1))
        base = cached.index_size_bytes()
        cached.neighbor_row(PV, 0)
        assert cached.index_size_bytes() > base

    def test_name_reflects_inner(self, figure1):
        assert CachingStrategy(BaselineStrategy(figure1)).name == "cached-baseline"

    def test_executor_results_unchanged(self, figure1):
        query = (
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        plain = QueryExecutor(BaselineStrategy(figure1)).execute(query)
        cached_strategy = CachingStrategy(BaselineStrategy(figure1))
        executor = QueryExecutor(cached_strategy)
        first = executor.execute(query)
        second = executor.execute(query)
        assert first.names() == second.names() == plain.names()
        assert cached_strategy.hits > 0

    def test_cache_invalidated_on_network_mutation(self, figure1):
        """A mutation must flush the cache — never serve stale vectors."""
        cached = CachingStrategy(BaselineStrategy(figure1))
        zoe = figure1.find_vertex("author", "Zoe")
        before = cached.neighbor_row(PV, zoe.index)
        # Give Zoe a new paper in a new venue.
        paper = figure1.add_vertex("paper", "extra")
        venue = figure1.add_vertex("venue", "NEWVENUE")
        figure1.add_edge(paper, zoe)
        figure1.add_edge(paper, venue)
        after = cached.neighbor_row(PV, zoe.index)
        assert after.shape[1] == before.shape[1] + 1
        assert after.sum() == before.sum() + 1
        assert cached.cached_rows == 1  # old entries flushed

    def test_repeated_workload_mostly_hits(self, ego_corpus):
        from repro.datagen.workloads import generate_query_set
        from repro.query.templates import TEMPLATE_Q1

        network = ego_corpus.network
        workload = generate_query_set(network, TEMPLATE_Q1, 10, seed=4)
        cached = CachingStrategy(BaselineStrategy(network))
        executor = QueryExecutor(cached)
        executor.execute_many(list(workload), skip_failures=True)
        cold_misses = cached.misses
        executor.execute_many(list(workload), skip_failures=True)
        assert cached.misses == cold_misses  # second pass is all hits


class TestConcurrency:
    """Regression: the row cache is shared by the service's worker pool, so
    concurrent hammering must stay consistent — exact counters, correct rows,
    bounded size — with no torn LRU state."""

    def test_concurrent_reads_consistent(self, figure1):
        import threading

        inner = BaselineStrategy(figure1)
        cached = CachingStrategy(inner, max_rows=8)
        num_authors = figure1.num_vertices("author")
        expected = {
            (path, i): inner.neighbor_row(path, i).toarray().tolist()
            for path in (PV, PCA)
            for i in range(num_authors)
        }
        calls_per_thread = 200
        errors = []
        barrier = threading.Barrier(8)

        def hammer(seed):
            barrier.wait()
            for call in range(calls_per_thread):
                path = PV if (seed + call) % 2 else PCA
                index = (seed * 7 + call) % num_authors
                try:
                    row = cached.neighbor_row(path, index)
                    if row.toarray().tolist() != expected[(path, index)]:
                        errors.append((path, index, "wrong row"))
                except Exception as error:  # noqa: BLE001 - recorded for assert
                    errors.append((path, index, error))

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        # Exact accounting: every call is either a hit or a miss, never lost.
        assert cached.hits + cached.misses == 8 * calls_per_thread
        assert cached.cached_rows <= 8
