"""Tests for :mod:`repro.engine.index_io` (index persistence)."""

import pytest

from repro.engine.index import build_pm_index, build_spm_index
from repro.engine.index_io import load_index, save_index
from repro.engine.strategies import PMStrategy, SPMStrategy
from repro.engine.executor import QueryExecutor
from repro.exceptions import ExecutionError
from repro.metapath.metapath import MetaPath

PV = MetaPath.parse("author.paper.venue")


def _indexes_equal(first, second) -> bool:
    if set(map(str, first.paths)) != set(map(str, second.paths)):
        return False
    for path in first.paths:
        full = first.full_matrix(path)
        other = second.full_matrix(path)
        if (full is None) != (other is None):
            return False
        if full is not None:
            if (full != other).nnz != 0:
                return False
    return first.size_bytes() == second.size_bytes()


class TestRoundTrip:
    def test_pm_index_round_trip(self, figure1, tmp_path):
        index = build_pm_index(figure1)
        save_index(index, tmp_path / "pm")
        restored = load_index(tmp_path / "pm")
        assert _indexes_equal(index, restored)

    def test_spm_index_round_trip(self, figure1, tmp_path):
        zoe = figure1.find_vertex("author", "Zoe")
        ava = figure1.find_vertex("author", "Ava")
        index = build_spm_index(figure1, [zoe, ava])
        save_index(index, tmp_path / "spm")
        restored = load_index(tmp_path / "spm")
        assert restored.has_row(PV, zoe.index)
        assert restored.has_row(PV, ava.index)
        assert (restored.lookup(PV, zoe.index) != index.lookup(PV, zoe.index)).nnz == 0
        assert restored.size_bytes() == index.size_bytes()

    def test_empty_index_round_trip(self, tmp_path):
        from repro.engine.index import MetaPathIndex

        save_index(MetaPathIndex(), tmp_path / "empty")
        restored = load_index(tmp_path / "empty")
        assert restored.paths == []

    def test_loaded_index_produces_identical_results(self, figure1, tmp_path):
        query = (
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        index = build_pm_index(figure1)
        save_index(index, tmp_path / "idx")
        original = QueryExecutor(PMStrategy(figure1, index=index)).execute(query)
        restored = QueryExecutor(
            PMStrategy(figure1, index=load_index(tmp_path / "idx"))
        ).execute(query)
        assert original.names() == restored.names()

    def test_loaded_spm_serves_lookups(self, figure1, tmp_path):
        zoe = figure1.find_vertex("author", "Zoe")
        save_index(build_spm_index(figure1, [zoe]), tmp_path / "s")
        strategy = SPMStrategy(figure1, index=load_index(tmp_path / "s"))
        from repro.engine.stats import ExecutionStats

        stats = ExecutionStats()
        strategy.neighbor_row(PV, zoe.index, stats)
        assert stats.indexed_vectors == 1


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ExecutionError, match="manifest"):
            load_index(tmp_path)

    def test_bad_version(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format_version": 99}')
        with pytest.raises(ExecutionError, match="version"):
            load_index(tmp_path)

    def test_missing_data_file(self, figure1, tmp_path):
        save_index(build_pm_index(figure1), tmp_path)
        # Delete one data file.
        next(tmp_path.glob("metapath_*.npz")).unlink()
        with pytest.raises(ExecutionError, match="missing"):
            load_index(tmp_path)

    def test_corrupt_partial_rows(self, figure1, tmp_path):
        import numpy as np

        zoe = figure1.find_vertex("author", "Zoe")
        save_index(build_spm_index(figure1, [zoe]), tmp_path)
        rows_file = next(tmp_path.glob("*.rows.npy"))
        np.save(rows_file, np.array([0, 1, 2], dtype=np.int64))
        with pytest.raises(ExecutionError, match="corrupt"):
            load_index(tmp_path)
