"""Tests for :mod:`repro.engine.index_io` (index persistence)."""

import pytest

from repro.engine.index import build_pm_index, build_spm_index
from repro.engine.index_io import load_index, save_index
from repro.engine.strategies import PMStrategy, SPMStrategy
from repro.engine.executor import QueryExecutor
from repro.exceptions import ExecutionError
from repro.metapath.metapath import MetaPath

PV = MetaPath.parse("author.paper.venue")


def _indexes_equal(first, second) -> bool:
    if set(map(str, first.paths)) != set(map(str, second.paths)):
        return False
    for path in first.paths:
        full = first.full_matrix(path)
        other = second.full_matrix(path)
        if (full is None) != (other is None):
            return False
        if full is not None:
            if (full != other).nnz != 0:
                return False
    return first.size_bytes() == second.size_bytes()


class TestRoundTrip:
    def test_pm_index_round_trip(self, figure1, tmp_path):
        index = build_pm_index(figure1)
        save_index(index, tmp_path / "pm")
        restored = load_index(tmp_path / "pm")
        assert _indexes_equal(index, restored)

    def test_spm_index_round_trip(self, figure1, tmp_path):
        zoe = figure1.find_vertex("author", "Zoe")
        ava = figure1.find_vertex("author", "Ava")
        index = build_spm_index(figure1, [zoe, ava])
        save_index(index, tmp_path / "spm")
        restored = load_index(tmp_path / "spm")
        assert restored.has_row(PV, zoe.index)
        assert restored.has_row(PV, ava.index)
        assert (restored.lookup(PV, zoe.index) != index.lookup(PV, zoe.index)).nnz == 0
        assert restored.size_bytes() == index.size_bytes()

    def test_empty_index_round_trip(self, tmp_path):
        from repro.engine.index import MetaPathIndex

        save_index(MetaPathIndex(), tmp_path / "empty")
        restored = load_index(tmp_path / "empty")
        assert restored.paths == []

    def test_loaded_index_produces_identical_results(self, figure1, tmp_path):
        query = (
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        index = build_pm_index(figure1)
        save_index(index, tmp_path / "idx")
        original = QueryExecutor(PMStrategy(figure1, index=index)).execute(query)
        restored = QueryExecutor(
            PMStrategy(figure1, index=load_index(tmp_path / "idx"))
        ).execute(query)
        assert original.names() == restored.names()

    def test_loaded_spm_serves_lookups(self, figure1, tmp_path):
        zoe = figure1.find_vertex("author", "Zoe")
        save_index(build_spm_index(figure1, [zoe]), tmp_path / "s")
        strategy = SPMStrategy(figure1, index=load_index(tmp_path / "s"))
        from repro.engine.stats import ExecutionStats

        stats = ExecutionStats()
        strategy.neighbor_row(PV, zoe.index, stats)
        assert stats.indexed_vectors == 1


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ExecutionError, match="manifest"):
            load_index(tmp_path)

    def test_bad_version(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format_version": 99}')
        with pytest.raises(ExecutionError, match="version"):
            load_index(tmp_path)

    def test_missing_data_file(self, figure1, tmp_path):
        save_index(build_pm_index(figure1), tmp_path)
        # Delete one data file.
        next(tmp_path.glob("metapath_*.npz")).unlink()
        with pytest.raises(ExecutionError, match="missing"):
            load_index(tmp_path)

    def test_corrupt_partial_rows(self, figure1, tmp_path):
        import numpy as np

        zoe = figure1.find_vertex("author", "Zoe")
        save_index(build_spm_index(figure1, [zoe]), tmp_path)
        rows_file = next(tmp_path.glob("*.rows.npy"))
        np.save(rows_file, np.array([0, 1, 2], dtype=np.int64))
        with pytest.raises(ExecutionError, match="corrupt"):
            load_index(tmp_path)


class TestCorruptionSafety:
    """Truncated/garbled files surface as typed ExecutionError, never as raw
    JSON/zipfile/pickle tracebacks."""

    def test_garbage_manifest_json(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not valid json!!", encoding="utf-8")
        with pytest.raises(ExecutionError, match="corrupt index manifest"):
            load_index(tmp_path)

    def test_manifest_wrong_top_level_type(self, tmp_path):
        (tmp_path / "manifest.json").write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ExecutionError, match="expected an object"):
            load_index(tmp_path)

    def test_manifest_binary_garbage(self, tmp_path):
        (tmp_path / "manifest.json").write_bytes(b"\x00\xff\xfe\x01garbage")
        with pytest.raises(ExecutionError, match="corrupt index manifest"):
            load_index(tmp_path)

    def test_manifest_entry_missing_keys(self, tmp_path):
        import json

        manifest = {"format_version": 1, "full": [{"path": "author.paper.venue"}], "partial": []}
        (tmp_path / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ExecutionError, match="corrupt index manifest"):
            load_index(tmp_path)

    def test_truncated_npz_data_file(self, figure1, tmp_path):
        save_index(build_pm_index(figure1), tmp_path)
        data_file = next(tmp_path.glob("metapath_*.npz"))
        payload = data_file.read_bytes()
        data_file.write_bytes(payload[: len(payload) // 2])  # short read
        with pytest.raises(ExecutionError, match="corrupt or truncated"):
            load_index(tmp_path)

    def test_overwritten_npz_data_file(self, figure1, tmp_path):
        save_index(build_pm_index(figure1), tmp_path)
        next(tmp_path.glob("metapath_*.npz")).write_bytes(b"this is not a zip file")
        with pytest.raises(ExecutionError, match="corrupt or truncated"):
            load_index(tmp_path)

    def test_corrupt_rows_npy(self, figure1, tmp_path):
        zoe = figure1.find_vertex("author", "Zoe")
        save_index(build_spm_index(figure1, [zoe]), tmp_path)
        next(tmp_path.glob("*.rows.npy")).write_bytes(b"\x93NUMPY garbage")
        with pytest.raises(ExecutionError, match="corrupt or truncated"):
            load_index(tmp_path)


class TestAtomicity:
    def test_no_temp_files_left_after_save(self, figure1, tmp_path):
        zoe = figure1.find_vertex("author", "Zoe")
        save_index(build_pm_index(figure1), tmp_path / "pm")
        save_index(build_spm_index(figure1, [zoe]), tmp_path / "spm")
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_interrupted_save_leaves_no_manifest(self, figure1, tmp_path):
        """A fault mid-save never yields a manifest pointing at missing
        data: the manifest is written last, so the directory just looks
        like no index was ever saved there."""
        from repro import faultinject
        from repro.exceptions import TransientFaultError

        target = tmp_path / "broken"
        rule = faultinject.FaultRule(point="io", after_calls=1, times=1)
        with faultinject.inject(rule):
            with pytest.raises(TransientFaultError):
                save_index(build_pm_index(figure1), target)
        assert not (target / "manifest.json").exists()
        with pytest.raises(ExecutionError, match="manifest"):
            load_index(target)
        assert list(target.rglob("*.tmp")) == []

    def test_failed_resave_preserves_previous_index(self, figure1, tmp_path):
        """Overwriting an index atomically: if the second save dies before
        its manifest lands, the first index still loads intact."""
        from repro import faultinject
        from repro.exceptions import TransientFaultError

        target = tmp_path / "idx"
        index = build_pm_index(figure1)
        save_index(index, target)
        rule = faultinject.FaultRule(point="io", after_calls=1, times=1)
        with faultinject.inject(rule):
            with pytest.raises(TransientFaultError):
                save_index(index, target)
        restored = load_index(target)
        assert _indexes_equal(index, restored)
