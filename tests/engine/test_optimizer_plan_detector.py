"""Tests for :mod:`repro.engine.optimizer`, ``plan``, ``detector``, ``stats``."""

import pytest

from repro.engine.detector import OutlierDetector
from repro.engine.optimizer import WorkloadAnalyzer, select_frequent_vertices
from repro.engine.plan import explain
from repro.engine.stats import (
    PHASE_INDEXED,
    PHASE_NOT_INDEXED,
    PHASE_SCORING,
    ExecutionStats,
)
from repro.engine.strategies import BaselineStrategy, PMStrategy, SPMStrategy
from repro.metapath.metapath import MetaPath
from repro.query.templates import TEMPLATE_Q1


class TestWorkloadAnalyzer:
    def test_frequencies_relative_to_query_count(self, figure1):
        analyzer = WorkloadAnalyzer(figure1)
        analyzer.analyze(TEMPLATE_Q1.render("Zoe"))
        analyzer.analyze(TEMPLATE_Q1.render("Ava"))
        frequencies = analyzer.relative_frequencies()
        zoe = figure1.find_vertex("author", "Zoe")
        # Zoe is in both candidate sets (her own and Ava's coauthors).
        assert frequencies[zoe] == 1.0

    def test_threshold_selection(self, figure1):
        analyzer = WorkloadAnalyzer(figure1)
        analyzer.analyze_many(
            [TEMPLATE_Q1.render("Zoe"), TEMPLATE_Q1.render("Ava")]
        )
        # Threshold 1.0: only vertices in every candidate set.
        always = analyzer.frequent_vertices(1.0)
        names = {figure1.vertex_name(v) for v in always}
        assert names == {"Ava", "Liam", "Zoe"}

    def test_missing_anchor_counts_as_analyzed(self, figure1):
        analyzer = WorkloadAnalyzer(figure1)
        analyzer.analyze(TEMPLATE_Q1.render("Nobody"))
        assert analyzer.analyzed_queries == 1
        assert analyzer.relative_frequencies() == {}

    def test_empty_workload(self, figure1):
        analyzer = WorkloadAnalyzer(figure1)
        assert analyzer.relative_frequencies() == {}
        assert analyzer.frequent_vertices(0.5) == []

    def test_invalid_threshold(self, figure1):
        analyzer = WorkloadAnalyzer(figure1)
        with pytest.raises(ValueError):
            analyzer.frequent_vertices(1.5)

    def test_build_index_covers_frequent_vertices(self, figure1):
        analyzer = WorkloadAnalyzer(figure1)
        analyzer.analyze(TEMPLATE_Q1.render("Zoe"))
        index = analyzer.build_index(0.5)
        zoe = figure1.find_vertex("author", "Zoe")
        assert index.has_row(MetaPath.parse("author.paper.venue"), zoe.index)

    def test_select_frequent_vertices_helper(self, figure1):
        selected = select_frequent_vertices(
            figure1, [TEMPLATE_Q1.render("Zoe")], 0.5
        )
        names = {figure1.vertex_name(v) for v in selected}
        assert names == {"Ava", "Liam", "Zoe"}

    def test_accepts_parsed_queries(self, figure1):
        analyzer = WorkloadAnalyzer(figure1)
        analyzer.analyze(TEMPLATE_Q1.parse("Zoe"))
        assert analyzer.analyzed_queries == 1


class TestExplain:
    QUERY = (
        'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
        "JUDGED BY author.paper.venue.paper.author: 2.0 TOP 4;"
    )

    def test_plan_structure(self, figure1):
        plan = explain(BaselineStrategy(figure1), self.QUERY)
        assert plan.strategy == "baseline"
        assert plan.member_type == "author"
        assert plan.top_k == 4
        feature = plan.features[0]
        assert feature.weight == 2.0
        assert [str(s) for s in feature.segments] == [
            "author.paper.venue",
            "venue.paper.author",
        ]
        assert feature.tail is None

    def test_coverage_baseline_none(self, figure1):
        plan = explain(BaselineStrategy(figure1), self.QUERY)
        assert set(plan.features[0].coverage) == {"none"}

    def test_coverage_pm_full(self, figure1):
        plan = explain(PMStrategy(figure1), self.QUERY)
        assert set(plan.features[0].coverage) == {"full"}

    def test_coverage_spm_partial(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        plan = explain(SPMStrategy(figure1, selected=[zoe]), self.QUERY)
        assert plan.features[0].coverage[0] == "partial"

    def test_describe_renders(self, figure1):
        text = explain(PMStrategy(figure1), self.QUERY).describe()
        assert "strategy        : pm" in text
        assert "author.paper.venue" in text

    def test_odd_length_tail(self, figure1):
        plan = explain(
            BaselineStrategy(figure1),
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue.paper TOP 4;",
        )
        assert str(plan.features[0].tail) == "venue.paper"


class TestOutlierDetector:
    QUERY = (
        'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
        "JUDGED BY author.paper.venue TOP 3;"
    )

    def test_default_strategy_baseline(self, figure1):
        detector = OutlierDetector(figure1)
        assert detector.strategy.name == "baseline"
        assert len(detector.detect(self.QUERY)) == 3

    def test_strategy_by_name(self, figure1):
        assert OutlierDetector(figure1, strategy="pm").strategy.name == "pm"

    def test_strategy_instance_passthrough(self, figure1):
        strategy = PMStrategy(figure1)
        detector = OutlierDetector(figure1, strategy=strategy)
        assert detector.strategy is strategy

    def test_spm_with_workload(self, figure1):
        workload = [TEMPLATE_Q1.render("Zoe")]
        detector = OutlierDetector(
            figure1, strategy="spm", spm_workload=workload, spm_threshold=0.5
        )
        zoe = figure1.find_vertex("author", "Zoe")
        assert detector.strategy.index.has_row(
            MetaPath.parse("author.paper.venue"), zoe.index
        )

    def test_measure_name(self, figure1):
        assert OutlierDetector(figure1, measure="pathsim").measure_name == "pathsim"

    def test_detect_many(self, figure1):
        detector = OutlierDetector(figure1)
        results, stats = detector.detect_many([self.QUERY, self.QUERY])
        assert len(results) == 2
        assert stats.queries == 2

    def test_explain(self, figure1):
        plan = OutlierDetector(figure1, strategy="pm").explain(self.QUERY)
        assert plan.strategy == "pm"

    def test_index_size(self, figure1):
        assert OutlierDetector(figure1).index_size_bytes() == 0
        assert OutlierDetector(figure1, strategy="pm").index_size_bytes() > 0


class TestExecutionStats:
    def test_merge_accumulates(self):
        first = ExecutionStats()
        first.timer.add(PHASE_NOT_INDEXED, 1.0)
        first.traversed_vectors = 3
        first.wall_seconds = 2.0
        second = ExecutionStats()
        second.timer.add(PHASE_INDEXED, 0.5)
        second.indexed_vectors = 2
        second.wall_seconds = 1.0
        first.merge(second)
        assert first.not_indexed_seconds == 1.0
        assert first.indexed_seconds == 0.5
        assert first.traversed_vectors == 3
        assert first.indexed_vectors == 2
        assert first.queries == 2
        assert first.wall_seconds == 3.0

    def test_aggregate(self):
        parts = []
        for __ in range(3):
            stats = ExecutionStats()
            stats.timer.add(PHASE_SCORING, 0.1)
            parts.append(stats)
        total = ExecutionStats.aggregate(parts)
        assert total.queries == 3
        assert total.scoring_seconds == pytest.approx(0.3)

    def test_breakdown_keys_in_paper_order(self):
        stats = ExecutionStats()
        assert list(stats.breakdown()) == [
            PHASE_NOT_INDEXED,
            PHASE_INDEXED,
            PHASE_SCORING,
        ]
