"""Out-of-core (blocked) PM/SPM index builds: parity, crash safety, limits.

The blocked builders must be *invisible* semantically: byte-identical
index contents and scores versus the in-core builders, whatever the block
size, storage tier, or interruption point.  Crash safety leans on the
array store's write-data-then-manifest discipline — an interrupted build
leaves a directory :func:`~repro.engine.index_io.load_index_mmap` refuses
with a typed error, never a partial index.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import faultinject
from repro.datagen.synthetic import (
    StreamingCorpusConfig,
    streaming_bibliographic_network,
)
from repro.engine.deadline import Deadline, deadline_scope
from repro.engine.index import (
    build_pm_index,
    build_pm_index_blocked,
    build_spm_index_blocked,
    build_spm_index_bounded,
)
from repro.engine.index_io import load_index_mmap
from repro.exceptions import (
    DeadlineExceededError,
    ExecutionError,
    TransientFaultError,
)
from repro.hin.network import VertexId
from repro.hin.storage import MmapArrayStore

CONFIG = StreamingCorpusConfig(
    num_papers=400,
    num_authors=150,
    num_venues=12,
    num_terms=90,
    chunk_papers=170,
)


@pytest.fixture(scope="module")
def network():
    return streaming_bibliographic_network(CONFIG, seed=11)


def _bytes_of(matrix):
    csr = matrix.tocsr().copy()
    csr.sum_duplicates()
    csr.sort_indices()
    return (
        csr.data.tobytes(),
        csr.indices.astype(np.int64).tobytes(),
        csr.indptr.astype(np.int64).tobytes(),
        csr.shape,
    )


def _assert_same_index(left, right):
    assert set(map(str, left.paths)) == set(map(str, right.paths))
    for path in left.paths:
        full_l, full_r = left.full_matrix(path), right.full_matrix(path)
        if full_l is not None:
            assert _bytes_of(full_l) == _bytes_of(full_r)
            continue
        rows_l, rows_r = left.partial_rows(path), right.partial_rows(path)
        assert sorted(rows_l) == sorted(rows_r)
        for vertex in rows_l:
            assert _bytes_of(rows_l[vertex]) == _bytes_of(rows_r[vertex])


class TestBlockedPmParity:
    @pytest.mark.parametrize("block_rows", [1, 7, 64, 100_000])
    def test_blocked_matches_incore(self, network, block_rows):
        incore = build_pm_index(network)
        blocked = build_pm_index_blocked(network, block_rows=block_rows)
        _assert_same_index(incore, blocked)

    def test_blocked_to_mmap_store_roundtrips(self, network, tmp_path):
        incore = build_pm_index(network)
        store_dir = str(tmp_path / "pm")
        build_pm_index_blocked(
            network, block_rows=37, store=MmapArrayStore(store_dir)
        )
        reloaded = load_index_mmap(store_dir)
        _assert_same_index(incore, reloaded)
        # The reload serves file-backed views, not copies.
        some_path = next(iter(reloaded.paths))
        assert isinstance(reloaded.full_matrix(some_path).data, np.memmap)

    def test_invalid_block_rows_rejected(self, network):
        with pytest.raises(ExecutionError):
            build_pm_index_blocked(network, block_rows=0)

    def test_memory_budget_shrinks_blocks(self, network, tmp_path):
        # A tiny budget must still complete — it clamps the block size down
        # to one row, never to zero — and stay byte-identical.
        incore = build_pm_index(network)
        squeezed = build_pm_index_blocked(
            network, block_rows=100_000, max_build_memory_mb=0.001
        )
        _assert_same_index(incore, squeezed)


class TestBlockedSpmParity:
    @pytest.mark.parametrize("budget", [None, 60_000])
    def test_bounded_matches_blocked(self, network, budget, tmp_path):
        ranked = [VertexId("author", i) for i in range(25)] + [
            VertexId("venue", 0)
        ]
        bounded, admitted = build_spm_index_bounded(
            network, ranked, max_bytes=budget
        )
        blocked, admitted_blocked = build_spm_index_blocked(
            network,
            ranked,
            max_bytes=budget,
            block_rows=4,
            store=MmapArrayStore(str(tmp_path / "spm")),
        )
        assert admitted == admitted_blocked
        _assert_same_index(bounded, blocked)

    def test_spm_store_roundtrips(self, network, tmp_path):
        ranked = [VertexId("author", i) for i in range(10)]
        store_dir = str(tmp_path / "spm")
        blocked, admitted = build_spm_index_blocked(
            network, ranked, store=MmapArrayStore(store_dir)
        )
        reloaded = load_index_mmap(store_dir)
        _assert_same_index(blocked, reloaded)
        assert admitted == ranked


class TestCrashSafety:
    """An interrupted build must be invisible through the atomic load path."""

    def _assert_invisible(self, store_dir):
        assert not os.path.exists(os.path.join(store_dir, "manifest.json"))
        with pytest.raises(ExecutionError, match="never published|interrupted"):
            MmapArrayStore.open(store_dir)
        with pytest.raises(ExecutionError):
            load_index_mmap(store_dir)

    @pytest.mark.parametrize("after_calls", [1, 5, 11])
    def test_midblock_fault_leaves_no_index(self, network, tmp_path, after_calls):
        store_dir = str(tmp_path / "pm")
        with faultinject.inject(
            faultinject.FaultRule(
                point="index_build", times=1, after_calls=after_calls
            )
        ):
            with pytest.raises(TransientFaultError):
                build_pm_index_blocked(
                    network, block_rows=50, store=MmapArrayStore(store_dir)
                )
        self._assert_invisible(store_dir)

    def test_commit_io_fault_leaves_no_index(self, network, tmp_path):
        # Every write before the manifest may have succeeded; failing the
        # manifest publish itself must still leave nothing visible.
        store_dir = str(tmp_path / "pm")
        # First count how many io checks a clean build performs, then fail
        # exactly the last one (the manifest write).
        probe_dir = str(tmp_path / "probe")
        with faultinject.inject(
            faultinject.FaultRule(point="io", probability=0.0)
        ) as injector:
            build_pm_index_blocked(
                network, block_rows=50, store=MmapArrayStore(probe_dir)
            )
            io_calls = injector.calls["io"]
        assert io_calls >= 1

        with faultinject.inject(
            faultinject.FaultRule(
                point="io", times=1, after_calls=io_calls - 1
            )
        ):
            with pytest.raises(TransientFaultError):
                build_pm_index_blocked(
                    network, block_rows=50, store=MmapArrayStore(store_dir)
                )
        self._assert_invisible(store_dir)

    def test_spm_midblock_fault_leaves_no_index(self, network, tmp_path):
        store_dir = str(tmp_path / "spm")
        ranked = [VertexId("author", i) for i in range(20)]
        with faultinject.inject(
            faultinject.FaultRule(point="index_build", times=1, after_calls=2)
        ):
            with pytest.raises(TransientFaultError):
                build_spm_index_blocked(
                    network,
                    ranked,
                    block_rows=3,
                    store=MmapArrayStore(store_dir),
                )
        self._assert_invisible(store_dir)

    def test_interrupted_then_retried_build_succeeds(self, network, tmp_path):
        store_dir = str(tmp_path / "pm")
        with faultinject.inject(
            faultinject.FaultRule(point="index_build", times=1, after_calls=3)
        ):
            with pytest.raises(TransientFaultError):
                build_pm_index_blocked(
                    network, block_rows=50, store=MmapArrayStore(store_dir)
                )
        # Retrying into the same directory publishes a complete index.
        build_pm_index_blocked(
            network, block_rows=50, store=MmapArrayStore(store_dir)
        )
        _assert_same_index(build_pm_index(network), load_index_mmap(store_dir))


class TestDeadline:
    def test_blocked_build_honors_ambient_deadline(self, network, tmp_path):
        store_dir = str(tmp_path / "pm")
        with deadline_scope(Deadline(0.0)):
            with pytest.raises(DeadlineExceededError):
                build_pm_index_blocked(
                    network, block_rows=10, store=MmapArrayStore(store_dir)
                )
        assert not os.path.exists(os.path.join(store_dir, "manifest.json"))
