"""Tests for index staleness detection (network mutates after index build)."""

import pytest

from repro.engine.strategies import BaselineStrategy, PMStrategy, SPMStrategy
from repro.exceptions import ExecutionError
from repro.metapath.metapath import MetaPath

PV = MetaPath.parse("author.paper.venue")


class TestNetworkVersion:
    def test_version_counts_mutations(self, figure1):
        before = figure1.version
        new_author = figure1.add_vertex("author", "Fresh")
        new_paper = figure1.add_vertex("paper", "pX")
        figure1.add_edge(new_paper, new_author)
        assert figure1.version == before + 3

    def test_duplicate_vertex_does_not_bump(self, figure1):
        figure1.add_vertex("author", "Again")
        before = figure1.version
        figure1.add_vertex("author", "Again")
        assert figure1.version == before


class TestStalenessDetection:
    def test_pm_detects_mutation(self, figure1):
        strategy = PMStrategy(figure1)
        strategy.neighbor_row(PV, 0)  # fresh: works
        figure1.add_vertex("author", "Late Arrival")
        with pytest.raises(ExecutionError, match="rebuild the index"):
            strategy.neighbor_row(PV, 0)

    def test_pm_bulk_detects_mutation(self, figure1):
        strategy = PMStrategy(figure1)
        figure1.add_vertex("author", "Late Arrival")
        with pytest.raises(ExecutionError, match="changed after"):
            strategy.neighbor_matrix(PV, [0, 1])

    def test_spm_detects_mutation(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        strategy = SPMStrategy(figure1, selected=[zoe])
        strategy.neighbor_row(PV, zoe.index)
        paper = figure1.find_vertex("paper", "p1")
        ava = figure1.find_vertex("author", "Ava")
        figure1.add_edge(paper, ava)
        with pytest.raises(ExecutionError, match="rebuild the index"):
            strategy.neighbor_row(PV, zoe.index)

    def test_baseline_never_stale(self, figure1):
        strategy = BaselineStrategy(figure1)
        figure1.add_vertex("author", "Late Arrival")
        strategy.neighbor_row(PV, 0)  # traversal reads live data

    def test_allow_stale_opt_out(self, figure1):
        strategy = PMStrategy(figure1, allow_stale=True)
        figure1.add_vertex("venue", "Brand New Venue")
        # Opted out: the stale lookup proceeds (values reflect build time).
        strategy.neighbor_row(PV, 0)

    def test_rebuild_clears_staleness(self, figure1):
        strategy = PMStrategy(figure1)
        figure1.add_vertex("author", "Late Arrival")
        rebuilt = PMStrategy(figure1)
        rebuilt.neighbor_row(PV, 0)

    def test_detector_surfaces_staleness(self, figure1):
        from repro.engine.detector import OutlierDetector

        detector = OutlierDetector(figure1, strategy="pm")
        figure1.add_vertex("author", "Late Arrival")
        with pytest.raises(ExecutionError, match="changed after"):
            detector.detect(
                'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
                "JUDGED BY author.paper.venue TOP 3;"
            )
