"""Tests for per-feature score breakdowns on multi-path query results."""

import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.strategies import BaselineStrategy

MULTI_QUERY = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue: 2.0, author.paper.author TOP 3;"
)
SINGLE_QUERY = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 3;"
)


class TestFeatureScores:
    def test_single_feature_has_no_breakdown(self, figure1):
        result = QueryExecutor(BaselineStrategy(figure1)).execute(SINGLE_QUERY)
        assert result.feature_scores is None
        assert result.explain_vertex(result.outliers[0].vertex) == {}

    def test_multi_feature_breakdown_present(self, figure1):
        result = QueryExecutor(BaselineStrategy(figure1)).execute(MULTI_QUERY)
        assert result.feature_scores is not None
        assert set(result.feature_scores) == {
            "author.paper.venue",
            "author.paper.author",
        }

    def test_breakdown_covers_all_candidates(self, figure1):
        result = QueryExecutor(BaselineStrategy(figure1)).execute(MULTI_QUERY)
        for per_path in result.feature_scores.values():
            assert set(per_path) == set(result.scores)

    def test_combined_is_weighted_average_of_breakdown(self, figure1):
        result = QueryExecutor(BaselineStrategy(figure1)).execute(MULTI_QUERY)
        venue = result.feature_scores["author.paper.venue"]
        coauthor = result.feature_scores["author.paper.author"]
        for vertex, combined in result.scores.items():
            expected = (2.0 * venue[vertex] + coauthor[vertex]) / 3.0
            assert combined == pytest.approx(expected)

    def test_explain_vertex(self, figure1):
        result = QueryExecutor(BaselineStrategy(figure1)).execute(MULTI_QUERY)
        top = result.outliers[0].vertex
        explanation = result.explain_vertex(top)
        assert set(explanation) == {"author.paper.venue", "author.paper.author"}
        assert all(isinstance(v, float) for v in explanation.values())

    def test_breakdown_matches_single_feature_runs(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1))
        multi = executor.execute(MULTI_QUERY)
        venue_only = executor.execute(SINGLE_QUERY)
        for vertex, score in venue_only.scores.items():
            assert multi.feature_scores["author.paper.venue"][vertex] == (
                pytest.approx(score)
            )

    def test_connectivity_mode_has_no_breakdown(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1), combine="connectivity")
        result = executor.execute(MULTI_QUERY)
        assert result.feature_scores is None

    def test_rank_mode_keeps_raw_scores_in_breakdown(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1), combine="rank")
        result = executor.execute(MULTI_QUERY)
        # Breakdown entries are raw per-path Ω, not ranks.
        venue_values = set(result.feature_scores["author.paper.venue"].values())
        assert venue_values != {1.0, 2.0, 3.0}
