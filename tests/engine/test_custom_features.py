"""Tests for :meth:`OutlierDetector.detect_with_features` (§8 alternative design)."""

import numpy as np
import pytest
from scipy import sparse

from repro.engine.detector import OutlierDetector
from repro.exceptions import ExecutionError, QuerySemanticError
from repro.hin.network import VertexId
from repro.metapath.materialize import materialize
from repro.metapath.metapath import MetaPath


@pytest.fixture()
def detector(figure1):
    return OutlierDetector(figure1)


class TestCallableFeatures:
    def test_callable_features(self, figure1, detector):
        def venue_profile(network, member_type, indices):
            matrix = materialize(network, MetaPath.parse("author.paper.venue"))
            return matrix[indices, :]

        custom = detector.detect_with_features("author", venue_profile, top_k=3)
        declarative = detector.detect(
            "FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 3;"
        )
        assert custom.names() == declarative.names()

    def test_non_metapath_characterization(self, figure1, detector):
        """The point of the API: features no meta-path can express —
        here, scalar publication counts."""

        def paper_count(network, member_type, indices):
            return np.array(
                [
                    [network.degree(VertexId(member_type, i), "paper")]
                    for i in indices
                ]
            )

        result = detector.detect_with_features("author", paper_count, top_k=3)
        assert result.candidate_count == figure1.num_vertices("author")
        assert len(result) == 3

    def test_callable_sees_correct_arguments(self, figure1, detector):
        seen = {}

        def spy(network, member_type, indices):
            seen["member_type"] = member_type
            seen["count"] = len(indices)
            return np.ones((len(indices), 2))

        detector.detect_with_features('author{"Zoe"}.paper.author', spy)
        assert seen["member_type"] == "author"
        assert seen["count"] == 3


class TestMatrixFeatures:
    def test_precomputed_dense_matrix(self, figure1, detector):
        full = np.asarray(
            materialize(figure1, MetaPath.parse("author.paper.venue")).todense()
        )
        result = detector.detect_with_features("author", full, top_k=3)
        declarative = detector.detect(
            "FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 3;"
        )
        assert result.names() == declarative.names()

    def test_precomputed_sparse_matrix(self, figure1, detector):
        full = materialize(figure1, MetaPath.parse("author.paper.venue"))
        result = detector.detect_with_features("author", full, top_k=2)
        assert len(result) == 2


class TestReferenceAndErrors:
    def test_reference_expression(self, figure1, detector):
        full = materialize(figure1, MetaPath.parse("author.paper.venue"))
        scoped = detector.detect_with_features(
            'author{"Zoe"}.paper.author',
            full,
            reference="author",
            top_k=3,
        )
        assert scoped.reference_count == figure1.num_vertices("author")

    def test_mismatched_reference_type(self, figure1, detector):
        full = materialize(figure1, MetaPath.parse("author.paper.venue"))
        with pytest.raises(ExecutionError, match="member type"):
            detector.detect_with_features("author", full, reference="venue")

    def test_row_count_mismatch_rejected(self, figure1, detector):
        def bad(network, member_type, indices):
            return np.ones((1, 2))

        with pytest.raises(ExecutionError, match="do not match"):
            detector.detect_with_features("author", bad)

    def test_invalid_candidate_expression(self, figure1, detector):
        with pytest.raises(QuerySemanticError):
            detector.detect_with_features('galaxy{"X"}', np.ones((1, 1)))

    def test_empty_candidates(self, figure1, detector):
        full = materialize(figure1, MetaPath.parse("author.paper.venue"))
        with pytest.raises(ExecutionError, match="empty"):
            detector.detect_with_features(
                "author AS A WHERE COUNT(A.paper) > 99", full
            )

    def test_invalid_top_k(self, figure1, detector):
        with pytest.raises(ExecutionError):
            detector.detect_with_features("author", np.ones((3, 1)), top_k=0)
