"""Tests for :class:`repro.engine.caching.SubpathCache`.

The sub-path cache memoizes canonical *length-2 segment products* — the
partial CSR matmuls every strategy's blocked materialization repeats — so
the contract under test is two-sided:

* as a cache: byte-budgeted LRU, version invalidation, oversized-entry
  rejection, and a self-healing answer to injected ``subpath.get`` /
  ``subpath.put`` faults (a cache must never fail a query);
* as an accelerator: Baseline and SPM with the cache attached produce
  rows *byte-identical* to the uncached strategy (path counts are exact
  small integers in float64, so reassociated sparse products agree
  exactly, not approximately).
"""

from __future__ import annotations

import pytest
from scipy import sparse

from repro import faultinject
from repro.engine.caching import SubpathCache
from repro.engine.strategies import BaselineStrategy, SPMStrategy
from repro.exceptions import ExecutionError
from repro.faultinject import FaultRule
from repro.metapath.materialize import decompose_length2, materialize
from repro.metapath.metapath import MetaPath

APV = MetaPath.parse("author.paper.venue")
APA = MetaPath.parse("author.paper.author")
APVPA = MetaPath.parse("author.paper.venue.paper.author")
APTPA = MetaPath.parse("author.paper.term.paper.author")


def _segments(path):
    segments, _tail = decompose_length2(path)
    return segments


def _rows_equal(left: sparse.csr_matrix, right: sparse.csr_matrix) -> bool:
    """Byte-level equality after canonicalization (sorted, deduplicated)."""
    left = left.tocsr().copy()
    right = right.tocsr().copy()
    for matrix in (left, right):
        matrix.sum_duplicates()
        matrix.sort_indices()
        matrix.eliminate_zeros()
    return (
        left.shape == right.shape
        and left.indices.tobytes() == right.indices.tobytes()
        and left.data.tobytes() == right.data.tobytes()
    )


class TestCacheMechanics:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ExecutionError):
            SubpathCache(max_bytes=0)

    def test_put_get_roundtrip(self, figure1):
        cache = SubpathCache(max_bytes=1 << 20)
        segment = _segments(APVPA)[0]
        product = materialize(figure1, segment)
        assert cache.get(segment, 1) is None
        cache.put(segment, 1, product)
        hit = cache.get(segment, 1)
        assert hit is not None and _rows_equal(hit, product)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_version_mismatch_clears_wholesale(self, figure1):
        cache = SubpathCache(max_bytes=1 << 20)
        segment = _segments(APVPA)[0]
        cache.put(segment, 1, materialize(figure1, segment))
        # A bumped network version invalidates everything stored before it.
        assert cache.get(segment, 2) is None
        assert cache.snapshot()["entries"] == 0

    def test_lru_eviction_respects_byte_budget(self, figure1):
        seg_v, seg_t = _segments(APVPA)[0], _segments(APTPA)[0]
        prod_v = materialize(figure1, seg_v)
        prod_t = materialize(figure1, seg_t)
        # Budget fits one product, never both.
        from repro.utils.sparsetools import csr_storage_bytes

        budget = max(csr_storage_bytes(prod_v), csr_storage_bytes(prod_t)) + 1
        cache = SubpathCache(max_bytes=budget)
        cache.put(seg_v, 1, prod_v)
        cache.put(seg_t, 1, prod_t)  # evicts seg_v (least recent)
        snapshot = cache.snapshot()
        assert snapshot["entries"] == 1
        assert snapshot["evictions"] == 1
        assert snapshot["bytes"] <= budget
        assert cache.get(seg_t, 1) is not None
        assert cache.get(seg_v, 1) is None

    def test_oversized_entry_rejected_not_stored(self, figure1):
        segment = _segments(APVPA)[0]
        product = materialize(figure1, segment)
        cache = SubpathCache(max_bytes=1)
        cache.put(segment, 1, product)
        snapshot = cache.snapshot()
        assert snapshot["entries"] == 0
        assert snapshot["rejected"] == 1

    def test_clear_resets_counters(self, figure1):
        cache = SubpathCache(max_bytes=1 << 20)
        segment = _segments(APVPA)[0]
        cache.put(segment, 1, materialize(figure1, segment))
        cache.get(segment, 1)
        cache.clear()
        snapshot = cache.snapshot()
        assert snapshot["entries"] == 0
        assert snapshot["hits"] == 0 and snapshot["misses"] == 0


class TestFaultSelfHealing:
    def test_get_fault_drops_entry_and_misses(self, figure1):
        cache = SubpathCache(max_bytes=1 << 20)
        segment = _segments(APVPA)[0]
        cache.put(segment, 1, materialize(figure1, segment))
        with faultinject.inject(FaultRule(point="subpath.get", times=1)):
            assert cache.get(segment, 1) is None  # a miss, never an error
        snapshot = cache.snapshot()
        assert snapshot["faulted_gets"] == 1
        assert snapshot["entries"] == 0  # suspect entry dropped
        # The next round-trip repopulates cleanly.
        cache.put(segment, 1, materialize(figure1, segment))
        assert cache.get(segment, 1) is not None

    def test_put_fault_skips_insert(self, figure1):
        cache = SubpathCache(max_bytes=1 << 20)
        segment = _segments(APVPA)[0]
        with faultinject.inject(FaultRule(point="subpath.put", times=1)):
            cache.put(segment, 1, materialize(figure1, segment))
        snapshot = cache.snapshot()
        assert snapshot["faulted_puts"] == 1
        assert snapshot["entries"] == 0

    def test_faulted_cache_never_fails_a_query(self, figure1):
        strategy = BaselineStrategy(figure1)
        strategy.subpath_cache = SubpathCache(max_bytes=1 << 20)
        indices = [v.index for v in figure1.vertices("author")]
        truth = materialize(figure1, APVPA)[indices]
        with faultinject.inject(
            FaultRule(point="subpath.get", times=None),
            FaultRule(point="subpath.put", times=None),
        ):
            block = strategy.neighbor_matrix(APVPA, indices)
            block_again = strategy.neighbor_matrix(APVPA, indices)
        assert _rows_equal(block, truth)
        assert _rows_equal(block_again, truth)
        snapshot = strategy.subpath_cache.snapshot()
        assert snapshot["faulted_puts"] > 0  # writes skipped, queries fine


class TestStrategyIntegration:
    @pytest.mark.parametrize("path", [APV, APA, APVPA, APTPA])
    def test_baseline_blocks_byte_identical_with_cache(self, figure1, path):
        indices = [v.index for v in figure1.vertices("author")]
        plain = BaselineStrategy(figure1)
        cached = BaselineStrategy(figure1)
        cached.subpath_cache = SubpathCache(max_bytes=8 << 20)
        assert _rows_equal(
            plain.neighbor_matrix(path, indices),
            cached.neighbor_matrix(path, indices),
        )

    @pytest.mark.parametrize("path", [APVPA, APTPA])
    def test_spm_blocks_byte_identical_with_cache(self, figure1, path):
        indices = [v.index for v in figure1.vertices("author")]
        selected = list(figure1.vertices("author"))[::2]
        plain = SPMStrategy(figure1, selected=selected)
        cached = SPMStrategy(figure1, selected=selected)
        cached.subpath_cache = SubpathCache(max_bytes=8 << 20)
        block = cached.neighbor_matrix(path, indices)
        assert _rows_equal(block, plain.neighbor_matrix(path, indices))
        assert _rows_equal(block, materialize(figure1, path)[indices])
        assert cached.subpath_cache.misses > 0  # the cache was consulted

    def test_shared_cache_hits_across_strategies(self, figure1):
        """One cache, two strategy instances: the second rides the first's
        segment products — the cross-query sharing the service relies on."""
        cache = SubpathCache(max_bytes=8 << 20)
        indices = [v.index for v in figure1.vertices("author")]
        first = BaselineStrategy(figure1)
        first.subpath_cache = cache
        first.neighbor_matrix(APVPA, indices)
        misses_after_first = cache.misses
        assert misses_after_first > 0
        second = BaselineStrategy(figure1)
        second.subpath_cache = cache
        second.neighbor_matrix(APVPA, indices)
        assert cache.misses == misses_after_first  # all hits
        assert cache.hits > 0
        assert cache.hit_rate > 0.0
