"""Tests for :mod:`repro.engine.advisor` (query suggestion, paper §8)."""

import numpy as np
import pytest

from repro.engine.advisor import QueryAdvisor, interestingness
from repro.engine.strategies import PMStrategy
from repro.exceptions import ExecutionError
from repro.metapath.metapath import MetaPath

QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.venue TOP 5;"
)


class TestInterestingness:
    def test_flat_distribution_scores_zero(self):
        assert interestingness(np.full(50, 7.0), top_k=5) == 0.0

    def test_separated_outliers_score_high(self):
        scores = np.concatenate([np.full(5, 0.5), np.full(50, 100.0)])
        assert interestingness(scores, top_k=5) > 0.9

    def test_mild_separation_in_between(self):
        scores = np.concatenate([np.full(5, 60.0), np.full(50, 100.0)])
        value = interestingness(scores, top_k=5)
        assert 0.1 < value < 0.9

    def test_too_few_candidates_scores_zero(self):
        assert interestingness(np.array([1.0, 2.0]), top_k=5) == 0.0

    def test_zero_median_scores_zero(self):
        assert interestingness(np.zeros(20), top_k=5) == 0.0

    def test_clipped_to_unit_interval(self):
        scores = np.concatenate([np.full(5, -10.0), np.full(50, 1.0)])
        assert interestingness(scores, top_k=5) == 1.0


class TestEnumeration:
    @pytest.fixture(scope="class")
    def advisor(self, ego_corpus):
        return QueryAdvisor(PMStrategy(ego_corpus.network))

    def test_paths_start_at_member_type(self, advisor):
        for path in advisor.enumerate_feature_paths("author", max_length=3):
            assert path.source == "author"

    def test_paths_are_schema_legal(self, advisor, ego_corpus):
        for path in advisor.enumerate_feature_paths("author", max_length=4, limit=64):
            path.validate(ego_corpus.network.schema)

    def test_length_bound_respected(self, advisor):
        paths = advisor.enumerate_feature_paths("author", max_length=2)
        assert all(path.length <= 2 for path in paths)
        # From author: a.p (len 1), then a.p.{a,v,t} (len 2) = 4 paths.
        assert len(paths) == 4

    def test_limit_cap(self, advisor):
        paths = advisor.enumerate_feature_paths("author", max_length=5, limit=7)
        assert len(paths) == 7

    def test_invalid_max_length(self, advisor):
        with pytest.raises(ExecutionError):
            advisor.enumerate_feature_paths("author", max_length=0)


class TestSuggest:
    @pytest.fixture(scope="class")
    def advisor(self, ego_corpus):
        return QueryAdvisor(PMStrategy(ego_corpus.network))

    def test_suggestions_ranked_descending(self, advisor):
        suggestions = advisor.suggest(QUERY, max_suggestions=5)
        assert suggestions
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_current_feature_excluded_by_default(self, advisor):
        suggestions = advisor.suggest(QUERY, max_suggestions=10)
        assert MetaPath.parse("author.paper.venue") not in [
            s.feature_path for s in suggestions
        ]

    def test_include_current(self, advisor):
        suggestions = advisor.suggest(
            QUERY, max_suggestions=32, include_current=True
        )
        assert MetaPath.parse("author.paper.venue") in [
            s.feature_path for s in suggestions
        ]

    def test_suggested_queries_parse_and_execute(self, advisor, ego_corpus):
        from repro.engine.detector import OutlierDetector

        detector = OutlierDetector(ego_corpus.network, strategy="pm")
        for suggestion in advisor.suggest(QUERY, max_suggestions=3):
            result = detector.detect(suggestion.query_text)
            assert result.names() == suggestion.result.names()

    def test_venue_judgment_among_top_suggestions(self, advisor):
        """On the ego corpus the venue path is the planted interesting one;
        the advisor must rank it near the top when allowed to include it."""
        suggestions = advisor.suggest(
            QUERY, max_suggestions=32, include_current=True, max_length=2
        )
        paths = [str(s.feature_path) for s in suggestions]
        assert "author.paper.venue" in paths[:3]

    def test_max_suggestions_respected(self, advisor):
        assert len(advisor.suggest(QUERY, max_suggestions=2)) <= 2

    def test_results_carry_top_k(self, advisor):
        for suggestion in advisor.suggest(QUERY, max_suggestions=3):
            assert len(suggestion.result) <= 5
