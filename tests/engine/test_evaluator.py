"""Tests for :mod:`repro.engine.evaluator` (set-expression evaluation)."""

import pytest

from repro.engine.evaluator import SetEvaluator
from repro.engine.strategies import BaselineStrategy, PMStrategy
from repro.exceptions import VertexNotFoundError
from repro.query.parser import parse_set_expression


@pytest.fixture()
def evaluator(figure1):
    return SetEvaluator(BaselineStrategy(figure1))


def names_of(network, member_type, members):
    all_names = network.vertex_names(member_type)
    return {all_names[i] for i in members}


class TestChains:
    def test_single_anchored_vertex(self, figure1, evaluator):
        member_type, members = evaluator.evaluate(parse_set_expression('venue{"KDD"}'))
        assert member_type == "venue"
        assert names_of(figure1, member_type, members) == {"KDD"}

    def test_anchored_walk(self, figure1, evaluator):
        expression = parse_set_expression('venue{"ICDE"}.paper.author')
        member_type, members = evaluator.evaluate(expression)
        assert names_of(figure1, member_type, members) == {"Ava", "Liam", "Zoe"}

    def test_coauthor_set_includes_anchor(self, figure1, evaluator):
        """author{X}.paper.author includes X itself (self-paths exist)."""
        expression = parse_set_expression('author{"Zoe"}.paper.author')
        __, members = evaluator.evaluate(expression)
        assert names_of(figure1, "author", members) == {"Ava", "Liam", "Zoe"}

    def test_bare_type_selects_all(self, figure1, evaluator):
        __, members = evaluator.evaluate(parse_set_expression("author"))
        assert len(members) == figure1.num_vertices("author")

    def test_unanchored_chain(self, figure1, evaluator):
        """venue.paper.author = all authors having a paper with a venue."""
        __, members = evaluator.evaluate(parse_set_expression("venue.paper.author"))
        assert names_of(figure1, "author", members) == {"Ava", "Liam", "Zoe"}

    def test_missing_anchor_raises(self, evaluator):
        with pytest.raises(VertexNotFoundError):
            evaluator.evaluate(parse_set_expression('venue{"VLDB"}.paper.author'))

    def test_results_sorted(self, figure1, evaluator):
        __, members = evaluator.evaluate(parse_set_expression("author"))
        assert members == sorted(members)


class TestSetOperations:
    def test_union(self, figure1, evaluator):
        expression = parse_set_expression(
            'venue{"ICDE"}.paper.author UNION venue{"KDD"}.paper.author'
        )
        __, members = evaluator.evaluate(expression)
        assert names_of(figure1, "author", members) == {"Ava", "Liam", "Zoe"}

    def test_intersect(self, figure1, evaluator):
        expression = parse_set_expression(
            'venue{"ICDE"}.paper.author INTERSECT venue{"KDD"}.paper.author'
        )
        __, members = evaluator.evaluate(expression)
        # Only Zoe published in both venues.
        assert names_of(figure1, "author", members) == {"Zoe"}

    def test_except(self, figure1, evaluator):
        expression = parse_set_expression(
            'venue{"ICDE"}.paper.author EXCEPT venue{"KDD"}.paper.author'
        )
        __, members = evaluator.evaluate(expression)
        assert names_of(figure1, "author", members) == {"Ava", "Liam"}

    def test_nested_operations(self, figure1, evaluator):
        expression = parse_set_expression(
            '(venue{"ICDE"}.paper.author EXCEPT venue{"KDD"}.paper.author) '
            'UNION author{"Zoe"}'
        )
        __, members = evaluator.evaluate(expression)
        assert names_of(figure1, "author", members) == {"Ava", "Liam", "Zoe"}


class TestWhereFilters:
    def test_count_filter(self, figure1, evaluator):
        expression = parse_set_expression(
            "author AS A WHERE COUNT(A.paper) >= 2"
        )
        __, members = evaluator.evaluate(expression)
        assert names_of(figure1, "author", members) == {"Liam", "Zoe"}

    def test_paths_filter(self, figure1, evaluator):
        # PATHS counts instances: Zoe has 5 papers -> 5 author.paper instances.
        expression = parse_set_expression("author AS A WHERE PATHS(A.paper) = 5")
        __, members = evaluator.evaluate(expression)
        assert names_of(figure1, "author", members) == {"Zoe"}

    def test_count_vs_paths_difference(self, figure1, evaluator):
        """COUNT is distinct venues; PATHS is venue link instances."""
        count_expr = parse_set_expression("author AS A WHERE COUNT(A.paper.venue) = 2")
        paths_expr = parse_set_expression("author AS A WHERE PATHS(A.paper.venue) = 5")
        __, by_count = evaluator.evaluate(count_expr)
        __, by_paths = evaluator.evaluate(paths_expr)
        # Zoe: 2 distinct venues but 5 venue links.
        assert names_of(figure1, "author", by_count) == {"Zoe"}
        assert names_of(figure1, "author", by_paths) == {"Zoe"}

    def test_and_or_not(self, figure1, evaluator):
        expression = parse_set_expression(
            "author AS A WHERE COUNT(A.paper) >= 1 AND NOT COUNT(A.paper) > 2"
        )
        __, members = evaluator.evaluate(expression)
        assert names_of(figure1, "author", members) == {"Ava", "Liam"}

    def test_or_combination(self, figure1, evaluator):
        expression = parse_set_expression(
            "author AS A WHERE COUNT(A.paper) = 1 OR COUNT(A.paper) = 5"
        )
        __, members = evaluator.evaluate(expression)
        assert names_of(figure1, "author", members) == {"Ava", "Zoe"}

    def test_filter_on_anchored_chain(self, figure1, evaluator):
        expression = parse_set_expression(
            'venue{"ICDE"}.paper.author AS A WHERE COUNT(A.paper) > 1'
        )
        __, members = evaluator.evaluate(expression)
        assert names_of(figure1, "author", members) == {"Liam", "Zoe"}

    def test_filter_to_empty_set(self, figure1, evaluator):
        expression = parse_set_expression("author AS A WHERE COUNT(A.paper) > 99")
        __, members = evaluator.evaluate(expression)
        assert members == []

    def test_filtered_set_node(self, figure1, evaluator):
        expression = parse_set_expression(
            '(venue{"ICDE"}.paper.author UNION venue{"KDD"}.paper.author) AS A '
            "WHERE COUNT(A.paper) >= 2"
        )
        __, members = evaluator.evaluate(expression)
        assert names_of(figure1, "author", members) == {"Liam", "Zoe"}


class TestStrategyIndependence:
    def test_same_result_under_pm(self, figure1):
        expression = parse_set_expression(
            'venue{"ICDE"}.paper.author AS A WHERE COUNT(A.paper) > 1'
        )
        baseline = SetEvaluator(BaselineStrategy(figure1)).evaluate(expression)
        pm = SetEvaluator(PMStrategy(figure1)).evaluate(expression)
        assert baseline == pm
