"""Tests for :mod:`repro.engine.latency`."""

import pytest

from repro.engine.detector import OutlierDetector
from repro.engine.latency import LatencyReport
from repro.exceptions import ExecutionError


class TestFromSeconds:
    def test_basic_statistics(self):
        report = LatencyReport.from_seconds([0.001] * 99 + [0.1])
        assert report.count == 100
        assert report.p50 == pytest.approx(0.001)
        assert report.maximum == pytest.approx(0.1)
        assert report.mean == pytest.approx((99 * 0.001 + 0.1) / 100)

    def test_percentiles_ordered(self):
        import numpy as np

        rng = np.random.default_rng(0)
        report = LatencyReport.from_seconds(rng.exponential(0.01, size=500))
        assert report.p50 <= report.p90 <= report.p99 <= report.maximum

    def test_single_sample(self):
        report = LatencyReport.from_seconds([0.5])
        assert report.count == 1
        assert report.p50 == report.p99 == report.maximum == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ExecutionError, match="empty"):
            LatencyReport.from_seconds([])

    def test_negative_rejected(self):
        with pytest.raises(ExecutionError, match="non-negative"):
            LatencyReport.from_seconds([0.1, -0.1])

    def test_describe_renders_milliseconds(self):
        text = LatencyReport.from_seconds([0.002]).describe()
        assert "p99=2.00ms" in text
        assert "n=1" in text


class TestFromResults:
    def test_from_executed_workload(self, figure1):
        detector = OutlierDetector(figure1)
        query = (
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        results, __ = detector.detect_many([query] * 5)
        report = LatencyReport.from_results(results)
        assert report.count == 5
        assert report.mean > 0

    def test_stats_required(self, figure1):
        detector = OutlierDetector(figure1, collect_stats=False)
        query = (
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        results, __ = detector.detect_many([query])
        with pytest.raises(ExecutionError, match="collect_stats"):
            LatencyReport.from_results(results)

    def test_empty_results_rejected(self):
        with pytest.raises(ExecutionError):
            LatencyReport.from_results([])
