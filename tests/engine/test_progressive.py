"""Tests for :mod:`repro.engine.progressive` (anytime top-k, paper §8)."""

import numpy as np
import pytest

from repro.core.measures import CosineMeasure, NetOutMeasure, PathSimMeasure
from repro.engine.executor import QueryExecutor
from repro.engine.progressive import ProgressiveQueryExecutor
from repro.engine.strategies import PMStrategy
from repro.exceptions import ExecutionError, MeasureError

QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.venue TOP 5;"
)


@pytest.fixture(scope="module")
def strategy(ego_corpus):
    return PMStrategy(ego_corpus.network)


class TestContributionMatrices:
    """The measure-level support progressive execution builds on."""

    @pytest.mark.parametrize(
        "measure", [NetOutMeasure(), PathSimMeasure(), CosineMeasure()]
    )
    def test_contributions_sum_to_scores(self, measure):
        rng = np.random.default_rng(0)
        candidates = rng.integers(0, 4, size=(6, 7)).astype(float)
        reference = rng.integers(0, 4, size=(9, 7)).astype(float)
        contributions = measure.contribution_matrix(candidates, reference)
        np.testing.assert_allclose(
            contributions.sum(axis=1),
            measure.score(candidates, reference),
            rtol=1e-9,
        )

    def test_additivity_flags(self):
        assert NetOutMeasure("sum").is_additive
        assert not NetOutMeasure("min").is_additive
        assert PathSimMeasure("sum").is_additive
        assert CosineMeasure("sum").is_additive
        assert not CosineMeasure("max").is_additive

    def test_non_additive_contributions_rejected(self):
        with pytest.raises(MeasureError, match="not additive"):
            NetOutMeasure("max").contribution_matrix(np.ones((1, 2)), np.ones((1, 2)))


class TestStream:
    def test_final_snapshot_matches_exact_execution(self, strategy):
        progressive = ProgressiveQueryExecutor(strategy, chunk_size=16, seed=1)
        snapshots = list(progressive.stream(QUERY))
        final = snapshots[-1]
        assert final.complete
        assert final.fraction == 1.0
        exact = QueryExecutor(strategy).execute(QUERY)
        for vertex, estimate in final.estimates.items():
            assert estimate == pytest.approx(exact.scores[vertex], rel=1e-9)
        assert all(h == 0.0 for h in final.half_widths.values())

    def test_snapshot_cadence(self, strategy):
        progressive = ProgressiveQueryExecutor(strategy, chunk_size=10, seed=1)
        snapshots = list(progressive.stream(QUERY))
        total = snapshots[-1].total
        assert len(snapshots) == -(-total // 10)  # ceil division
        assert [s.processed for s in snapshots] == sorted(
            s.processed for s in snapshots
        )

    def test_estimates_are_projections(self, strategy):
        """Early estimates are scaled to the full reference size."""
        progressive = ProgressiveQueryExecutor(strategy, chunk_size=8, seed=3)
        first = next(iter(progressive.stream(QUERY)))
        exact = QueryExecutor(strategy).execute(QUERY)
        # Same order of magnitude as the final scores (not the tiny
        # partial sums): compare medians.
        estimate_median = np.median(list(first.estimates.values()))
        exact_median = np.median(list(exact.scores.values()))
        assert 0.2 < estimate_median / exact_median < 5.0

    def test_multi_feature_query_rejected(self, strategy):
        progressive = ProgressiveQueryExecutor(strategy)
        with pytest.raises(ExecutionError, match="one feature meta-path"):
            list(
                progressive.stream(
                    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
                    "JUDGED BY author.paper.venue, author.paper.author TOP 5;"
                )
            )

    def test_non_additive_measure_rejected(self, strategy):
        with pytest.raises(MeasureError, match="additive"):
            ProgressiveQueryExecutor(strategy, measure=NetOutMeasure("max"))

    def test_invalid_parameters(self, strategy):
        with pytest.raises(ExecutionError):
            ProgressiveQueryExecutor(strategy, chunk_size=0)
        with pytest.raises(MeasureError, match="confidence"):
            ProgressiveQueryExecutor(strategy, confidence=0.5)


class TestExecute:
    def test_early_stop_finds_true_top_k(self, strategy, ego_corpus):
        progressive = ProgressiveQueryExecutor(
            strategy, chunk_size=8, confidence=0.95, seed=5
        )
        result, snapshot = progressive.execute(QUERY)
        exact = QueryExecutor(strategy).execute(QUERY)
        assert set(result.names()) == set(exact.names())
        assert snapshot.stable

    def test_early_stop_processes_less(self, strategy):
        progressive = ProgressiveQueryExecutor(strategy, chunk_size=8, seed=5)
        __, stopped = progressive.execute(QUERY, early_stop=True, min_fraction=0.05)
        __, full = progressive.execute(QUERY, early_stop=False)
        assert full.complete
        assert stopped.processed <= full.processed

    def test_without_early_stop_scores_exact(self, strategy):
        progressive = ProgressiveQueryExecutor(strategy, chunk_size=32, seed=2)
        result, snapshot = progressive.execute(QUERY, early_stop=False)
        exact = QueryExecutor(strategy).execute(QUERY)
        assert snapshot.complete
        assert result.names() == exact.names()
        for vertex, score in result.scores.items():
            assert score == pytest.approx(exact.scores[vertex], rel=1e-9)

    def test_deterministic_given_seed(self, strategy):
        first = ProgressiveQueryExecutor(strategy, chunk_size=8, seed=9).execute(QUERY)
        second = ProgressiveQueryExecutor(strategy, chunk_size=8, seed=9).execute(QUERY)
        assert first[0].names() == second[0].names()
        assert first[1].processed == second[1].processed

    def test_pathsim_measure_supported(self, strategy):
        progressive = ProgressiveQueryExecutor(
            strategy, measure="pathsim", chunk_size=16, seed=0
        )
        result, snapshot = progressive.execute(QUERY, early_stop=False)
        exact = QueryExecutor(strategy, measure="pathsim").execute(QUERY)
        assert result.names() == exact.names()

    def test_empty_candidate_set(self, strategy):
        progressive = ProgressiveQueryExecutor(strategy)
        with pytest.raises(ExecutionError, match="empty"):
            progressive.execute(
                'FIND OUTLIERS FROM author AS A WHERE COUNT(A.paper) > 9999 '
                "JUDGED BY author.paper.venue TOP 5;"
            )
