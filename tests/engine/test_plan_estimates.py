"""Tests for plan cost estimation (:func:`repro.engine.plan.estimate_row_nnz`)."""

import pytest

from repro.engine.plan import estimate_row_nnz, explain
from repro.engine.strategies import BaselineStrategy
from repro.metapath.metapath import MetaPath


class TestEstimateRowNnz:
    def test_single_hop_is_mean_degree(self, figure2):
        strategy = BaselineStrategy(figure2)
        # Each author has papers in 3 venues; 18 papers over 2 authors.
        estimate = estimate_row_nnz(strategy, MetaPath.parse("author.paper"))
        assert estimate == pytest.approx(9.0)

    def test_estimate_capped_at_target_population(self, figure2):
        strategy = BaselineStrategy(figure2)
        estimate = estimate_row_nnz(
            strategy, MetaPath.parse("author.paper.venue")
        )
        assert estimate <= figure2.num_vertices("venue")

    def test_longer_paths_not_smaller_than_warranted(self, small_corpus):
        strategy = BaselineStrategy(small_corpus)
        short = estimate_row_nnz(strategy, MetaPath.parse("author.paper"))
        long = estimate_row_nnz(
            strategy, MetaPath.parse("author.paper.venue.paper")
        )
        assert short > 0
        assert long > 0

    def test_estimate_within_order_of_magnitude(self, small_corpus):
        """The proxy must land near the measured mean row nnz."""
        strategy = BaselineStrategy(small_corpus)
        path = MetaPath.parse("author.paper.venue")
        estimate = estimate_row_nnz(strategy, path)
        indices = list(range(small_corpus.num_vertices("author")))
        matrix = strategy.neighbor_matrix(path, indices)
        actual = matrix.nnz / matrix.shape[0]
        assert actual / 10 <= estimate <= actual * 10

    def test_zero_degree_network(self, figure1):
        strategy = BaselineStrategy(figure1)
        # term-paper exists in schema; figure1 has few terms, still works.
        estimate = estimate_row_nnz(strategy, MetaPath.parse("term.paper"))
        assert estimate >= 0


class TestPlanCarriesEstimates:
    def test_explain_includes_estimate(self, figure1):
        plan = explain(
            BaselineStrategy(figure1),
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;",
        )
        assert plan.features[0].estimated_row_nnz > 0
        assert "nnz/row" in plan.describe()
