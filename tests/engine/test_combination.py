"""Tests for multi-meta-path combination modes (paper §5.1's open choice)."""

import numpy as np
import pytest

from repro.engine.detector import OutlierDetector
from repro.engine.executor import QueryExecutor
from repro.engine.strategies import BaselineStrategy, PMStrategy
from repro.exceptions import ExecutionError

MULTI_QUERY = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue: 2.0, author.paper.author TOP 3;"
)
SINGLE_QUERY = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 3;"
)


class TestCombineModes:
    def test_unknown_mode_rejected(self, figure1):
        with pytest.raises(ExecutionError, match="combine"):
            QueryExecutor(BaselineStrategy(figure1), combine="median")

    def test_single_path_identical_across_modes(self, figure1):
        """With one feature path, every mode must agree."""
        results = {}
        for mode in QueryExecutor.COMBINE_MODES:
            executor = QueryExecutor(BaselineStrategy(figure1), combine=mode)
            result = executor.execute(SINGLE_QUERY)
            results[mode] = [(e.name, round(e.score, 10)) for e in result]
        assert results["score"] == results["rank"] == results["connectivity"]

    def test_score_mode_is_weighted_average(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1), combine="score")
        venue = executor.execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        coauthor = executor.execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.author TOP 3;"
        )
        both = executor.execute(MULTI_QUERY)
        for vertex, score in both.scores.items():
            expected = (2.0 * venue.scores[vertex] + coauthor.scores[vertex]) / 3.0
            assert score == pytest.approx(expected)

    def test_rank_mode_scores_are_mean_ranks(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1), combine="rank")
        result = executor.execute(MULTI_QUERY)
        scores = np.array(sorted(result.scores.values()))
        count = len(result.scores)
        # Mean ranks live in [1, count].
        assert scores.min() >= 1.0
        assert scores.max() <= count

    def test_connectivity_mode_weighted_chi_sum(self, figure2):
        """χ' must equal w1·χ1 + w2·χ2 under the concatenation trick."""
        from repro.core.connectivity import connectivity
        from repro.metapath.materialize import materialize_row
        from repro.metapath.metapath import MetaPath

        jim = figure2.find_vertex("author", "Jim")
        mary = figure2.find_vertex("author", "Mary")
        paths = [MetaPath.parse("author.paper.venue"), MetaPath.parse("author.paper.author")]
        weights = [2.0, 1.0]
        chi_parts = [
            connectivity(
                materialize_row(figure2, path, jim),
                materialize_row(figure2, path, mary),
            )
            for path in paths
        ]
        expected = sum(w * chi for w, chi in zip(weights, chi_parts))

        import scipy.sparse as sp

        blocks_jim = [
            materialize_row(figure2, path, jim) * np.sqrt(w)
            for path, w in zip(paths, weights)
        ]
        blocks_mary = [
            materialize_row(figure2, path, mary) * np.sqrt(w)
            for path, w in zip(paths, weights)
        ]
        combined = connectivity(
            sp.hstack(blocks_jim, format="csr"),
            sp.hstack(blocks_mary, format="csr"),
        )
        assert combined == pytest.approx(expected)

    def test_connectivity_mode_executes(self, figure1):
        executor = QueryExecutor(BaselineStrategy(figure1), combine="connectivity")
        result = executor.execute(MULTI_QUERY)
        assert len(result) == 3
        assert all(np.isfinite(list(result.scores.values())))

    def test_modes_can_disagree(self, ego_corpus):
        """On the ego corpus, score- and rank-combination are not forced to
        produce identical orderings (scale effects differ) — but both must
        still surface planted outliers at the top."""
        network = ego_corpus.network
        query = (
            f'FIND OUTLIERS FROM author{{"{ego_corpus.hub}"}}.paper.author '
            "JUDGED BY author.paper.venue, author.paper.author TOP 10;"
        )
        planted = set(ego_corpus.cross_field) | set(ego_corpus.students)
        for mode in ("score", "rank", "connectivity"):
            detector = OutlierDetector(network, strategy="pm", combine=mode)
            names = detector.detect(query).names()
            assert set(names[:5]) & planted, f"{mode} lost the planted outliers"

    def test_detector_exposes_combine(self, figure1):
        detector = OutlierDetector(figure1, combine="rank")
        assert len(detector.detect(MULTI_QUERY)) == 3

    def test_results_identical_across_strategies_in_rank_mode(self, figure1):
        baseline = QueryExecutor(BaselineStrategy(figure1), combine="rank")
        pm = QueryExecutor(PMStrategy(figure1), combine="rank")
        assert (
            baseline.execute(MULTI_QUERY).names() == pm.execute(MULTI_QUERY).names()
        )
