"""Statistical calibration of the progressive executor's confidence intervals.

A 95% confidence interval is only useful if it actually covers the true
value ~95% of the time.  We fix a query, run the progressive executor to a
partial fraction under many random reference orders, and measure how often
each candidate's interval contains its exact final score.  Sampling without
replacement from a finite population with the finite-population correction
should keep empirical coverage near (or above) nominal.
"""

import numpy as np
import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.progressive import ProgressiveQueryExecutor
from repro.engine.strategies import PMStrategy

QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.venue TOP 5;"
)


@pytest.fixture(scope="module")
def exact_scores(ego_corpus):
    strategy = PMStrategy(ego_corpus.network)
    result = QueryExecutor(strategy, collect_stats=False).execute(QUERY)
    return strategy, result.scores


class TestCalibration:
    @pytest.mark.parametrize("stop_fraction", [0.3, 0.6])
    def test_interval_coverage_near_nominal(self, exact_scores, stop_fraction):
        strategy, truth = exact_scores
        trials = 40
        covered = 0
        checked = 0
        for seed in range(trials):
            progressive = ProgressiveQueryExecutor(
                strategy, chunk_size=8, confidence=0.95, seed=seed
            )
            snapshot = None
            for snapshot in progressive.stream(QUERY):
                if snapshot.fraction >= stop_fraction:
                    break
            assert snapshot is not None
            for vertex, estimate in snapshot.estimates.items():
                half = snapshot.half_widths[vertex]
                checked += 1
                if abs(estimate - truth[vertex]) <= half + 1e-9:
                    covered += 1
        coverage = covered / checked
        # CLT intervals on small, skewed samples run a bit below nominal;
        # anything at or above ~85% empirical coverage for a 95% interval
        # is well-calibrated for this purpose (and ~99% would suggest the
        # intervals are uselessly wide — check both sides).
        assert coverage >= 0.85, f"coverage {coverage:.2%} too low"
        assert coverage <= 1.0

    def test_intervals_shrink_with_fraction(self, exact_scores):
        strategy, __ = exact_scores
        progressive = ProgressiveQueryExecutor(
            strategy, chunk_size=8, confidence=0.95, seed=3
        )
        widths = []
        for snapshot in progressive.stream(QUERY):
            widths.append(np.mean(list(snapshot.half_widths.values())))
        # Mean half-width at 3/4 progress is below the early width, and the
        # final width is exactly zero.
        quarter = len(widths) // 4
        assert widths[3 * quarter] < widths[quarter]
        assert widths[-1] == 0.0

    def test_estimates_unbiased_across_seeds(self, exact_scores):
        """Averaging early estimates over many random orders approaches the
        exact score (unbiasedness of the projection)."""
        strategy, truth = exact_scores
        trials = 60
        sums = None
        vertices = None
        for seed in range(trials):
            progressive = ProgressiveQueryExecutor(
                strategy, chunk_size=16, confidence=0.95, seed=seed
            )
            first = next(iter(progressive.stream(QUERY)))
            if sums is None:
                vertices = list(first.estimates)
                sums = np.zeros(len(vertices))
            sums += np.array([first.estimates[v] for v in vertices])
        means = sums / trials
        true_values = np.array([truth[v] for v in vertices])
        # Relative error of the averaged early estimate, for candidates with
        # non-trivial scores.
        big = true_values > 1.0
        relative = np.abs(means[big] - true_values[big]) / true_values[big]
        assert np.median(relative) < 0.25
