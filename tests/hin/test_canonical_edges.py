"""Tests for :mod:`repro.hin.edges` — replay-exact canonical edge iteration.

The tricky case is a *same-type symmetric* relation (e.g. ``friend``):
its single adjacency matrix holds both mirror entries and doubled
self-loops, so naive serialization replays to doubled counts.  These tests
pin that :func:`canonical_edges` round-trips every relation shape exactly.
"""

import io

import pytest

from repro.hin.edges import canonical_edges
from repro.hin.io import load_json, network_from_dict, network_to_dict, save_json
from repro.hin.network import HeterogeneousInformationNetwork
from repro.hin.schema import NetworkSchema
from repro.hin.subnetwork import induced_subnetwork


@pytest.fixture()
def friend_network():
    """user -friend- user (symmetric, same type), with a self-loop."""
    schema = NetworkSchema(["user"])
    schema.add_edge_type("user", "user", symmetric=True)
    net = HeterogeneousInformationNetwork(schema)
    alice = net.add_vertex("user", "alice")
    bob = net.add_vertex("user", "bob")
    carol = net.add_vertex("user", "carol")
    net.add_edge(alice, bob)
    net.add_edge(alice, bob)  # parallel friendship (two contexts)
    net.add_edge(bob, carol)
    net.add_edge(carol, carol)  # self-loop
    return net


@pytest.fixture()
def citation_network():
    """paper -cites-> paper (directed, same type)."""
    schema = NetworkSchema(["paper"])
    schema.add_edge_type("paper", "paper", symmetric=False)
    net = HeterogeneousInformationNetwork(schema)
    a = net.add_vertex("paper", "a")
    b = net.add_vertex("paper", "b")
    net.add_edge(a, b)
    net.add_edge(b, a)  # mutual citation: two distinct directed edges
    return net


def _replay(network):
    replayed = HeterogeneousInformationNetwork(network.schema)
    for vertex_type in network.schema.vertex_types:
        for name in network.vertex_names(vertex_type):
            replayed.add_vertex(vertex_type, name)
    for u, v, count in canonical_edges(network):
        replayed.add_edge(u, v, count)
    return replayed


def _matrices_equal(a, b):
    for edge_type in a.schema.edge_types:
        left = a.adjacency(edge_type.source, edge_type.target)
        right = b.adjacency(edge_type.source, edge_type.target)
        if left.shape != right.shape or (left != right).nnz != 0:
            return False
    return True


class TestCanonicalEdgesReplay:
    def test_friend_network_replays_exactly(self, friend_network):
        assert _matrices_equal(friend_network, _replay(friend_network))

    def test_friend_matrix_values(self, friend_network):
        matrix = friend_network.adjacency("user", "user")
        assert matrix[0, 1] == 2.0 and matrix[1, 0] == 2.0
        assert matrix[2, 2] == 2.0  # self-loop stored doubled by add_edge

    def test_self_loop_emitted_at_original_count(self, friend_network):
        carol = friend_network.find_vertex("user", "carol")
        loops = [
            count
            for u, v, count in canonical_edges(friend_network)
            if u == v == carol
        ]
        assert loops == [1.0]

    def test_directed_same_type_replays_exactly(self, citation_network):
        assert _matrices_equal(citation_network, _replay(citation_network))

    def test_directed_both_directions_emitted(self, citation_network):
        edges = list(canonical_edges(citation_network))
        assert len(edges) == 2

    def test_bibliographic_network_replays_exactly(self, figure2):
        assert _matrices_equal(figure2, _replay(figure2))

    def test_edge_count_matches_insertions(self, figure1):
        assert len(list(canonical_edges(figure1))) == figure1.num_edges()


class TestPersistenceWithTrickySchemas:
    def test_friend_network_json_round_trip(self, friend_network, tmp_path):
        path = tmp_path / "friends.json"
        save_json(friend_network, path)
        restored = load_json(path)
        assert _matrices_equal(friend_network, restored)

    def test_directed_network_json_round_trip(self, citation_network):
        restored = network_from_dict(network_to_dict(citation_network))
        assert _matrices_equal(citation_network, restored)
        # Directedness preserved: a->b and b->a, nothing mirrored.
        matrix = restored.adjacency("paper", "paper")
        assert matrix[0, 1] == 1.0 and matrix[1, 0] == 1.0

    def test_directed_schema_flag_survives(self, citation_network):
        restored = network_from_dict(network_to_dict(citation_network))
        assert not restored.schema.is_symmetric("paper", "paper")
        # And new insertions stay one-way after the round trip.
        c = restored.add_vertex("paper", "c")
        a = restored.find_vertex("paper", "a")
        restored.add_edge(c, a)
        matrix = restored.adjacency("paper", "paper")
        assert matrix[c.index, a.index] == 1.0
        assert matrix[a.index, c.index] == 0.0

    def test_friend_subnetwork_counts_preserved(self, friend_network):
        sliced = induced_subnetwork(friend_network, {"user": lambda v: True})
        assert _matrices_equal(friend_network, sliced)

    def test_mixed_schema_round_trip(self):
        """Symmetric cross-type + directed same-type in one schema."""
        schema = NetworkSchema(["paper", "author"])
        schema.add_edge_type("paper", "author", symmetric=True)
        schema.add_edge_type("paper", "paper", symmetric=False)
        net = HeterogeneousInformationNetwork(schema)
        a = net.add_vertex("paper", "a")
        b = net.add_vertex("paper", "b")
        ava = net.add_vertex("author", "ava")
        net.add_edge(a, ava)
        net.add_edge(b, ava)
        net.add_edge(a, b)  # a cites b
        restored = network_from_dict(network_to_dict(net))
        assert _matrices_equal(net, restored)
