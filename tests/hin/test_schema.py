"""Tests for :mod:`repro.hin.schema`."""

import pytest

from repro.exceptions import SchemaError
from repro.hin.schema import EdgeType, NetworkSchema, bibliographic_schema


class TestEdgeType:
    def test_reversed_swaps_endpoints(self):
        assert EdgeType("paper", "author").reversed() == EdgeType("author", "paper")

    def test_str(self):
        assert str(EdgeType("paper", "venue")) == "paper-venue"

    def test_equality_and_hash(self):
        assert EdgeType("a", "b") == EdgeType("a", "b")
        assert EdgeType("a", "b") != EdgeType("b", "a")
        assert len({EdgeType("a", "b"), EdgeType("a", "b")}) == 1


class TestVertexTypes:
    def test_add_and_query(self):
        schema = NetworkSchema(["author"])
        assert schema.has_vertex_type("author")
        assert not schema.has_vertex_type("paper")

    def test_duplicate_add_is_noop(self):
        schema = NetworkSchema()
        schema.add_vertex_type("author")
        schema.add_vertex_type("author")
        assert schema.vertex_types == frozenset({"author"})

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            NetworkSchema([""])

    def test_non_identifier_rejected(self):
        with pytest.raises(SchemaError):
            NetworkSchema(["has space"])

    def test_non_string_rejected(self):
        with pytest.raises(SchemaError):
            NetworkSchema([42])


class TestEdgeTypes:
    def test_symmetric_registration(self):
        schema = NetworkSchema(["paper", "author"])
        schema.add_edge_type("paper", "author")
        assert schema.has_edge_type("paper", "author")
        assert schema.has_edge_type("author", "paper")

    def test_asymmetric_registration(self):
        schema = NetworkSchema(["paper", "author"])
        schema.add_edge_type("paper", "author", symmetric=False)
        assert schema.has_edge_type("paper", "author")
        assert not schema.has_edge_type("author", "paper")

    def test_unknown_endpoint_rejected(self):
        schema = NetworkSchema(["paper"])
        with pytest.raises(SchemaError, match="not declared"):
            schema.add_edge_type("paper", "author")

    def test_neighbor_types(self):
        schema = bibliographic_schema()
        assert schema.neighbor_types("paper") == frozenset(
            {"author", "venue", "term"}
        )
        assert schema.neighbor_types("author") == frozenset({"paper"})

    def test_neighbor_types_unknown_type(self):
        with pytest.raises(SchemaError):
            bibliographic_schema().neighbor_types("galaxy")


class TestTypeSequenceValidation:
    def test_valid_sequence(self):
        bibliographic_schema().validate_type_sequence(["author", "paper", "venue"])

    def test_single_type_is_valid(self):
        bibliographic_schema().validate_type_sequence(["author"])

    def test_empty_sequence_rejected(self):
        with pytest.raises(SchemaError, match="at least one"):
            bibliographic_schema().validate_type_sequence([])

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError, match="unknown vertex type"):
            bibliographic_schema().validate_type_sequence(["author", "galaxy"])

    def test_illegal_step_rejected(self):
        # author-venue is not a direct edge type in the bibliographic schema.
        with pytest.raises(SchemaError, match="author-venue"):
            bibliographic_schema().validate_type_sequence(["author", "venue"])


class TestLength2Enumeration:
    def test_bibliographic_length2_paths(self):
        paths = set(bibliographic_schema().length2_metapaths())
        # Every length-2 path pivots through `paper` or starts at it.
        assert ("author", "paper", "venue") in paths
        assert ("author", "paper", "author") in paths
        assert ("paper", "author", "paper") in paths
        assert ("venue", "paper", "term") in paths
        # 3 symmetric relations around paper: from each non-paper type there
        # are 3 choices of second hop (3*3=9), plus paper-X-paper (3).
        assert len(paths) == 12

    def test_all_paths_are_schema_legal(self):
        schema = bibliographic_schema()
        for types in schema.length2_metapaths():
            schema.validate_type_sequence(types)


class TestEquality:
    def test_equal_schemas(self):
        assert bibliographic_schema() == bibliographic_schema()

    def test_unequal_schemas(self):
        other = NetworkSchema(["author"])
        assert bibliographic_schema() != other

    def test_comparison_with_non_schema(self):
        assert bibliographic_schema() != "schema"
