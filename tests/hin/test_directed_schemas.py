"""Tests pinning the semantics of directed (asymmetric) edge types.

Definition 1 makes the network formally directed; undirected relations are
symmetric pairs of directed edge types (the library's default).  These
tests pin what happens when a schema registers only one direction:

* meta-paths may only walk registered directions — the reverse step is a
  schema error, caught at validation time;
* for *same-type* directed relations (e.g. ``paper cites paper``) both
  "directions" name the same edge type, so a two-hop walk follows the
  forward matrix twice (a citation-of-citation walk, not co-citation).
  This is the documented behaviour; true ``P·P⁻¹`` semantics for such
  relations needs an explicitly registered reverse type.
"""

import pytest

from repro.exceptions import MetaPathError, SchemaError
from repro.hin.network import HeterogeneousInformationNetwork
from repro.hin.schema import NetworkSchema
from repro.metapath.counting import neighbor_counts
from repro.metapath.materialize import materialize
from repro.metapath.metapath import MetaPath


@pytest.fixture()
def follower_network():
    """user -follows-> account, registered one-way only."""
    schema = NetworkSchema(["user", "account"])
    schema.add_edge_type("user", "account", symmetric=False)
    net = HeterogeneousInformationNetwork(schema)
    alice = net.add_vertex("user", "alice")
    bob = net.add_vertex("user", "bob")
    star = net.add_vertex("account", "star")
    niche = net.add_vertex("account", "niche")
    net.add_edge(alice, star)
    net.add_edge(alice, niche)
    net.add_edge(bob, star)
    return net


@pytest.fixture()
def citation_network():
    """paper -cites-> paper (directed, same type)."""
    schema = NetworkSchema(["paper"])
    schema.add_edge_type("paper", "paper", symmetric=False)
    net = HeterogeneousInformationNetwork(schema)
    a = net.add_vertex("paper", "a")
    b = net.add_vertex("paper", "b")
    c = net.add_vertex("paper", "c")
    net.add_edge(a, b)  # a cites b
    net.add_edge(b, c)  # b cites c
    return net


class TestAsymmetricDifferentTypes:
    def test_forward_walk_works(self, follower_network):
        alice = follower_network.find_vertex("user", "alice")
        counts = neighbor_counts(
            follower_network, MetaPath.parse("user.account"), alice
        )
        assert len(counts) == 2

    def test_reverse_walk_is_schema_error(self, follower_network):
        with pytest.raises(MetaPathError):
            MetaPath.parse("account.user").validate(follower_network.schema)

    def test_reverse_adjacency_unavailable(self, follower_network):
        from repro.exceptions import NetworkError

        with pytest.raises(NetworkError):
            follower_network.adjacency("account", "user")

    def test_symmetric_closure_of_forward_path_invalid(self, follower_network):
        """(user account user) needs the reverse step — rejected."""
        sym = MetaPath.parse("user.account").symmetric()
        with pytest.raises(MetaPathError):
            sym.validate(follower_network.schema)


class TestDirectedSameType:
    def test_one_hop_is_directed(self, citation_network):
        a = citation_network.find_vertex("paper", "a")
        c = citation_network.find_vertex("paper", "c")
        path = MetaPath.parse("paper.paper")
        assert neighbor_counts(citation_network, path, a) == {1: 1.0}
        # c cites nothing.
        assert neighbor_counts(citation_network, path, c) == {}

    def test_two_hop_follows_forward_twice(self, citation_network):
        """Documented semantics: (paper paper paper) = citations of
        citations, not co-citation."""
        a = citation_network.find_vertex("paper", "a")
        path = MetaPath.parse("paper.paper.paper")
        counts = neighbor_counts(citation_network, path, a)
        c = citation_network.find_vertex("paper", "c")
        assert counts == {c.index: 1.0}

    def test_matrix_matches_traversal(self, citation_network):
        matrix = materialize(citation_network, MetaPath.parse("paper.paper.paper"))
        assert matrix[0, 2] == 1.0
        assert matrix.nnz == 1

    def test_explicit_reverse_type_enables_true_closure(self):
        """The supported pattern for true P·P⁻¹ on directed relations:
        model the reverse as its own vertex-type pair via a role type."""
        schema = NetworkSchema(["paper", "citation"])
        schema.add_edge_type("paper", "citation", symmetric=False)
        schema.add_edge_type("citation", "paper", symmetric=False)
        net = HeterogeneousInformationNetwork(schema)
        a = net.add_vertex("paper", "a")
        b = net.add_vertex("paper", "b")
        c = net.add_vertex("paper", "c")
        # Reify each citation: citing paper -> citation -> cited paper.
        for position, (src, dst) in enumerate([(a, b), (c, b)]):
            edge = net.add_vertex("citation", f"cite{position}")
            net.add_edge(src, edge)
            net.add_edge(edge, dst)
        # Co-citation: a and c both cite b.
        path = MetaPath.parse("paper.citation.paper")
        counts = neighbor_counts(net, path, a)
        assert counts == {b.index: 1.0}
