"""Tests for :mod:`repro.hin.interop` (networkx round-trips)."""

import networkx as nx
import pytest

from repro.exceptions import SchemaError
from repro.hin.interop import from_networkx, infer_schema_from_networkx, to_networkx
from repro.metapath.counting import neighbor_counts
from repro.metapath.metapath import MetaPath


class TestToNetworkx:
    def test_node_population(self, figure1):
        graph = to_networkx(figure1)
        assert graph.number_of_nodes() == figure1.num_vertices()
        assert ("author", "Zoe") in graph.nodes

    def test_node_attributes(self, figure1):
        graph = to_networkx(figure1)
        attributes = graph.nodes[("author", "Zoe")]
        assert attributes["vertex_type"] == "author"
        assert attributes["name"] == "Zoe"

    def test_edge_count_matches_num_edges(self, figure1):
        graph = to_networkx(figure1)
        total = sum(data["count"] for __, __, data in graph.edges(data=True))
        assert total == figure1.num_edges()

    def test_no_cross_type_edges_invented(self, figure1):
        graph = to_networkx(figure1)
        assert not graph.has_edge(("author", "Zoe"), ("venue", "KDD"))
        assert graph.has_edge(("paper", "p1"), ("author", "Zoe"))

    def test_parallel_counts_in_attribute(self):
        from repro.hin import HeterogeneousInformationNetwork, bibliographic_schema

        net = HeterogeneousInformationNetwork(bibliographic_schema())
        p = net.add_vertex("paper", "p")
        a = net.add_vertex("author", "a")
        net.add_edge(p, a, count=3.0)
        graph = to_networkx(net)
        assert graph[("paper", "p")][("author", "a")]["count"] == 3.0


class TestInferSchema:
    def test_infers_types_and_edges(self, figure1):
        schema = infer_schema_from_networkx(to_networkx(figure1))
        assert schema.has_vertex_type("author")
        assert schema.has_edge_type("paper", "author")
        assert schema.has_edge_type("author", "paper")

    def test_missing_vertex_type_rejected(self):
        graph = nx.Graph()
        graph.add_node("untyped")
        with pytest.raises(SchemaError, match="vertex_type"):
            infer_schema_from_networkx(graph)


class TestRoundTrip:
    def test_full_round_trip_preserves_path_counts(self, figure1):
        restored = from_networkx(to_networkx(figure1))
        path = MetaPath.parse("author.paper.venue")
        zoe_original = figure1.find_vertex("author", "Zoe")
        zoe_restored = restored.find_vertex("author", "Zoe")
        original = {
            figure1.vertex_names("venue")[i]: c
            for i, c in neighbor_counts(figure1, path, zoe_original).items()
        }
        round_tripped = {
            restored.vertex_names("venue")[i]: c
            for i, c in neighbor_counts(restored, path, zoe_restored).items()
        }
        assert original == round_tripped

    def test_round_trip_preserves_attributes(self):
        from repro.hin import BibliographicNetworkBuilder, Publication

        builder = BibliographicNetworkBuilder()
        builder.add_publication(
            Publication("p1", ["Ava"], "KDD", title="Graphs", year=2012)
        )
        restored = from_networkx(to_networkx(builder.build()))
        paper = restored.vertex(restored.find_vertex("paper", "p1"))
        assert paper.attributes["year"] == 2012

    def test_hand_built_graph_import(self):
        graph = nx.Graph()
        graph.add_node("u1", vertex_type="user", name="alice")
        graph.add_node("h1", vertex_type="host", name="web-01")
        graph.add_edge("u1", "h1", count=2.0)
        network = from_networkx(graph)
        alice = network.find_vertex("user", "alice")
        assert network.degree(alice, "host") == 2.0

    def test_node_without_name_uses_str(self):
        graph = nx.Graph()
        graph.add_node(42, vertex_type="user")
        network = from_networkx(graph)
        assert network.has_vertex("user", "42")

    def test_multigraph_accumulates(self):
        graph = nx.MultiGraph()
        graph.add_node("u", vertex_type="user", name="alice")
        graph.add_node("h", vertex_type="host", name="web")
        graph.add_edge("u", "h")
        graph.add_edge("u", "h")
        network = from_networkx(graph)
        alice = network.find_vertex("user", "alice")
        assert network.degree(alice, "host") == 2.0

    def test_queries_run_on_imported_graph(self):
        """The end goal: run outlier queries on a graph brought from nx."""
        from repro.engine.detector import OutlierDetector

        graph = nx.Graph()
        for user in ("alice", "bob", "carol"):
            graph.add_node(("user", user), vertex_type="user", name=user)
        for host in ("h1", "h2", "h3"):
            graph.add_node(("host", host), vertex_type="host", name=host)
        # alice and bob share hosts; carol uses her own.
        for user, host in (
            ("alice", "h1"), ("alice", "h2"),
            ("bob", "h1"), ("bob", "h2"),
            ("carol", "h3"),
        ):
            graph.add_edge(("user", user), ("host", host))
        network = from_networkx(graph)
        detector = OutlierDetector(network)
        result = detector.detect(
            "FIND OUTLIERS FROM user JUDGED BY user.host TOP 1;"
        )
        assert result.names() == ["carol"]
