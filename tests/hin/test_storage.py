"""The array-store layer behind ``storage={ram,mmap}``.

Covers the store contract (put/get/appender/commit), the crash-safety
discipline (manifest last; an uncommitted directory is invisible), the
zero-copy CSR adapters, and the network-level storage switch.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from scipy import sparse

from repro.datagen.fixtures import figure1_network
from repro.exceptions import ExecutionError, NetworkError
from repro.hin.io import load_json, network_from_dict, network_to_dict, save_json
from repro.hin.network import HeterogeneousInformationNetwork
from repro.hin.schema import bibliographic_schema
from repro.hin.storage import (
    STORAGE_MODES,
    MmapArrayStore,
    RamArrayStore,
    csr_from_buffers,
    is_store_backed,
    make_store,
    spill_csr,
)


@pytest.fixture(params=["ram", "mmap"])
def store(request, tmp_path):
    if request.param == "ram":
        return RamArrayStore()
    return MmapArrayStore(str(tmp_path / "store"))


class TestArrayStoreContract:
    def test_put_get_roundtrip(self, store):
        expected = np.arange(17, dtype=np.float64)
        store.put("a:data", expected)
        np.testing.assert_array_equal(np.asarray(store.get("a:data")), expected)

    def test_appender_matches_put(self, store):
        chunks = [np.arange(5, dtype=np.int64), np.arange(5, 11, dtype=np.int64)]
        appender = store.appender("chunks", np.dtype(np.int64))
        for chunk in chunks:
            appender.append(chunk)
        appender.finalize()
        np.testing.assert_array_equal(
            np.asarray(store.get("chunks")), np.concatenate(chunks)
        )

    def test_zero_size_arrays(self, store):
        store.put("empty", np.empty(0, dtype=np.float64))
        got = store.get("empty")
        assert got.size == 0 and got.dtype == np.float64

    def test_reput_replaces(self, store):
        store.put("k", np.ones(3))
        old = store.get("k")
        store.put("k", np.zeros(5))
        np.testing.assert_array_equal(np.asarray(store.get("k")), np.zeros(5))
        # A view taken before the re-put keeps reading the old contents.
        np.testing.assert_array_equal(np.asarray(old), np.ones(3))


class TestMmapStorePersistence:
    def test_commit_then_open(self, tmp_path):
        directory = str(tmp_path / "s")
        store = MmapArrayStore(directory)
        store.put("x:data", np.arange(9, dtype=np.float64))
        store.commit({"note": {"hello": 1}})
        reopened = MmapArrayStore.open(directory)
        assert isinstance(reopened.get("x:data"), np.memmap)
        np.testing.assert_array_equal(
            np.asarray(reopened.get("x:data")), np.arange(9, dtype=np.float64)
        )
        assert reopened.extra["note"] == {"hello": 1}

    def test_open_without_manifest_raises(self, tmp_path):
        directory = str(tmp_path / "s")
        store = MmapArrayStore(directory)
        store.put("x", np.ones(4))  # data written, never committed
        with pytest.raises(ExecutionError, match="never published|interrupted"):
            MmapArrayStore.open(directory)

    def test_open_corrupt_manifest_raises(self, tmp_path):
        directory = tmp_path / "s"
        store = MmapArrayStore(str(directory))
        store.put("x", np.ones(4))
        store.commit()
        (directory / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ExecutionError):
            MmapArrayStore.open(str(directory))

    def test_open_truncated_data_raises(self, tmp_path):
        directory = tmp_path / "s"
        store = MmapArrayStore(str(directory))
        store.put("x", np.ones(64))
        store.commit()
        manifest = json.loads((directory / "manifest.json").read_text())
        data_file = directory / manifest["arrays"]["x"]["file"]
        data_file.write_bytes(data_file.read_bytes()[:-16])
        with pytest.raises(ExecutionError):
            MmapArrayStore.open(str(directory))

    def test_temporary_directory_mode(self):
        store = MmapArrayStore()
        store.put("k", np.arange(3, dtype=np.int64))
        path = store.get("k").filename
        assert os.path.exists(path)


class TestCsrAdapters:
    def test_spill_and_rebuild(self, tmp_path):
        store = MmapArrayStore(str(tmp_path / "s"))
        matrix = sparse.random(30, 20, density=0.2, format="csr", random_state=5)
        spilled = spill_csr(store, "m", matrix)
        assert is_store_backed(spilled)
        assert (spilled != matrix.tocsr()).nnz == 0
        # Canonical flags set: scipy must never try to sort the read-only
        # buffers in place.
        assert spilled.has_sorted_indices and spilled.has_canonical_format

    def test_csr_from_buffers_zero_copy(self):
        matrix = sparse.random(8, 8, density=0.3, format="csr", random_state=2)
        matrix.sum_duplicates()
        matrix.sort_indices()
        adopted = csr_from_buffers(
            matrix.data, matrix.indices, matrix.indptr, matrix.shape
        )
        assert adopted.data is matrix.data
        assert (adopted != matrix).nnz == 0

    def test_is_store_backed_on_ram(self):
        matrix = sparse.random(5, 5, density=0.5, format="csr")
        assert not is_store_backed(matrix)


class TestNetworkStorageTier:
    def test_storage_modes_constant(self):
        assert STORAGE_MODES == ("ram", "mmap")

    def test_invalid_storage_rejected(self):
        with pytest.raises(NetworkError, match="storage"):
            HeterogeneousInformationNetwork(
                bibliographic_schema(), storage="tape"
            )
        with pytest.raises(NetworkError):
            make_store("tape", None)

    def test_copy_with_storage_roundtrip(self, tmp_path):
        network = figure1_network()
        mmap_net = network.copy_with_storage("mmap", str(tmp_path / "net"))
        assert mmap_net.storage == "mmap"
        for edge_type in network.schema.edge_types:
            ram = network.adjacency(edge_type.source, edge_type.target)
            mm = mmap_net.adjacency(edge_type.source, edge_type.target)
            assert is_store_backed(mm)
            assert (ram != mm).nnz == 0
        assert mmap_net.vertex_names("author") == network.vertex_names("author")

    def test_load_json_storage_passthrough(self, tmp_path):
        network = figure1_network()
        path = tmp_path / "net.json"
        save_json(network, path)
        loaded = load_json(path, storage="mmap", storage_dir=str(tmp_path / "s"))
        assert loaded.storage == "mmap"
        for edge_type in network.schema.edge_types:
            assert is_store_backed(
                loaded.adjacency(edge_type.source, edge_type.target)
            )
            assert (
                network.adjacency(edge_type.source, edge_type.target)
                != loaded.adjacency(edge_type.source, edge_type.target)
            ).nnz == 0

    def test_network_from_dict_storage(self):
        data = network_to_dict(figure1_network())
        loaded = network_from_dict(data, storage="mmap")
        assert loaded.storage == "mmap"
