"""Tests for :mod:`repro.hin.network`."""

import numpy as np
import pytest

from repro.exceptions import NetworkError, VertexNotFoundError
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.hin.schema import NetworkSchema, bibliographic_schema


@pytest.fixture()
def empty_network():
    return HeterogeneousInformationNetwork(bibliographic_schema())


@pytest.fixture()
def tiny_network():
    """Two papers: p1 by Ava+Liam in KDD; p2 by Liam in ICDE."""
    net = HeterogeneousInformationNetwork(bibliographic_schema())
    ava = net.add_vertex("author", "Ava")
    liam = net.add_vertex("author", "Liam")
    p1 = net.add_vertex("paper", "p1")
    p2 = net.add_vertex("paper", "p2")
    kdd = net.add_vertex("venue", "KDD")
    icde = net.add_vertex("venue", "ICDE")
    net.add_edge(p1, ava)
    net.add_edge(p1, liam)
    net.add_edge(p1, kdd)
    net.add_edge(p2, liam)
    net.add_edge(p2, icde)
    return net


class TestVertices:
    def test_add_vertex_returns_sequential_ids(self, empty_network):
        first = empty_network.add_vertex("author", "A")
        second = empty_network.add_vertex("author", "B")
        assert (first.type, first.index) == ("author", 0)
        assert (second.type, second.index) == ("author", 1)

    def test_duplicate_name_returns_existing_id(self, empty_network):
        first = empty_network.add_vertex("author", "A", {"k": 1})
        again = empty_network.add_vertex("author", "A", {"k": 2})
        assert first == again
        # Attributes of the existing vertex are untouched.
        assert empty_network.vertex(first).attributes == {"k": 1}

    def test_same_name_different_types_are_distinct(self, empty_network):
        author = empty_network.add_vertex("author", "X")
        venue = empty_network.add_vertex("venue", "X")
        assert author.type != venue.type
        assert empty_network.num_vertices() == 2

    def test_unknown_type_rejected(self, empty_network):
        with pytest.raises(NetworkError):
            empty_network.add_vertex("galaxy", "X")

    def test_find_vertex(self, tiny_network):
        ava = tiny_network.find_vertex("author", "Ava")
        assert tiny_network.vertex_name(ava) == "Ava"

    def test_find_vertex_missing_name(self, tiny_network):
        with pytest.raises(VertexNotFoundError, match="no author vertex"):
            tiny_network.find_vertex("author", "Zoe")

    def test_find_vertex_missing_type(self, tiny_network):
        with pytest.raises(VertexNotFoundError):
            tiny_network.find_vertex("galaxy", "Ava")

    def test_has_vertex(self, tiny_network):
        assert tiny_network.has_vertex("author", "Ava")
        assert not tiny_network.has_vertex("author", "Zoe")
        assert not tiny_network.has_vertex("galaxy", "Ava")

    def test_num_vertices_by_type(self, tiny_network):
        assert tiny_network.num_vertices("author") == 2
        assert tiny_network.num_vertices("paper") == 2
        assert tiny_network.num_vertices("venue") == 2
        assert tiny_network.num_vertices("term") == 0

    def test_num_vertices_total(self, tiny_network):
        assert tiny_network.num_vertices() == 6

    def test_num_vertices_unknown_type(self, tiny_network):
        with pytest.raises(NetworkError):
            tiny_network.num_vertices("galaxy")

    def test_vertices_iteration_order(self, tiny_network):
        ids = list(tiny_network.vertices("author"))
        assert ids == [VertexId("author", 0), VertexId("author", 1)]

    def test_vertex_names_returns_copy(self, tiny_network):
        names = tiny_network.vertex_names("author")
        names.append("Mallory")
        assert tiny_network.vertex_names("author") == ["Ava", "Liam"]

    def test_add_vertices_bulk(self, empty_network):
        ids = empty_network.add_vertices("term", ["a", "b", "c"])
        assert [v.index for v in ids] == [0, 1, 2]

    def test_vertex_record(self, empty_network):
        vid = empty_network.add_vertex("paper", "p", {"year": 2014})
        vertex = empty_network.vertex(vid)
        assert vertex.name == "p"
        assert vertex.type == "paper"
        assert vertex.attributes == {"year": 2014}

    def test_vertex_invalid_index(self, tiny_network):
        with pytest.raises(VertexNotFoundError):
            tiny_network.vertex(VertexId("author", 99))


class TestEdges:
    def test_adjacency_shape_and_counts(self, tiny_network):
        matrix = tiny_network.adjacency("paper", "author")
        assert matrix.shape == (2, 2)
        assert matrix.sum() == 3.0

    def test_symmetric_adjacency_is_transpose(self, tiny_network):
        forward = tiny_network.adjacency("paper", "author")
        backward = tiny_network.adjacency("author", "paper")
        assert (forward.T != backward).nnz == 0

    def test_parallel_edges_accumulate(self, empty_network):
        p = empty_network.add_vertex("paper", "p")
        a = empty_network.add_vertex("author", "a")
        empty_network.add_edge(p, a)
        empty_network.add_edge(p, a)
        assert empty_network.adjacency("paper", "author")[0, 0] == 2.0

    def test_edge_count_parameter(self, empty_network):
        p = empty_network.add_vertex("paper", "p")
        a = empty_network.add_vertex("author", "a")
        empty_network.add_edge(p, a, count=3.0)
        assert empty_network.adjacency("author", "paper")[0, 0] == 3.0

    def test_nonpositive_count_rejected(self, empty_network):
        p = empty_network.add_vertex("paper", "p")
        a = empty_network.add_vertex("author", "a")
        with pytest.raises(NetworkError, match="positive"):
            empty_network.add_edge(p, a, count=0)

    def test_unregistered_edge_type_rejected(self, empty_network):
        a = empty_network.add_vertex("author", "a")
        v = empty_network.add_vertex("venue", "v")
        with pytest.raises(NetworkError, match="author-venue"):
            empty_network.add_edge(a, v)

    def test_edge_to_missing_vertex_rejected(self, empty_network):
        p = empty_network.add_vertex("paper", "p")
        with pytest.raises(VertexNotFoundError):
            empty_network.add_edge(p, VertexId("author", 5))

    def test_num_edges(self, tiny_network):
        assert tiny_network.num_edges() == 5

    def test_adjacency_reflects_late_vertices(self, tiny_network):
        """Adding a vertex after a matrix was built must grow the matrix."""
        before = tiny_network.adjacency("paper", "author").shape
        zoe = tiny_network.add_vertex("author", "Zoe")
        p3 = tiny_network.add_vertex("paper", "p3")
        tiny_network.add_edge(p3, zoe)
        after = tiny_network.adjacency("paper", "author")
        assert before == (2, 2)
        assert after.shape == (3, 3)
        assert after[2, 2] == 1.0

    def test_adjacency_for_edge_type_with_no_edges(self, tiny_network):
        matrix = tiny_network.adjacency("paper", "term")
        assert matrix.shape == (2, 0)
        assert matrix.nnz == 0

    def test_adjacency_unregistered_type_pair(self, tiny_network):
        with pytest.raises(NetworkError):
            tiny_network.adjacency("author", "venue")


class TestTraversalHelpers:
    def test_degree(self, tiny_network):
        liam = tiny_network.find_vertex("author", "Liam")
        assert tiny_network.degree(liam, "paper") == 2.0

    def test_neighbors(self, tiny_network):
        liam = tiny_network.find_vertex("author", "Liam")
        papers = tiny_network.neighbors(liam, "paper")
        assert {tiny_network.vertex_name(p) for p in papers} == {"p1", "p2"}

    def test_neighbor_counts(self, empty_network):
        p = empty_network.add_vertex("paper", "p")
        a = empty_network.add_vertex("author", "a")
        empty_network.add_edge(p, a, count=2.0)
        assert empty_network.neighbor_counts(a, "paper") == {0: 2.0}

    def test_neighbors_of_isolated_vertex(self, tiny_network):
        lone = tiny_network.add_vertex("author", "Lone")
        assert tiny_network.neighbors(lone, "paper") == []


class TestVertexIdOrdering:
    def test_sortable(self):
        ids = [VertexId("b", 1), VertexId("a", 5), VertexId("a", 2)]
        assert sorted(ids) == [VertexId("a", 2), VertexId("a", 5), VertexId("b", 1)]
