"""Tests for :mod:`repro.hin.subnetwork`."""

import pytest

from repro.exceptions import NetworkError
from repro.hin.bibliographic import BibliographicNetworkBuilder, Publication
from repro.hin.network import VertexId
from repro.hin.subnetwork import induced_subnetwork, slice_by_attribute


@pytest.fixture()
def dated_network():
    builder = BibliographicNetworkBuilder()
    builder.add_publications(
        [
            Publication("p90", ["Ava", "Liam"], "KDD", terms=["old"], year=1990),
            Publication("p05", ["Ava"], "ICDE", terms=["mid"], year=2005),
            Publication("p15", ["Zoe", "Ava"], "ICDE", terms=["new"], year=2015),
            Publication("p16", ["Zoe"], "KDD", terms=["new"], year=2016),
        ]
    )
    return builder.build()


class TestInducedSubnetwork:
    def test_predicate_filters_vertices(self, dated_network):
        sliced = induced_subnetwork(
            dated_network,
            {"paper": lambda v: v.attributes.get("year", 0) >= 2010},
        )
        assert sliced.num_vertices("paper") == 2
        # Unmentioned types keep all vertices...
        assert sliced.num_vertices("author") == 3

    def test_edges_only_between_survivors(self, dated_network):
        sliced = induced_subnetwork(
            dated_network,
            {"paper": lambda v: v.attributes.get("year", 0) >= 2010},
        )
        liam = sliced.find_vertex("author", "Liam")
        # Liam's only paper (p90) was filtered out.
        assert sliced.degree(liam, "paper") == 0.0
        zoe = sliced.find_vertex("author", "Zoe")
        assert sliced.degree(zoe, "paper") == 2.0

    def test_attributes_preserved(self, dated_network):
        sliced = induced_subnetwork(dated_network, {"paper": lambda v: True})
        paper = sliced.vertex(sliced.find_vertex("paper", "p15"))
        assert paper.attributes["year"] == 2015

    def test_explicit_vertex_set_is_exhaustive(self, dated_network):
        ava = dated_network.find_vertex("author", "Ava")
        p05 = dated_network.find_vertex("paper", "p05")
        sliced = induced_subnetwork(dated_network, vertices=[ava, p05])
        assert sliced.num_vertices("author") == 1
        assert sliced.num_vertices("paper") == 1
        assert sliced.num_vertices("venue") == 0
        new_ava = sliced.find_vertex("author", "Ava")
        assert sliced.degree(new_ava, "paper") == 1.0

    def test_duplicate_vertices_deduplicated(self, dated_network):
        ava = dated_network.find_vertex("author", "Ava")
        sliced = induced_subnetwork(dated_network, vertices=[ava, ava])
        assert sliced.num_vertices("author") == 1

    def test_both_arguments_rejected(self, dated_network):
        with pytest.raises(NetworkError, match="exactly one"):
            induced_subnetwork(dated_network, {}, vertices=[])

    def test_neither_argument_rejected(self, dated_network):
        with pytest.raises(NetworkError, match="exactly one"):
            induced_subnetwork(dated_network)

    def test_unknown_type_in_vertex_set(self, dated_network):
        with pytest.raises(NetworkError):
            induced_subnetwork(dated_network, vertices=[VertexId("galaxy", 0)])

    def test_parallel_edge_counts_preserved(self, figure2):
        sliced = induced_subnetwork(figure2, {"author": lambda v: True})
        jim = sliced.find_vertex("author", "Jim")
        assert sliced.degree(jim, "paper") == 12.0

    def test_path_counts_change_with_slice(self, dated_network):
        """Slicing re-scopes the data: path counts shrink accordingly."""
        from repro.metapath.counting import neighbor_counts
        from repro.metapath.metapath import MetaPath

        sliced = induced_subnetwork(
            dated_network,
            {"paper": lambda v: v.attributes.get("year", 0) >= 2010},
        )
        path = MetaPath.parse("author.paper.venue")
        ava_full = neighbor_counts(
            dated_network, path, dated_network.find_vertex("author", "Ava")
        )
        ava_sliced = neighbor_counts(
            sliced, path, sliced.find_vertex("author", "Ava")
        )
        assert sum(ava_full.values()) == 3.0
        assert sum(ava_sliced.values()) == 1.0


class TestSliceByAttribute:
    def test_minimum(self, dated_network):
        sliced = slice_by_attribute(dated_network, "paper", "year", minimum=2010)
        assert set(sliced.vertex_names("paper")) == {"p15", "p16"}

    def test_range(self, dated_network):
        sliced = slice_by_attribute(
            dated_network, "paper", "year", minimum=2000, maximum=2010
        )
        assert set(sliced.vertex_names("paper")) == {"p05"}

    def test_missing_attribute_dropped_by_default(self, dated_network):
        yearless = dated_network.add_vertex("paper", "draft")
        sliced = slice_by_attribute(dated_network, "paper", "year", minimum=0)
        assert not sliced.has_vertex("paper", "draft")

    def test_missing_attribute_kept_when_asked(self, dated_network):
        dated_network.add_vertex("paper", "draft")
        sliced = slice_by_attribute(
            dated_network, "paper", "year", minimum=0, drop_missing=False
        )
        assert sliced.has_vertex("paper", "draft")

    def test_no_bounds_rejected(self, dated_network):
        with pytest.raises(NetworkError, match="at least one"):
            slice_by_attribute(dated_network, "paper", "year")

    def test_queries_on_slice(self, dated_network):
        """End to end: outliers in the post-2010 slice only."""
        from repro.engine.detector import OutlierDetector

        sliced = slice_by_attribute(dated_network, "paper", "year", minimum=2010)
        detector = OutlierDetector(sliced)
        result = detector.detect(
            "FIND OUTLIERS FROM author AS A WHERE COUNT(A.paper) >= 1 "
            "JUDGED BY author.paper.venue TOP 2;"
        )
        assert set(result.names()) <= {"Ava", "Zoe"}
