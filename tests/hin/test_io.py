"""Tests for :mod:`repro.hin.io` (JSON and TSV round-trips)."""

import io

import pytest

from repro.exceptions import NetworkError
from repro.hin import bibliographic_schema
from repro.hin.io import (
    load_json,
    network_from_dict,
    network_to_dict,
    read_edge_list,
    save_json,
    write_edge_list,
)


def _networks_equal(a, b) -> bool:
    if a.schema != b.schema:
        return False
    for vertex_type in a.schema.vertex_types:
        if a.vertex_names(vertex_type) != b.vertex_names(vertex_type):
            return False
    for edge_type in a.schema.edge_types:
        left = a.adjacency(edge_type.source, edge_type.target)
        right = b.adjacency(edge_type.source, edge_type.target)
        if left.shape != right.shape or (left != right).nnz != 0:
            return False
    return True


class TestJsonRoundTrip:
    def test_dict_round_trip(self, figure1):
        data = network_to_dict(figure1)
        restored = network_from_dict(data)
        assert _networks_equal(figure1, restored)

    def test_file_round_trip(self, figure1, tmp_path):
        path = tmp_path / "net.json"
        save_json(figure1, path)
        restored = load_json(path)
        assert _networks_equal(figure1, restored)

    def test_attributes_survive(self, tmp_path):
        from repro.hin import BibliographicNetworkBuilder, Publication

        builder = BibliographicNetworkBuilder()
        builder.add_publication(
            Publication("p1", ["Ava"], "KDD", title="Graphs", year=2013)
        )
        net = builder.build()
        path = tmp_path / "net.json"
        save_json(net, path)
        restored = load_json(path)
        paper = restored.vertex(restored.find_vertex("paper", "p1"))
        assert paper.attributes == {"year": 2013, "title": "Graphs"}

    def test_unknown_format_version_rejected(self, figure1):
        data = network_to_dict(figure1)
        data["format_version"] = 99
        with pytest.raises(NetworkError, match="format version"):
            network_from_dict(data)

    def test_parallel_edge_counts_survive(self, figure2, tmp_path):
        path = tmp_path / "net.json"
        save_json(figure2, path)
        restored = load_json(path)
        assert _networks_equal(figure2, restored)


class TestEdgeListRoundTrip:
    def test_round_trip(self, figure1):
        buffer = io.StringIO()
        lines = write_edge_list(figure1, buffer)
        assert lines > 0
        buffer.seek(0)
        restored = read_edge_list(buffer, bibliographic_schema())
        # Vertex insertion order differs, so compare by names and degrees.
        for vertex_type in ("author", "paper", "venue", "term"):
            assert set(restored.vertex_names(vertex_type)) == set(
                figure1.vertex_names(vertex_type)
            )
        zoe_orig = figure1.find_vertex("author", "Zoe")
        zoe_new = restored.find_vertex("author", "Zoe")
        assert figure1.degree(zoe_orig, "paper") == restored.degree(zoe_new, "paper")

    def test_comments_and_blank_lines_skipped(self):
        text = "# comment\n\npaper\tp1\tauthor\tAva\n"
        restored = read_edge_list(io.StringIO(text), bibliographic_schema())
        assert restored.num_edges() == 1

    def test_explicit_count_column(self):
        text = "paper\tp1\tauthor\tAva\t2\n"
        restored = read_edge_list(io.StringIO(text), bibliographic_schema())
        assert restored.adjacency("paper", "author")[0, 0] == 2.0

    def test_malformed_line_rejected(self):
        text = "paper\tp1\tauthor\n"
        with pytest.raises(NetworkError, match="line 1"):
            read_edge_list(io.StringIO(text), bibliographic_schema())

    def test_symmetric_relations_written_once(self, figure1):
        buffer = io.StringIO()
        lines = write_edge_list(figure1, buffer)
        assert lines == figure1.num_edges()
