"""Tests for :mod:`repro.hin.builder` and :mod:`repro.hin.bibliographic`."""

import pytest

from repro.exceptions import NetworkError
from repro.hin.bibliographic import (
    BibliographicNetworkBuilder,
    Publication,
    tokenize_title,
)
from repro.hin.builder import NetworkBuilder
from repro.hin.schema import bibliographic_schema


class TestNetworkBuilder:
    def test_add_edge_creates_vertices(self):
        builder = NetworkBuilder(bibliographic_schema())
        builder.add_edge("paper", "p1", "author", "Ava")
        net = builder.build()
        assert net.has_vertex("paper", "p1")
        assert net.has_vertex("author", "Ava")
        assert net.num_edges() == 1

    def test_add_edges_bulk(self):
        builder = NetworkBuilder(bibliographic_schema())
        builder.add_edges("paper", "author", [("p1", "Ava"), ("p1", "Liam")])
        assert builder.build().num_edges() == 2

    def test_builder_is_incremental(self):
        builder = NetworkBuilder(bibliographic_schema())
        builder.add_edge("paper", "p1", "author", "Ava")
        net = builder.build()
        builder.add_edge("paper", "p2", "author", "Ava")
        # build() returns the live network; later additions are visible.
        assert net.num_edges() == 2

    def test_add_vertex_with_attributes(self):
        builder = NetworkBuilder(bibliographic_schema())
        vid = builder.add_vertex("paper", "p1", {"year": 2015})
        assert builder.build().vertex(vid).attributes == {"year": 2015}


class TestTokenizeTitle:
    def test_basic_tokenization(self):
        assert tokenize_title("Mining Outliers in Large Networks") == [
            "mining",
            "outliers",
            "large",
            "networks",
        ]

    def test_stop_words_removed(self):
        assert tokenize_title("the a of and") == []

    def test_punctuation_and_case(self):
        assert tokenize_title("Graph-Based Query: A Survey!") == [
            "graph-based",
            "query",
            "survey",
        ]

    def test_numbers_kept(self):
        assert "2015" in tokenize_title("EDBT 2015 proceedings")


class TestPublication:
    def test_terms_override_title(self):
        pub = Publication("p", ["A"], "V", title="some title", terms=["x", "y"])
        assert pub.term_list() == ["x", "y"]

    def test_title_tokenized_when_no_terms(self):
        pub = Publication("p", ["A"], "V", title="graph mining")
        assert pub.term_list() == ["graph", "mining"]


class TestBibliographicNetworkBuilder:
    def test_expansion_creates_all_link_types(self):
        builder = BibliographicNetworkBuilder()
        builder.add_publication(
            Publication("p1", ["Ava", "Liam"], "KDD", terms=["graphs", "mining"])
        )
        net = builder.build()
        assert net.num_vertices("author") == 2
        assert net.num_vertices("venue") == 1
        assert net.num_vertices("term") == 2
        # 2 author links + 1 venue link + 2 term links.
        assert net.num_edges() == 5

    def test_missing_venue_becomes_null_vertex(self):
        builder = BibliographicNetworkBuilder()
        builder.add_publication(Publication("p1", ["Ava"], None, terms=["t"]))
        net = builder.build()
        assert net.has_vertex("venue", "NULL")

    def test_missing_venue_skipped_when_disabled(self):
        builder = BibliographicNetworkBuilder(null_venue_name=None)
        builder.add_publication(Publication("p1", ["Ava"], None, terms=["t"]))
        net = builder.build()
        assert net.num_vertices("venue") == 0

    def test_no_authors_rejected(self):
        builder = BibliographicNetworkBuilder()
        with pytest.raises(NetworkError, match="no authors"):
            builder.add_publication(Publication("p1", [], "KDD"))

    def test_year_and_title_stored_as_attributes(self):
        builder = BibliographicNetworkBuilder()
        builder.add_publication(
            Publication("p1", ["Ava"], "KDD", title="Graphs", year=2014)
        )
        net = builder.build()
        paper = net.vertex(net.find_vertex("paper", "p1"))
        assert paper.attributes == {"year": 2014, "title": "Graphs"}

    def test_publication_count(self):
        builder = BibliographicNetworkBuilder()
        builder.add_publications(
            [Publication("p1", ["A"], "V"), Publication("p2", ["B"], "V")]
        )
        assert builder.publication_count == 2

    def test_shared_authors_across_publications(self):
        builder = BibliographicNetworkBuilder()
        builder.add_publications(
            [
                Publication("p1", ["Ava"], "KDD", terms=["t"]),
                Publication("p2", ["Ava"], "ICDE", terms=["t"]),
            ]
        )
        net = builder.build()
        assert net.num_vertices("author") == 1
        ava = net.find_vertex("author", "Ava")
        assert net.degree(ava, "paper") == 2.0
