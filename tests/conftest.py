"""Shared fixtures: paper toy networks, synthetic corpora, hypothesis profiles.

The hypothesis settings profiles registered here apply to every property
suite (``tests/properties/``, ``tests/zoo/``):

* ``repro`` (default) — ``deadline=None`` (network builds and dense
  baselines legitimately take longer than hypothesis's 200 ms default on a
  loaded machine; wall-clock deadlines only make the suites flaky) and a
  moderate ``max_examples`` budget.
* ``repro-ci`` (loaded when ``CI`` is set) — same, plus ``derandomize``
  so CI failures always reproduce.

Individual ``@settings(...)`` decorators still override per-test knobs;
the profile supplies the shared defaults underneath.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.datagen import hub_ego_corpus
from repro.datagen.fixtures import figure1_network, figure2_network, table1_network
from repro.datagen.synthetic import BibliographicNetworkGenerator, GeneratorConfig

_SHARED = dict(
    deadline=None,
    max_examples=40,
    suppress_health_check=(HealthCheck.too_slow,),
    print_blob=True,
)
settings.register_profile("repro", **_SHARED)
settings.register_profile("repro-ci", derandomize=True, **_SHARED)
settings.load_profile("repro-ci" if os.environ.get("CI") else "repro")


@pytest.fixture()
def figure1():
    return figure1_network()


@pytest.fixture()
def figure2():
    return figure2_network()


@pytest.fixture(scope="session")
def table1():
    """(network, candidate names, reference names) of the paper's Table 1."""
    return table1_network()


@pytest.fixture(scope="session")
def small_corpus():
    """A small deterministic synthetic corpus (2 communities)."""
    config = GeneratorConfig(
        num_communities=2,
        authors_per_community=60,
        venues_per_community=5,
        terms_per_community=40,
        common_terms=10,
        papers_per_community=150,
    )
    return BibliographicNetworkGenerator(config, seed=42).build_network()


@pytest.fixture(scope="session")
def ego_corpus():
    """The planted hub ego corpus used by the case-study tests."""
    return hub_ego_corpus()
