"""Shared fixtures: paper toy networks and session-scoped synthetic corpora."""

from __future__ import annotations

import pytest

from repro.datagen import hub_ego_corpus
from repro.datagen.fixtures import figure1_network, figure2_network, table1_network
from repro.datagen.synthetic import BibliographicNetworkGenerator, GeneratorConfig


@pytest.fixture()
def figure1():
    return figure1_network()


@pytest.fixture()
def figure2():
    return figure2_network()


@pytest.fixture(scope="session")
def table1():
    """(network, candidate names, reference names) of the paper's Table 1."""
    return table1_network()


@pytest.fixture(scope="session")
def small_corpus():
    """A small deterministic synthetic corpus (2 communities)."""
    config = GeneratorConfig(
        num_communities=2,
        authors_per_community=60,
        venues_per_community=5,
        terms_per_community=40,
        common_terms=10,
        papers_per_community=150,
    )
    return BibliographicNetworkGenerator(config, seed=42).build_network()


@pytest.fixture(scope="session")
def ego_corpus():
    """The planted hub ego corpus used by the case-study tests."""
    return hub_ego_corpus()
