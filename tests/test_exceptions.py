"""Tests for :mod:`repro.exceptions` — the full hierarchy, via real raises.

Every public exception class is provoked through an actual library code
path (not constructed ad hoc) and shown to be catchable as
:class:`~repro.exceptions.ReproError`, so API-boundary ``except ReproError``
handlers provably cover the whole library.
"""

import pytest

import repro.exceptions as exceptions_module
from repro.engine.resilience import CircuitBreaker, ResourceGuard
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    DegradedResultWarning,
    ExecutionError,
    MeasureError,
    MetaPathError,
    NetworkError,
    NoReplicasAvailableError,
    QueryError,
    QuerySemanticError,
    QuerySyntaxError,
    ReplicaUnavailableError,
    ReproError,
    ResourceLimitError,
    SchemaError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    TransientFaultError,
    UnsupportedSchemaError,
    VertexNotFoundError,
    WorkerCrashedError,
)
from repro.hin.network import HeterogeneousInformationNetwork
from repro.hin.schema import NetworkSchema, bibliographic_schema


class FailClock:
    """A clock whose every read jumps far past any budget."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 100.0
        return self.now


def raise_schema_error():
    NetworkSchema(["author"]).add_edge_type("author", "ghost_type")


def raise_network_error():
    network = HeterogeneousInformationNetwork(bibliographic_schema())
    network.num_vertices("ghost_type")


def raise_vertex_not_found():
    network = HeterogeneousInformationNetwork(bibliographic_schema())
    network.find_vertex("author", "Nobody")


def raise_metapath_error():
    from repro.metapath.metapath import MetaPath

    MetaPath.parse("author.venue").validate(bibliographic_schema())


def raise_query_syntax_error():
    from repro.query.parser import parse_query

    parse_query("FIND gibberish")


def raise_query_semantic_error():
    from repro.query.parser import parse_query
    from repro.query.semantics import validate_query

    ast = parse_query(
        'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
        "JUDGED BY venue.paper.term TOP 3;"
    )
    validate_query(bibliographic_schema(), ast)


def raise_execution_error():
    from repro.datagen.fixtures import figure1_network
    from repro.engine.executor import QueryExecutor
    from repro.engine.strategies import BaselineStrategy

    QueryExecutor(BaselineStrategy(figure1_network())).execute(
        'FIND OUTLIERS FROM author AS A WHERE COUNT(A.paper) > 99 '
        "JUDGED BY author.paper.venue TOP 3;"
    )


def raise_measure_error():
    from repro.core.measures import get_measure

    get_measure("no_such_measure")


def raise_deadline_exceeded():
    from repro.engine.deadline import Deadline

    Deadline(1.0, clock=FailClock()).check("test")


def raise_resource_limit():
    ResourceGuard(max_memory_bytes=1).check_estimate(10**9, "a giant build")


def raise_circuit_open():
    breaker = CircuitBreaker(failure_threshold=1, clock=lambda: 0.0)
    try:
        breaker.call(raise_transient_fault)
    except TransientFaultError:
        pass
    breaker.call(lambda: "never reached")


def raise_transient_fault():
    from repro import faultinject

    with faultinject.inject(faultinject.FaultRule(point="io")):
        faultinject.check("io")


def raise_service_overloaded():
    from repro.service.admission import AdmissionController

    controller = AdmissionController(capacity=1)
    controller.admit()
    controller.admit()  # over budget: shed


def raise_service_closed():
    from repro.datagen.fixtures import figure1_network
    from repro.service import QueryService, ServiceConfig

    service = QueryService.from_network(
        figure1_network(), ServiceConfig(workers=1)
    )
    service.close()
    service.submit(
        'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
        "JUDGED BY author.paper.venue TOP 3;"
    )


def raise_worker_crashed():
    # Through the process backend's wire-form rebuild: a worker death report
    # crossing the process boundary comes back as the typed error.  (The
    # end-to-end kill-a-live-worker path is covered in
    # tests/service/test_process_backend.py.)
    from repro.service.backends import _rebuild_error

    raise _rebuild_error(
        "WorkerCrashedError", "worker process died twice", {}
    )


def raise_replica_unavailable():
    # Through the router's single-attempt seam against an injected
    # connection refusal.  (The end-to-end failover path — this error
    # feeding the breaker and the next ring candidate answering — is
    # covered in tests/service/test_router.py.)
    from repro import faultinject
    from repro.service import Router

    router = Router(["replica-0"])
    router.set_replica_address("replica-0", "127.0.0.1", 1)
    rule = faultinject.FaultRule(
        point="router.connect", error=ConnectionRefusedError
    )
    with faultinject.inject(rule):
        router._attempt(
            router.replicas["replica-0"], "GET", "/healthz", None, None
        )


def raise_no_replicas_available():
    # A router whose only replica has never reported an address: every
    # candidate is unusable, so routing fails fast with the typed 503.
    from repro.service import Router

    router = Router(["replica-0"])
    router.route_query(
        b'{"query": "FIND OUTLIERS FROM author{\\"Zoe\\"}.paper.author '
        b'JUDGED BY author.paper.venue TOP 3;"}'
    )


def raise_unsupported_schema():
    # Through the zoo contract boundary: a detector fitted on the security
    # network is asked to score a bibliographic scenario, whose feature
    # meta-path the security schema cannot validate.
    from repro.datagen.security import SecurityNetworkGenerator
    from repro.metapath.metapath import MetaPath
    from repro.zoo import ZooQuery, make_detector

    network = SecurityNetworkGenerator(
        num_users=3, num_hosts=4, logins_per_user=2, alerts_per_host=1, seed=0
    ).generate().network
    detector = make_detector("lof").fit(network)
    query = ZooQuery(
        member_type="author",
        candidate_indices=(0,),
        candidate_names=("Ann",),
        feature_path=MetaPath.parse("author.paper.venue"),
        candidates_expr="author",
    )
    detector.decision_scores(query)


RAISERS = {
    SchemaError: raise_schema_error,
    NetworkError: raise_network_error,
    VertexNotFoundError: raise_vertex_not_found,
    MetaPathError: raise_metapath_error,
    QuerySyntaxError: raise_query_syntax_error,
    QuerySemanticError: raise_query_semantic_error,
    ExecutionError: raise_execution_error,
    MeasureError: raise_measure_error,
    UnsupportedSchemaError: raise_unsupported_schema,
    DeadlineExceededError: raise_deadline_exceeded,
    ResourceLimitError: raise_resource_limit,
    CircuitOpenError: raise_circuit_open,
    TransientFaultError: raise_transient_fault,
    ServiceOverloadedError: raise_service_overloaded,
    ServiceClosedError: raise_service_closed,
    WorkerCrashedError: raise_worker_crashed,
    ReplicaUnavailableError: raise_replica_unavailable,
    NoReplicasAvailableError: raise_no_replicas_available,
}


class TestHierarchyCoverage:
    def test_every_public_exception_has_a_raiser(self):
        """The table above stays in sync with ``repro.exceptions.__all__``.

        ``ReproError``, ``QueryError`` and ``ServiceError`` are abstract
        groupings (their subclasses are raised instead);
        ``DegradedResultWarning`` is a warning, covered separately.
        """
        covered = {cls.__name__ for cls in RAISERS}
        covered |= {
            "ReproError",
            "QueryError",
            "ServiceError",
            "DegradedResultWarning",
        }
        assert covered == set(exceptions_module.__all__)

    @pytest.mark.parametrize(
        "exc_class", list(RAISERS), ids=lambda cls: cls.__name__
    )
    def test_raised_by_real_code_path(self, exc_class):
        with pytest.raises(exc_class):
            RAISERS[exc_class]()

    @pytest.mark.parametrize(
        "exc_class", list(RAISERS), ids=lambda cls: cls.__name__
    )
    def test_catchable_as_repro_error(self, exc_class):
        with pytest.raises(ReproError):
            RAISERS[exc_class]()

    def test_query_errors_share_the_query_base(self):
        for raiser in (raise_query_syntax_error, raise_query_semantic_error):
            with pytest.raises(QueryError):
                raiser()

    def test_service_errors_share_the_service_base(self):
        """Service failures are operational, not executional: they subclass
        ``ServiceError`` directly under ``ReproError``, so engine-level
        ``except ExecutionError`` handlers do not swallow overload sheds."""
        for cls in (
            ServiceOverloadedError,
            ServiceClosedError,
            ReplicaUnavailableError,
            NoReplicasAvailableError,
        ):
            assert issubclass(cls, ServiceError)
            assert not issubclass(cls, ExecutionError)
            with pytest.raises(ServiceError):
                RAISERS[cls]()

    def test_overload_error_carries_retry_hint(self):
        with pytest.raises(ServiceOverloadedError) as excinfo:
            raise_service_overloaded()
        assert excinfo.value.retry_after_seconds > 0
        assert excinfo.value.capacity == 1
        assert excinfo.value.queued == 1

    def test_resilience_errors_are_execution_errors(self):
        """The resilience subtree hangs off ExecutionError, so pre-existing
        ``except ExecutionError`` call sites keep catching everything."""
        for cls in (
            DeadlineExceededError,
            ResourceLimitError,
            CircuitOpenError,
            TransientFaultError,
        ):
            assert issubclass(cls, ExecutionError)
            with pytest.raises(ExecutionError):
                RAISERS[cls]()

    def test_degraded_result_warning_is_a_warning_not_an_error(self):
        assert issubclass(DegradedResultWarning, UserWarning)
        assert not issubclass(DegradedResultWarning, ReproError)
        with pytest.warns(DegradedResultWarning):
            import warnings

            warnings.warn(DegradedResultWarning("served from the baseline rung"))


class TestErrorPayloads:
    def test_query_syntax_error_carries_position(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            raise_query_syntax_error()
        assert excinfo.value.position is not None

    def test_deadline_error_carries_budget_and_elapsed(self):
        with pytest.raises(DeadlineExceededError) as excinfo:
            raise_deadline_exceeded()
        assert excinfo.value.budget_seconds == 1.0
        assert excinfo.value.elapsed_seconds > 1.0

    def test_resource_limit_error_carries_sizes(self):
        with pytest.raises(ResourceLimitError) as excinfo:
            raise_resource_limit()
        assert excinfo.value.estimated_bytes == 10**9
        assert excinfo.value.limit_bytes == 1

    def test_unsupported_schema_error_carries_context(self):
        """The zoo's schema rejection names the detector and the mismatch,
        and stays catchable as ``MeasureError`` (scoring-layer failures)."""
        with pytest.raises(UnsupportedSchemaError) as excinfo:
            raise_unsupported_schema()
        assert excinfo.value.detector == "lof"
        assert excinfo.value.schema_detail
        assert isinstance(excinfo.value, MeasureError)


class TestVertexNotFoundDuality:
    """``VertexNotFoundError`` is both a ``NetworkError`` and a ``KeyError``
    (mapping-style lookups), without KeyError's repr-quoting of messages."""

    def _caught(self):
        with pytest.raises(VertexNotFoundError) as excinfo:
            raise_vertex_not_found()
        return excinfo.value

    def test_is_a_key_error(self):
        error = self._caught()
        assert isinstance(error, KeyError)
        assert isinstance(error, NetworkError)
        assert isinstance(error, ReproError)

    def test_catchable_as_key_error(self):
        with pytest.raises(KeyError):
            raise_vertex_not_found()

    def test_str_is_the_message_not_a_repr(self):
        """Plain KeyError str()s to the repr of its argument (quoted);
        VertexNotFoundError overrides that to return the message itself."""
        error = self._caught()
        assert str(error) == error.message
        assert not str(error).startswith(("'", '"'))
        assert "Nobody" in str(error)

    def test_unknown_type_and_unknown_name_both_raise(self):
        network = HeterogeneousInformationNetwork(bibliographic_schema())
        with pytest.raises(VertexNotFoundError, match="is not in the schema"):
            network.find_vertex("ghost_type", "anything")
        with pytest.raises(VertexNotFoundError, match="no author vertex named"):
            network.find_vertex("author", "Nobody")
