"""Tests for :mod:`repro.cli`."""

import io

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def corpus_path(tmp_path_factory):
    """A small generated corpus on disk, shared across CLI tests."""
    path = tmp_path_factory.mktemp("cli") / "corpus.json"
    out = io.StringIO()
    code = main(
        ["generate", "--preset", "ego", "--seed", "1", "--out", str(path)],
        out=out,
    )
    assert code == 0
    return str(path)


QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.venue TOP 5;"
)


def run(argv, stdin_text=""):
    out = io.StringIO()
    code = main(argv, out=out, stdin=io.StringIO(stdin_text))
    return code, out.getvalue()


class TestGenerate:
    @pytest.mark.parametrize("preset", ["bibliographic", "ego", "security"])
    def test_presets(self, tmp_path, preset):
        path = tmp_path / f"{preset}.json"
        code, output = run(
            ["generate", "--preset", preset, "--seed", "0", "--out", str(path)]
        )
        assert code == 0
        assert path.exists()
        assert "wrote" in output


class TestQuery:
    def test_query_prints_ranking(self, corpus_path):
        code, output = run(["query", "--network", corpus_path, QUERY])
        assert code == 0
        assert "Rank" in output
        assert "CrossField" in output

    def test_strategy_and_measure_flags(self, corpus_path):
        code, output = run(
            [
                "query",
                "--network", corpus_path,
                "--strategy", "baseline",
                "--measure", "pathsim",
                QUERY,
            ]
        )
        assert code == 0
        assert "Student" in output

    def test_distribution_flag(self, corpus_path):
        code, output = run(
            ["query", "--network", corpus_path, "--distribution", QUERY]
        )
        assert code == 0
        assert "Ω distribution" in output

    def test_stats_flag(self, corpus_path):
        code, output = run(["query", "--network", corpus_path, "--stats", QUERY])
        assert code == 0
        assert "wall time" in output
        assert "outlierness_calculation" in output

    def test_missing_network_file(self):
        code, output = run(["query", "--network", "/nope.json", QUERY])
        assert code == 1
        assert "not found" in output

    def test_bad_query_reports_error(self, corpus_path):
        code, output = run(["query", "--network", corpus_path, "FIND nonsense"])
        assert code == 1
        assert "error" in output


class TestExplainSuggestSchema:
    def test_explain(self, corpus_path):
        code, output = run(["explain", "--network", corpus_path, QUERY])
        assert code == 0
        assert "strategy        : pm" in output
        assert "author.paper.venue" in output

    def test_suggest(self, corpus_path):
        code, output = run(
            ["suggest", "--network", corpus_path, "--max-suggestions", "2", QUERY]
        )
        assert code == 0
        assert "interestingness" in output

    def test_schema(self, corpus_path):
        code, output = run(["schema", "--network", corpus_path])
        assert code == 0
        assert "author" in output
        assert "paper -- venue" in output or "venue -- paper" in output

    def test_stats(self, corpus_path):
        code, output = run(["stats", "--network", corpus_path])
        assert code == 0
        assert "vertex types:" in output
        assert "gini" in output
        assert "author" in output


class TestShell:
    def test_query_and_quit(self, corpus_path):
        script = QUERY + "\n.quit\n"
        code, output = run(["shell", "--network", corpus_path], script)
        assert code == 0
        assert "Rank" in output

    def test_multiline_query(self, corpus_path):
        script = (
            'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author\n'
            "JUDGED BY author.paper.venue\n"
            "TOP 3;\n"
            ".quit\n"
        )
        code, output = run(["shell", "--network", corpus_path], script)
        assert code == 0
        assert "Rank" in output

    def test_dot_commands(self, corpus_path):
        script = (
            ".help\n"
            ".schema\n"
            ".strategy baseline\n"
            ".measure cossim\n"
            ".unknown\n"
            ".quit\n"
        )
        code, output = run(["shell", "--network", corpus_path], script)
        assert code == 0
        assert "dot-command" in output
        assert "strategy = baseline" in output
        assert "measure = cossim" in output
        assert "unknown command" in output

    def test_explain_and_suggest_commands(self, corpus_path):
        script = f".explain {QUERY}\n.suggest {QUERY}\n.quit\n"
        code, output = run(["shell", "--network", corpus_path], script)
        assert code == 0
        assert "candidate set" in output
        assert "interestingness" in output

    def test_error_recovery(self, corpus_path):
        script = "FIND gibberish;\n" + QUERY + "\n.quit\n"
        code, output = run(["shell", "--network", corpus_path], script)
        assert code == 0
        assert "error:" in output
        assert "Rank" in output

    def test_eof_terminates(self, corpus_path):
        code, __ = run(["shell", "--network", corpus_path], "")
        assert code == 0


class TestServe:
    def test_serve_answers_http_and_stops_at_limit(self, corpus_path):
        import http.client
        import json
        import re
        import threading
        import time

        out = io.StringIO()
        outcome = {}

        def run_server():
            outcome["code"] = main(
                [
                    "serve",
                    "--network", corpus_path,
                    "--port", "0",
                    "--workers", "2",
                    "--max-requests", "3",
                ],
                out=out,
            )

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        # The banner line (flushed before serve_forever) carries the
        # ephemeral port.
        deadline = time.monotonic() + 30.0
        match = None
        while match is None and time.monotonic() < deadline:
            match = re.search(r"http://([\d.]+):(\d+)", out.getvalue())
            if match is None:
                time.sleep(0.05)
        assert match is not None, f"no serving banner in: {out.getvalue()!r}"
        host, port = match.group(1), int(match.group(2))

        def post_query():
            connection = http.client.HTTPConnection(host, port, timeout=30.0)
            try:
                connection.request(
                    "POST",
                    "/query",
                    body=json.dumps({"query": QUERY}).encode("utf-8"),
                )
                response = connection.getresponse()
                return response.status, json.loads(response.read())
            finally:
                connection.close()

        status, first = post_query()
        assert status == 200
        assert first["cached"] is False
        assert len(first["result"]["outliers"]) == 5
        status, second = post_query()
        assert status == 200
        assert second["cached"] is True
        status, payload = post_query()  # third request hits --max-requests
        assert status == 200

        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert outcome["code"] == 0
        assert "served 3 requests; shut down cleanly" in out.getvalue()


class TestZoo:
    def test_quick_grid_with_report(self, tmp_path):
        import json

        report_path = tmp_path / "zoo.json"
        code, output = run(
            [
                "zoo",
                "--quick",
                "--scenario",
                "fraud-ring",
                "--detector",
                "ppr",
                "--detector",
                "knn",
                "--out",
                str(report_path),
            ]
        )
        assert code == 0
        assert "fraud-ring" in output
        assert "ppr" in output and "knn" in output
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["detectors"] == ["ppr", "knn"]
        assert len(report["results"]) == 2

    def test_seeds_and_k_knobs(self):
        code, output = run(
            [
                "zoo",
                "--quick",
                "--scenario",
                "compromised-host",
                "--detector",
                "knn",
                "--seeds",
                "0,1",
                "--k",
                "2",
            ]
        )
        assert code == 0
        # One row per seed.
        assert output.count("compromised-host") == 2

    def test_list_scenarios_and_detectors(self):
        code, output = run(["zoo", "--scenario", "list"])
        assert code == 0
        assert "attribute-outlier" in output
        code, output = run(["zoo", "--detector", "list"])
        assert code == 0
        assert "netout" in output

    def test_unknown_names_fail_cleanly(self):
        code, output = run(["zoo", "--quick", "--scenario", "nope"])
        assert code == 1
        assert "unknown scenario" in output
        code, output = run(["zoo", "--quick", "--detector", "nope"])
        assert code == 1
        assert "unknown detector" in output

    def test_bad_seeds_fail_cleanly(self):
        code, output = run(["zoo", "--quick", "--seeds", "one,two"])
        assert code == 1
        assert "comma-separated integers" in output

    def test_smoke_env_forces_quick(self, monkeypatch, tmp_path):
        import json

        report_path = tmp_path / "zoo_smoke.json"
        monkeypatch.setenv("BENCH_SMOKE", "1")
        code, output = run(
            [
                "zoo",
                "--scenario",
                "fraud-ring",
                "--detector",
                "knn",
                "--out",
                str(report_path),
            ]
        )
        assert code == 0
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["quick"] is True
