"""Tests for :mod:`repro.datagen.synthetic`."""

import numpy as np
import pytest

from repro.datagen.synthetic import (
    BibliographicNetworkGenerator,
    EgoNetworkSpec,
    GeneratorConfig,
    hub_ego_corpus,
    structural_outlier_corpus,
)


class TestGeneratorConfig:
    def test_defaults_valid(self):
        GeneratorConfig()

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            GeneratorConfig(missing_venue_prob=1.5)

    def test_invalid_terms_range(self):
        with pytest.raises(ValueError):
            GeneratorConfig(terms_per_paper=(5, 2))

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            GeneratorConfig(num_communities=0)


class TestBibliographicNetworkGenerator:
    @pytest.fixture(scope="class")
    def small_config(self):
        return GeneratorConfig(
            num_communities=2,
            authors_per_community=30,
            venues_per_community=4,
            terms_per_community=20,
            common_terms=5,
            papers_per_community=80,
        )

    def test_deterministic_given_seed(self, small_config):
        first = BibliographicNetworkGenerator(small_config, seed=9).generate_publications()
        second = BibliographicNetworkGenerator(small_config, seed=9).generate_publications()
        assert first == second

    def test_different_seeds_differ(self, small_config):
        first = BibliographicNetworkGenerator(small_config, seed=1).generate_publications()
        second = BibliographicNetworkGenerator(small_config, seed=2).generate_publications()
        assert first != second

    def test_paper_count(self, small_config):
        publications = BibliographicNetworkGenerator(
            small_config, seed=0
        ).generate_publications()
        assert len(publications) == 160

    def test_network_schema_population(self, small_config):
        generator = BibliographicNetworkGenerator(small_config, seed=0)
        network = generator.build_network()
        assert network.num_vertices("paper") == 160
        assert 0 < network.num_vertices("author") <= 61  # 2x30 + NULL
        assert network.num_vertices("venue") <= 9  # 2x4 + NULL

    def test_author_productivity_skewed(self, small_config):
        """Zipf selection concentrates papers on low-rank authors."""
        generator = BibliographicNetworkGenerator(small_config, seed=3)
        network = generator.build_network()
        top = generator.author_name(0, 0)
        bottom = generator.author_name(0, 29)
        top_degree = (
            network.degree(network.find_vertex("author", top), "paper")
            if network.has_vertex("author", top)
            else 0
        )
        bottom_degree = (
            network.degree(network.find_vertex("author", bottom), "paper")
            if network.has_vertex("author", bottom)
            else 0
        )
        assert top_degree > bottom_degree

    def test_missing_data_markers_appear(self):
        config = GeneratorConfig(
            num_communities=1,
            authors_per_community=20,
            papers_per_community=2000,
            missing_venue_prob=0.05,
            missing_author_prob=0.05,
        )
        network = BibliographicNetworkGenerator(config, seed=0).build_network()
        assert network.has_vertex("venue", "NULL")
        assert network.has_vertex("author", "NULL")

    def test_communities_mostly_disjoint_venues(self, small_config):
        """Cross-community venue edges are rare by construction."""
        generator = BibliographicNetworkGenerator(small_config, seed=5)
        publications = generator.generate_publications()
        cross = 0
        total = 0
        for position, publication in enumerate(publications):
            community = 0 if position < 80 else 1
            if publication.venue is None or publication.venue == "NULL":
                continue
            total += 1
            if not publication.venue.startswith(f"C{community}-"):
                cross += 1
        assert cross / total < 0.10


class TestHubEgoCorpus:
    def test_groups_disjoint_and_present(self, ego_corpus):
        assert ego_corpus.hub == "Prof. Hub"
        groups = [
            set(ego_corpus.normal_coauthors),
            set(ego_corpus.cross_field),
            set(ego_corpus.students),
        ]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not groups[i] & groups[j]
        assert len(ego_corpus.cross_field) == 5
        assert len(ego_corpus.students) == 5

    def test_all_group_members_are_hub_coauthors(self, ego_corpus):
        from repro.metapath.counting import neighborhood
        from repro.metapath.metapath import MetaPath

        network = ego_corpus.network
        hub = network.find_vertex("author", ego_corpus.hub)
        coauthors = {
            network.vertex_name(v)
            for v in neighborhood(network, MetaPath.parse("author.paper.author"), hub)
        }
        for name in (
            ego_corpus.normal_coauthors + ego_corpus.cross_field + ego_corpus.students
        ):
            assert name in coauthors

    def test_students_have_exactly_one_paper(self, ego_corpus):
        network = ego_corpus.network
        for name in ego_corpus.students:
            author = network.find_vertex("author", name)
            assert network.degree(author, "paper") == 1.0

    def test_cross_field_authors_are_established(self, ego_corpus):
        network = ego_corpus.network
        for name in ego_corpus.cross_field:
            author = network.find_vertex("author", name)
            assert network.degree(author, "paper") >= 40

    def test_deterministic(self):
        first = hub_ego_corpus(spec=EgoNetworkSpec(seed=3))
        second = hub_ego_corpus(spec=EgoNetworkSpec(seed=3))
        assert first.publications == second.publications

    def test_requires_two_communities(self):
        with pytest.raises(ValueError, match="two communities"):
            hub_ego_corpus(config=GeneratorConfig(num_communities=1))


class TestStructuralOutlierCorpus:
    CONFIG = GeneratorConfig(
        num_communities=3,
        authors_per_community=20,
        venues_per_community=3,
        terms_per_community=10,
        common_terms=5,
        papers_per_community=60,
        missing_venue_prob=0.0,
        missing_author_prob=0.0,
    )

    @pytest.fixture(scope="class")
    def corpus(self):
        return structural_outlier_corpus(
            self.CONFIG, num_outliers=2, papers_per_outlier=25, seed=0
        )

    def test_labels_match_planted_authors(self, corpus):
        """The label set is exactly the authors of the planted (S-keyed)
        records — the generator reports precisely what it perturbed."""
        network = corpus.network
        assert corpus.outlier_authors == ["Structural-1", "Structural-2"]
        authors_of_planted_records = {
            author
            for publication in corpus.publications
            if publication.key.startswith("S")
            for author in publication.authors
        }
        assert authors_of_planted_records == set(corpus.outlier_authors)
        # Planted accounts publish nothing outside the planted records:
        # their degree is exactly the planting size.
        for name in corpus.outlier_authors:
            author = network.find_vertex("author", name)
            assert network.degree(author, "paper") == 25.0

    def test_planted_papers_are_single_author(self, corpus):
        planted = set(corpus.outlier_authors)
        for publication in corpus.publications:
            if set(publication.authors) & planted:
                assert len(publication.authors) == 1

    def test_planted_authors_span_every_community(self, corpus):
        """The venue spread is the structural anomaly: each planted author
        publishes in all communities' venues."""
        from repro.metapath.counting import neighbor_counts
        from repro.metapath.metapath import MetaPath

        network = corpus.network
        path = MetaPath.parse("author.paper.venue")
        venue_names = network.vertex_names("venue")
        for name in corpus.outlier_authors:
            author = network.find_vertex("author", name)
            counts = neighbor_counts(network, path, author)
            communities = {venue_names[i].split("-")[0] for i in counts}
            assert communities == {"C0", "C1", "C2"}

    @pytest.mark.parametrize("seed", [0, 11])
    @pytest.mark.parametrize("num_outliers", [1, 3])
    def test_sizes_and_seeds(self, seed, num_outliers):
        corpus = structural_outlier_corpus(
            self.CONFIG,
            num_outliers=num_outliers,
            papers_per_outlier=12,
            seed=seed,
        )
        assert len(corpus.outlier_authors) == num_outliers
        for name in corpus.outlier_authors:
            assert corpus.network.has_vertex("author", name)

    def test_deterministic(self):
        first = structural_outlier_corpus(self.CONFIG, seed=5)
        second = structural_outlier_corpus(self.CONFIG, seed=5)
        assert first.publications == second.publications

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            structural_outlier_corpus(self.CONFIG, num_outliers=0)
        with pytest.raises(ValueError):
            structural_outlier_corpus(self.CONFIG, papers_per_outlier=0)
