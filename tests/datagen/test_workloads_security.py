"""Tests for :mod:`repro.datagen.workloads` and :mod:`repro.datagen.security`."""

import pytest

from repro.datagen.security import SecurityNetworkGenerator, security_schema
from repro.datagen.workloads import generate_query_set, random_author_anchors
from repro.query.parser import parse_query
from repro.query.templates import TEMPLATE_Q1, TEMPLATE_Q2


class TestWorkloads:
    def test_anchor_names_exist(self, small_corpus):
        anchors = random_author_anchors(small_corpus, 10, seed=0)
        assert len(anchors) == 10
        for name in anchors:
            assert small_corpus.has_vertex("author", name)

    def test_sampling_without_replacement(self, small_corpus):
        count = small_corpus.num_vertices("author")
        anchors = random_author_anchors(small_corpus, count, seed=0)
        assert len(set(anchors)) == count

    def test_oversampling_falls_back_to_replacement(self, figure1):
        anchors = random_author_anchors(figure1, 10, seed=0)
        assert len(anchors) == 10

    def test_deterministic_given_seed(self, small_corpus):
        first = random_author_anchors(small_corpus, 5, seed=7)
        second = random_author_anchors(small_corpus, 5, seed=7)
        assert first == second

    def test_empty_type_rejected(self):
        from repro.hin import HeterogeneousInformationNetwork, bibliographic_schema

        empty = HeterogeneousInformationNetwork(bibliographic_schema())
        with pytest.raises(ValueError, match="no vertices"):
            random_author_anchors(empty, 3)

    def test_generated_queries_parse(self, small_corpus):
        queries = generate_query_set(small_corpus, TEMPLATE_Q1, 8, seed=1)
        assert len(queries) == 8
        for text in queries:
            parse_query(text)

    def test_templates_share_anchor_stream(self, small_corpus):
        q1 = generate_query_set(small_corpus, TEMPLATE_Q1, 5, seed=2)
        q2 = generate_query_set(small_corpus, TEMPLATE_Q2, 5, seed=2)
        anchors1 = [parse_query(t).candidates.anchor for t in q1]
        anchors2 = [parse_query(t).candidates.anchor for t in q2]
        assert anchors1 == anchors2


class TestSecurityNetwork:
    def test_schema(self):
        schema = security_schema()
        assert schema.has_edge_type("user", "host")
        assert schema.has_edge_type("alert", "category")
        assert not schema.has_edge_type("user", "alert")

    @pytest.fixture(scope="class")
    def corpus(self):
        return SecurityNetworkGenerator(seed=0).generate()

    def test_population(self, corpus):
        network = corpus.network
        assert network.num_vertices("user") == 60
        assert network.num_vertices("host") == 80
        assert network.num_vertices("alert") > 0
        assert len(corpus.compromised_hosts) == 2

    def test_compromised_hosts_have_attack_categories(self, corpus):
        from repro.metapath.counting import neighbor_counts
        from repro.metapath.metapath import MetaPath

        network = corpus.network
        path = MetaPath.parse("host.alert.category")
        category_names = network.vertex_names("category")
        for host_name in corpus.compromised_hosts:
            host = network.find_vertex("host", host_name)
            counts = neighbor_counts(network, path, host)
            categories = {category_names[i] for i in counts}
            assert "lateral-movement" in categories or "c2-beacon" in categories or \
                "data-exfiltration" in categories or "privilege-escalation" in categories

    def test_detection_query_surfaces_compromise(self, corpus):
        """NetOut on host.alert.category must rank a planted host first."""
        from repro.engine.detector import OutlierDetector

        detector = OutlierDetector(corpus.network, strategy="pm")
        result = detector.detect(
            "FIND OUTLIERS FROM host "
            "JUDGED BY host.alert.category "
            "TOP 2;"
        )
        assert set(result.names()) & set(corpus.compromised_hosts)

    def test_deterministic(self):
        first = SecurityNetworkGenerator(seed=4).generate()
        second = SecurityNetworkGenerator(seed=4).generate()
        assert first.compromised_hosts == second.compromised_hosts

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SecurityNetworkGenerator(num_hosts=1)
        with pytest.raises(ValueError):
            SecurityNetworkGenerator(num_compromised=999)
        with pytest.raises(ValueError):
            SecurityNetworkGenerator(num_fraud_users=-1)
        with pytest.raises(ValueError):
            SecurityNetworkGenerator(num_fraud_users=2, ring_size=999)

    def test_no_ring_by_default(self, corpus):
        assert corpus.fraud_users == []
        assert corpus.ring_hosts == []
        assert not any(
            name.startswith("fraud-user")
            for name in corpus.network.vertex_names("user")
        )

    def test_ring_does_not_perturb_base_generation(self, corpus):
        """Planting a ring appends vertices/edges without reshuffling the
        shared RNG stream: the base population is byte-identical."""
        with_ring = SecurityNetworkGenerator(seed=0, num_fraud_users=3).generate()
        assert with_ring.compromised_hosts == corpus.compromised_hosts
        base_users = corpus.network.vertex_names("user")
        assert with_ring.network.vertex_names("user")[: len(base_users)] == base_users


class TestPlantedGroundTruth:
    """The labels a generator reports are exactly the vertices it perturbed,
    across sizes and seeds — the property every zoo scenario leans on."""

    SIZES = [
        dict(num_users=10, num_hosts=12, logins_per_user=6, alerts_per_host=3),
        dict(num_users=30, num_hosts=40, logins_per_user=15, alerts_per_host=8),
    ]

    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_compromised_labels_match_perturbed_hosts(self, size, seed):
        """A host has attack-category alerts iff it is labeled compromised."""
        from repro.metapath.counting import neighbor_counts
        from repro.metapath.metapath import MetaPath

        corpus = SecurityNetworkGenerator(
            num_compromised=2, seed=seed, **size
        ).generate()
        network = corpus.network
        path = MetaPath.parse("host.alert.category")
        category_names = network.vertex_names("category")
        attack = {
            "lateral-movement",
            "data-exfiltration",
            "privilege-escalation",
            "c2-beacon",
        }
        hosts_with_attack_alerts = set()
        for host_name in network.vertex_names("host"):
            host = network.find_vertex("host", host_name)
            counts = neighbor_counts(network, path, host)
            if {category_names[i] for i in counts} & attack:
                hosts_with_attack_alerts.add(host_name)
        assert hosts_with_attack_alerts == set(corpus.compromised_hosts)
        assert len(corpus.compromised_hosts) == 2

    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_fraud_labels_match_ring_confinement(self, size, seed):
        """A user logs in *only* on ring hosts iff it is a labeled fraud
        user (normal users roam: 10% of their logins leave their pool)."""
        from repro.metapath.counting import neighbor_counts
        from repro.metapath.metapath import MetaPath

        corpus = SecurityNetworkGenerator(
            num_compromised=0, num_fraud_users=3, ring_size=3, seed=seed, **size
        ).generate()
        network = corpus.network
        ring = set(corpus.ring_hosts)
        assert len(ring) == 3
        path = MetaPath.parse("user.host")
        host_names = network.vertex_names("host")
        confined = set()
        for user_name in network.vertex_names("user"):
            user = network.find_vertex("user", user_name)
            counts = neighbor_counts(network, path, user)
            touched = {host_names[i] for i in counts}
            if touched and touched <= ring:
                confined.add(user_name)
        assert confined == set(corpus.fraud_users)
        assert len(corpus.fraud_users) == 3

    @pytest.mark.parametrize("seed", [0, 5])
    def test_both_archetypes_coexist_with_disjoint_labels(self, seed):
        corpus = SecurityNetworkGenerator(
            num_users=20,
            num_hosts=25,
            logins_per_user=10,
            alerts_per_host=4,
            num_compromised=2,
            num_fraud_users=3,
            seed=seed,
        ).generate()
        assert len(corpus.compromised_hosts) == 2
        assert len(corpus.fraud_users) == 3
        # The ring avoids compromised hosts, keeping labels independent.
        assert not set(corpus.ring_hosts) & set(corpus.compromised_hosts)

    def test_fraud_ring_deterministic(self):
        first = SecurityNetworkGenerator(seed=9, num_fraud_users=4).generate()
        second = SecurityNetworkGenerator(seed=9, num_fraud_users=4).generate()
        assert first.fraud_users == second.fraud_users
        assert first.ring_hosts == second.ring_hosts
        assert first.network.num_edges() == second.network.num_edges()
