"""Tests for :mod:`repro.datagen.fixtures` — consistency with the paper."""

import pytest

from repro.datagen.fixtures import (
    TABLE1_CANDIDATES,
    TABLE1_REFERENCE_SIZE,
    figure1_network,
    figure2_network,
    table1_network,
)
from repro.metapath.counting import neighbor_counts
from repro.metapath.metapath import MetaPath

PV = MetaPath.parse("author.paper.venue")
PCA = MetaPath.parse("author.paper.author")


class TestFigure1:
    def test_vertex_population(self, figure1):
        assert figure1.num_vertices("author") == 3
        assert figure1.num_vertices("paper") == 5
        assert figure1.num_vertices("venue") == 2

    def test_quoted_quantities_from_section3(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        venue_counts = neighbor_counts(figure1, PV, zoe)
        by_name = {
            figure1.vertex_names("venue")[i]: c for i, c in venue_counts.items()
        }
        assert by_name == {"ICDE": 2.0, "KDD": 3.0}


class TestFigure2:
    def test_jim_mary_venue_profiles(self, figure2):
        jim = figure2.find_vertex("author", "Jim")
        mary = figure2.find_vertex("author", "Mary")
        venue_names = figure2.vertex_names("venue")
        jim_counts = {
            venue_names[i]: c for i, c in neighbor_counts(figure2, PV, jim).items()
        }
        mary_counts = {
            venue_names[i]: c for i, c in neighbor_counts(figure2, PV, mary).items()
        }
        assert jim_counts == {"V1": 4.0, "V2": 2.0, "V3": 6.0}
        assert mary_counts == {"V1": 2.0, "V2": 1.0, "V3": 3.0}

    def test_connectivity_28(self, figure2):
        """2·4 + 1·2 + 3·6 = 28 path instances of (APVPA)."""
        jim = figure2.find_vertex("author", "Jim")
        sym = PV.symmetric()
        counts = neighbor_counts(figure2, sym, jim)
        mary = figure2.find_vertex("author", "Mary")
        assert counts[mary.index] == 28.0


class TestTable1:
    def test_population(self):
        network, candidates, reference = table1_network()
        assert candidates == list(TABLE1_CANDIDATES)
        assert len(reference) == TABLE1_REFERENCE_SIZE
        assert network.num_vertices("author") == 105
        assert set(network.vertex_names("venue")) == {
            "VLDB",
            "KDD",
            "STOC",
            "SIGGRAPH",
        }

    def test_reference_records_identical(self):
        network, __, reference = table1_network()
        venue_names = network.vertex_names("venue")
        profiles = set()
        for name in reference:
            author = network.find_vertex("author", name)
            counts = neighbor_counts(network, PV, author)
            profiles.add(tuple(sorted((venue_names[i], c) for i, c in counts.items())))
        assert len(profiles) == 1
        (profile,) = profiles
        assert dict(profile) == {"VLDB": 10.0, "KDD": 10.0, "STOC": 1.0, "SIGGRAPH": 1.0}

    @pytest.mark.parametrize(
        "name, expected",
        [
            ("Sarah", {"VLDB": 10.0, "KDD": 10.0, "STOC": 1.0, "SIGGRAPH": 1.0}),
            ("Rob", {"KDD": 1.0, "STOC": 20.0, "SIGGRAPH": 20.0}),
            ("Lucy", {"KDD": 5.0, "STOC": 10.0, "SIGGRAPH": 10.0}),
            ("Joe", {"SIGGRAPH": 2.0}),
            ("Emma", {"SIGGRAPH": 30.0}),
        ],
    )
    def test_candidate_records(self, name, expected):
        network, __, __ = table1_network()
        venue_names = network.vertex_names("venue")
        author = network.find_vertex("author", name)
        counts = neighbor_counts(network, PV, author)
        assert {venue_names[i]: c for i, c in counts.items()} == expected

    def test_every_paper_has_one_author(self):
        network, __, __ = table1_network()
        adjacency = network.adjacency("paper", "author")
        assert (adjacency.sum(axis=1) == 1).all()
