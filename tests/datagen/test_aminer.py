"""Tests for :mod:`repro.datagen.aminer` (the paper's dataset format)."""

import pytest

from repro.datagen.aminer import load_aminer, parse_aminer
from repro.exceptions import NetworkError

SAMPLE = """\
#index 1083734
#* Mining frequent patterns
#@ Author One; Author Two
#t 2009
#c SIGMOD Conference
#! An abstract that should be ignored.

#index 1083735
#* Outlier detection in networks
#@ Author Two
#t 2011
#c KDD

#index 1083736
#* A venue-less tech report
#@ Author Three
#t 2012

#index 1083737
#* An orphan paper with no authors
#t 2013
#c VLDB
"""


class TestParseAminer:
    def test_record_count(self):
        assert len(parse_aminer(SAMPLE)) == 4

    def test_fields_parsed(self):
        first = parse_aminer(SAMPLE)[0]
        assert first.key == "1083734"
        assert first.authors == ["Author One", "Author Two"]
        assert first.venue == "SIGMOD Conference"
        assert first.year == 2009
        assert first.title == "Mining frequent patterns"

    def test_comma_separated_authors(self):
        records = parse_aminer(
            "#index 1\n#* T\n#@ A One, B Two\n#c V\n"
        )
        assert records[0].authors == ["A One", "B Two"]

    def test_missing_venue_is_none(self):
        records = parse_aminer(SAMPLE)
        assert records[2].venue is None

    def test_missing_authors_become_null(self):
        records = parse_aminer(SAMPLE)
        assert records[3].authors == ["NULL"]

    def test_limit(self):
        assert len(parse_aminer(SAMPLE, limit=2)) == 2

    def test_records_without_blank_separator(self):
        text = "#index 1\n#* A\n#@ X\n#c V1\n#index 2\n#* B\n#@ Y\n#c V2\n"
        records = parse_aminer(text)
        assert [r.key for r in records] == ["1", "2"]

    def test_missing_index_gets_synthetic_key(self):
        records = parse_aminer("#* Untracked\n#@ X\n#c V\n")
        assert records[0].key.startswith("noindex-")

    def test_non_numeric_year_ignored(self):
        records = parse_aminer("#index 1\n#* T\n#@ X\n#t unknown\n#c V\n")
        assert records[0].year is None

    def test_empty_input(self):
        assert parse_aminer("") == []


class TestLoadAminer:
    def test_builds_queryable_network(self, tmp_path):
        path = tmp_path / "aminer.txt"
        path.write_text(SAMPLE, encoding="utf-8")
        network = load_aminer(path)
        assert network.num_vertices("paper") == 4
        # Author One/Two/Three + NULL marker.
        assert network.num_vertices("author") == 4
        assert network.has_vertex("venue", "KDD")
        assert network.has_vertex("author", "NULL")

        from repro.engine.detector import OutlierDetector

        detector = OutlierDetector(network)
        result = detector.detect(
            'FIND OUTLIERS FROM author{"Author Two"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        assert len(result) >= 1

    def test_limit(self, tmp_path):
        path = tmp_path / "aminer.txt"
        path.write_text(SAMPLE, encoding="utf-8")
        network = load_aminer(path, limit=2)
        assert network.num_vertices("paper") == 2

    def test_year_attribute_supports_slicing(self, tmp_path):
        from repro.hin.subnetwork import slice_by_attribute

        path = tmp_path / "aminer.txt"
        path.write_text(SAMPLE, encoding="utf-8")
        network = load_aminer(path)
        recent = slice_by_attribute(network, "paper", "year", minimum=2011)
        assert recent.num_vertices("paper") == 3

    def test_missing_file(self):
        with pytest.raises(NetworkError, match="not found"):
            load_aminer("/nonexistent/aminer.txt")
