"""Tests for :mod:`repro.evalmetrics` and :mod:`repro.hin.stats`."""

import numpy as np
import pytest

from repro.evalmetrics import (
    average_precision,
    precision_at_k,
    rank_of,
    recall_at_k,
    reciprocal_rank,
)
from repro.exceptions import MeasureError
from repro.hin.stats import network_summary


RANKED = ["a", "b", "c", "d", "e"]


class TestPrecisionRecall:
    def test_precision_at_k(self):
        assert precision_at_k(RANKED, {"a", "c"}, 2) == 0.5
        assert precision_at_k(RANKED, {"a", "c"}, 3) == pytest.approx(2 / 3)

    def test_precision_denominator_is_k(self):
        assert precision_at_k(["a"], {"a"}, 5) == 0.2

    def test_recall_at_k(self):
        assert recall_at_k(RANKED, {"a", "e"}, 2) == 0.5
        assert recall_at_k(RANKED, {"a", "e"}, 5) == 1.0

    def test_recall_empty_relevant(self):
        assert recall_at_k(RANKED, set(), 3) == 0.0

    def test_invalid_k(self):
        with pytest.raises(MeasureError):
            precision_at_k(RANKED, {"a"}, 0)
        with pytest.raises(MeasureError):
            recall_at_k(RANKED, {"a"}, -1)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(RANKED, {"a", "b"}) == 1.0

    def test_worst_ranking(self):
        assert average_precision(RANKED, {"e"}) == pytest.approx(0.2)

    def test_mixed(self):
        # relevant at ranks 1 and 3: (1/1 + 2/3) / 2.
        assert average_precision(RANKED, {"a", "c"}) == pytest.approx(
            (1.0 + 2 / 3) / 2
        )

    def test_missing_relevant_counts_as_miss(self):
        assert average_precision(RANKED, {"a", "zz"}) == pytest.approx(0.5)

    def test_empty_relevant(self):
        assert average_precision(RANKED, set()) == 0.0


class TestReciprocalRankAndRankOf:
    def test_reciprocal_rank(self):
        assert reciprocal_rank(RANKED, {"c"}) == pytest.approx(1 / 3)
        assert reciprocal_rank(RANKED, {"zz"}) == 0.0

    def test_rank_of(self):
        assert rank_of("b", RANKED) == 2
        assert rank_of("zz", RANKED) is None


class TestNetworkSummary:
    def test_vertex_counts(self, figure1):
        summary = network_summary(figure1)
        assert summary.vertex_counts["author"] == 3
        assert summary.vertex_counts["paper"] == 5

    def test_edge_types_reported_once(self, figure1):
        summary = network_summary(figure1)
        pairs = [(s.source, s.target) for s in summary.edge_stats]
        assert len(pairs) == len({frozenset(p) for p in pairs})

    def test_edge_totals(self, figure1):
        summary = network_summary(figure1)
        total = sum(s.edges for s in summary.edge_stats)
        assert total == figure1.num_edges()

    def test_degree_statistics(self, figure2):
        summary = network_summary(figure2)
        author_paper = next(
            s
            for s in summary.edge_stats
            if {s.source, s.target} == {"author", "paper"}
        )
        # Jim has 12 papers, Mary 6.
        assert author_paper.max_degree == 12.0
        assert author_paper.mean_degree == 9.0
        assert 0 <= author_paper.degree_gini < 1

    def test_gini_zero_for_uniform(self):
        from repro.hin.stats import _gini

        assert _gini(np.array([5.0, 5.0, 5.0])) == pytest.approx(0.0)

    def test_gini_high_for_concentrated(self):
        from repro.hin.stats import _gini

        values = np.array([0.0] * 99 + [100.0])
        assert _gini(values) > 0.9

    def test_gini_empty_and_zero(self):
        from repro.hin.stats import _gini

        assert _gini(np.array([])) == 0.0
        assert _gini(np.zeros(5)) == 0.0

    def test_describe_renders(self, figure1):
        text = network_summary(figure1).describe()
        assert "vertex types:" in text
        assert "author" in text
        assert "gini" in text

    def test_synthetic_corpus_is_skewed(self, small_corpus):
        """The Zipf generator must actually produce skewed degrees."""
        summary = network_summary(small_corpus)
        author_paper = next(
            s
            for s in summary.edge_stats
            if {s.source, s.target} == {"author", "paper"}
        )
        assert author_paper.degree_gini > 0.3
