"""Tests for :mod:`repro.evalmetrics` and :mod:`repro.hin.stats`."""

import numpy as np
import pytest

from repro.evalmetrics import (
    average_precision,
    precision_at_k,
    rank_of,
    recall_at_k,
    reciprocal_rank,
    roc_auc,
)
from repro.exceptions import MeasureError
from repro.hin.stats import network_summary


RANKED = ["a", "b", "c", "d", "e"]


class TestPrecisionRecall:
    def test_precision_at_k(self):
        assert precision_at_k(RANKED, {"a", "c"}, 2) == 0.5
        assert precision_at_k(RANKED, {"a", "c"}, 3) == pytest.approx(2 / 3)

    def test_precision_denominator_is_k(self):
        assert precision_at_k(["a"], {"a"}, 5) == 0.2

    def test_recall_at_k(self):
        assert recall_at_k(RANKED, {"a", "e"}, 2) == 0.5
        assert recall_at_k(RANKED, {"a", "e"}, 5) == 1.0

    def test_recall_empty_relevant(self):
        assert recall_at_k(RANKED, set(), 3) == 0.0

    def test_invalid_k(self):
        with pytest.raises(MeasureError):
            precision_at_k(RANKED, {"a"}, 0)
        with pytest.raises(MeasureError):
            recall_at_k(RANKED, {"a"}, -1)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(RANKED, {"a", "b"}) == 1.0

    def test_worst_ranking(self):
        assert average_precision(RANKED, {"e"}) == pytest.approx(0.2)

    def test_mixed(self):
        # relevant at ranks 1 and 3: (1/1 + 2/3) / 2.
        assert average_precision(RANKED, {"a", "c"}) == pytest.approx(
            (1.0 + 2 / 3) / 2
        )

    def test_missing_relevant_counts_as_miss(self):
        assert average_precision(RANKED, {"a", "zz"}) == pytest.approx(0.5)

    def test_empty_relevant(self):
        assert average_precision(RANKED, set()) == 0.0


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc([1, 1, 0, 0], [0.9, 0.8, 0.2, 0.1]) == 1.0

    def test_perfectly_inverted(self):
        assert roc_auc([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_hand_computed_example(self):
        # Pairs (positive, negative): scores pos={0.8, 0.4}, neg={0.6, 0.2}.
        # Of the 4 pairs, pos wins 3 (0.8>0.6, 0.8>0.2, 0.4>0.2), loses 1
        # (0.4<0.6): AUC = 3/4.
        assert roc_auc([1, 0, 1, 0], [0.8, 0.6, 0.4, 0.2]) == pytest.approx(
            0.75
        )

    def test_ties_count_half(self):
        # One positive and one negative tied at 0.5: the single pair
        # contributes 1/2 under tie-averaged ranking.
        assert roc_auc([1, 0], [0.5, 0.5]) == pytest.approx(0.5)
        # Tie block among four items, one clean win above it:
        # pos at 0.9 beats both negatives; pos at 0.5 ties both → 2*(1/2).
        # AUC = (2 + 1) / 4.
        assert roc_auc(
            [1, 1, 0, 0], [0.9, 0.5, 0.5, 0.5]
        ) == pytest.approx(0.75)

    def test_all_tied_is_chance(self):
        assert roc_auc([1, 0, 1, 0], [3.0, 3.0, 3.0, 3.0]) == pytest.approx(
            0.5
        )

    def test_labels_accept_any_truthiness(self):
        # Bools, ints, and names all coerce to binary labels.
        assert roc_auc([True, False], [1.0, 0.0]) == 1.0
        assert roc_auc(["outlier", ""], [1.0, 0.0]) == 1.0

    def test_degenerate_labels_rejected(self):
        with pytest.raises(MeasureError, match="both classes"):
            roc_auc([1, 1, 1], [0.1, 0.2, 0.3])
        with pytest.raises(MeasureError, match="both classes"):
            roc_auc([0, 0, 0], [0.1, 0.2, 0.3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(MeasureError, match="equal-length"):
            roc_auc([1, 0], [0.1, 0.2, 0.3])

    def test_non_finite_scores_rejected(self):
        with pytest.raises(MeasureError, match="finite"):
            roc_auc([1, 0], [np.nan, 0.2])
        with pytest.raises(MeasureError, match="finite"):
            roc_auc([1, 0], [np.inf, 0.2])

    def test_empty_rejected(self):
        with pytest.raises(MeasureError):
            roc_auc([], [])

    def test_rank_identity_against_pair_counting(self):
        """The Mann-Whitney formula equals brute-force pair counting."""
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = int(rng.integers(4, 30))
            labels = rng.integers(0, 2, size=n)
            if labels.min() == labels.max():
                labels[0] = 1 - labels[0]
            # Coarse grid to force plenty of ties.
            scores = rng.integers(0, 5, size=n).astype(float)
            positives = scores[labels == 1]
            negatives = scores[labels == 0]
            wins = sum(
                1.0 if p > q else 0.5 if p == q else 0.0
                for p in positives
                for q in negatives
            )
            expected = wins / (len(positives) * len(negatives))
            assert roc_auc(labels, scores) == pytest.approx(expected)


class TestReciprocalRankAndRankOf:
    def test_reciprocal_rank(self):
        assert reciprocal_rank(RANKED, {"c"}) == pytest.approx(1 / 3)
        assert reciprocal_rank(RANKED, {"zz"}) == 0.0

    def test_rank_of(self):
        assert rank_of("b", RANKED) == 2
        assert rank_of("zz", RANKED) is None


class TestNetworkSummary:
    def test_vertex_counts(self, figure1):
        summary = network_summary(figure1)
        assert summary.vertex_counts["author"] == 3
        assert summary.vertex_counts["paper"] == 5

    def test_edge_types_reported_once(self, figure1):
        summary = network_summary(figure1)
        pairs = [(s.source, s.target) for s in summary.edge_stats]
        assert len(pairs) == len({frozenset(p) for p in pairs})

    def test_edge_totals(self, figure1):
        summary = network_summary(figure1)
        total = sum(s.edges for s in summary.edge_stats)
        assert total == figure1.num_edges()

    def test_degree_statistics(self, figure2):
        summary = network_summary(figure2)
        author_paper = next(
            s
            for s in summary.edge_stats
            if {s.source, s.target} == {"author", "paper"}
        )
        # Jim has 12 papers, Mary 6.
        assert author_paper.max_degree == 12.0
        assert author_paper.mean_degree == 9.0
        assert 0 <= author_paper.degree_gini < 1

    def test_gini_zero_for_uniform(self):
        from repro.hin.stats import _gini

        assert _gini(np.array([5.0, 5.0, 5.0])) == pytest.approx(0.0)

    def test_gini_high_for_concentrated(self):
        from repro.hin.stats import _gini

        values = np.array([0.0] * 99 + [100.0])
        assert _gini(values) > 0.9

    def test_gini_empty_and_zero(self):
        from repro.hin.stats import _gini

        assert _gini(np.array([])) == 0.0
        assert _gini(np.zeros(5)) == 0.0

    def test_describe_renders(self, figure1):
        text = network_summary(figure1).describe()
        assert "vertex types:" in text
        assert "author" in text
        assert "gini" in text

    def test_synthetic_corpus_is_skewed(self, small_corpus):
        """The Zipf generator must actually produce skewed degrees."""
        summary = network_summary(small_corpus)
        author_paper = next(
            s
            for s in summary.edge_stats
            if {s.source, s.target} == {"author", "paper"}
        )
        assert author_paper.degree_gini > 0.3
