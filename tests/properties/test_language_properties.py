"""Property-based tests for the query language: format ∘ parse round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.ast import (
    AttributeComparison,
    BooleanCondition,
    Chain,
    Comparison,
    FeaturePath,
    FilteredSet,
    NotCondition,
    Query,
    SetOperation,
)
from repro.query.formatter import format_query, format_set_expression
from repro.query.parser import parse_query, parse_set_expression
from repro.metapath.metapath import MetaPath

# ----------------------------------------------------------------------
# AST generators
# ----------------------------------------------------------------------
type_names = st.sampled_from(["author", "paper", "venue", "term"])
identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True).filter(
    # Identifiers must not collide with (case-insensitive) keywords.
    lambda s: s.upper()
    not in {
        "FIND", "OUTLIERS", "FROM", "IN", "COMPARED", "TO", "JUDGED", "BY",
        "TOP", "AS", "WHERE", "COUNT", "PATHS", "AND", "OR", "NOT", "UNION",
        "INTERSECT", "EXCEPT",
    }
)
anchor_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    min_size=1,
    max_size=12,
)
weights = st.sampled_from([1.0, 2.0, 3.0, 0.5, 2.5])
values = st.sampled_from([0.0, 1.0, 2.0, 5.0, 10.0, 2.5])
operators = st.sampled_from([">", ">=", "<", "<=", "=", "!="])


def comparisons(alias):
    return st.builds(
        Comparison,
        function=st.sampled_from(["COUNT", "PATHS"]),
        alias=st.just(alias),
        steps=st.lists(type_names, min_size=1, max_size=3).map(tuple),
        operator=operators,
        value=values,
    )


def attribute_comparisons(alias):
    numeric = st.builds(
        AttributeComparison,
        alias=st.just(alias),
        attribute=identifiers,
        operator=operators,
        value=values,
    )
    string = st.builds(
        AttributeComparison,
        alias=st.just(alias),
        attribute=identifiers,
        operator=st.sampled_from(["=", "!="]),
        value=anchor_names,
    )
    return st.one_of(numeric, string)


def conditions(alias):
    return st.recursive(
        st.one_of(comparisons(alias), attribute_comparisons(alias)),
        lambda children: st.one_of(
            st.builds(
                BooleanCondition,
                operator=st.sampled_from(["AND", "OR"]),
                left=children,
                right=children,
            ),
            st.builds(NotCondition, operand=children),
        ),
        max_leaves=4,
    )


@st.composite
def chains(draw):
    types = tuple(draw(st.lists(type_names, min_size=1, max_size=4)))
    anchor = draw(st.one_of(st.none(), anchor_names))
    alias = draw(st.one_of(st.none(), identifiers))
    condition_alias = alias if alias is not None else types[-1]
    where = draw(st.one_of(st.none(), conditions(condition_alias)))
    return Chain(types=types, anchor=anchor, alias=alias, where=where)


set_expressions = st.recursive(
    chains(),
    lambda children: st.one_of(
        st.builds(
            SetOperation,
            operator=st.sampled_from(["UNION", "INTERSECT", "EXCEPT"]),
            left=children,
            right=children,
        ),
        st.builds(
            FilteredSet,
            base=children,
            alias=st.one_of(st.none(), identifiers),
            where=st.one_of(st.none(), conditions("author")),
        ).filter(lambda f: f.alias is not None or f.where is not None),
    ),
    max_leaves=5,
)

feature_paths = st.builds(
    FeaturePath,
    types=st.lists(type_names, min_size=2, max_size=4).map(tuple),
    weight=weights,
)

queries = st.builds(
    Query,
    candidates=set_expressions,
    reference=st.one_of(st.none(), set_expressions),
    features=st.lists(feature_paths, min_size=1, max_size=3).map(tuple),
    top_k=st.integers(min_value=1, max_value=100),
)


class TestRoundTrips:
    @given(set_expressions)
    @settings(max_examples=200)
    def test_set_expression_round_trip(self, expression):
        rendered = format_set_expression(expression)
        assert parse_set_expression(rendered) == expression

    @given(queries)
    @settings(max_examples=200)
    def test_query_round_trip(self, query):
        rendered = format_query(query)
        assert parse_query(rendered) == query

    @given(queries)
    @settings(max_examples=50)
    def test_formatting_idempotent(self, query):
        once = format_query(query)
        twice = format_query(parse_query(once))
        assert once == twice


class TestMetaPathAlgebraProperties:
    @given(st.lists(type_names, min_size=1, max_size=6))
    def test_reverse_involution(self, types):
        path = MetaPath(tuple(types))
        assert path.reversed().reversed() == path

    @given(st.lists(type_names, min_size=1, max_size=6))
    def test_symmetric_is_palindrome(self, types):
        assert MetaPath(tuple(types)).symmetric().is_symmetric

    @given(st.lists(type_names, min_size=1, max_size=5))
    def test_symmetric_length(self, types):
        path = MetaPath(tuple(types))
        assert path.symmetric().length == 2 * path.length

    @given(
        st.lists(type_names, min_size=1, max_size=4),
        st.lists(type_names, min_size=1, max_size=4),
    )
    def test_concat_reversal_antihomomorphism(self, left_types, right_types):
        """(P1·P2)⁻¹ == P2⁻¹·P1⁻¹ whenever the concat is legal."""
        left = MetaPath(tuple(left_types))
        right = MetaPath(tuple(right_types))
        if left.target != right.source:
            return
        joined = left.concat(right)
        assert joined.reversed() == right.reversed().concat(left.reversed())

    @given(st.lists(type_names, min_size=1, max_size=8))
    def test_decompose_recompose(self, types):
        from repro.metapath.materialize import decompose_length2

        path = MetaPath(tuple(types))
        segments, tail = decompose_length2(path)
        assert all(segment.length == 2 for segment in segments)
        if tail is not None:
            assert tail.length == 1
        pieces = segments + ([tail] if tail is not None else [])
        if not pieces:
            assert path.length == 0
            return
        recomposed = pieces[0]
        for piece in pieces[1:]:
            recomposed = recomposed.concat(piece)
        assert recomposed == path
