"""Robustness properties: no internal crashes on hostile input.

The parser and tokenizer must fail *only* with
:class:`~repro.exceptions.QueryError` on arbitrary input — never with
IndexError/TypeError/RecursionError — and the executor must fail only with
the documented :class:`~repro.exceptions.ReproError` hierarchy.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError, ReproError
from repro.query.parser import parse_query, parse_set_expression
from repro.query.tokens import tokenize

# Text likely to stress the grammar: keywords, punctuation, quotes, digits.
query_alphabet = st.sampled_from(
    [
        "FIND", "OUTLIERS", "FROM", "IN", "COMPARED", "TO", "JUDGED", "BY",
        "TOP", "AS", "WHERE", "COUNT", "PATHS", "AND", "OR", "NOT", "UNION",
        "INTERSECT", "EXCEPT", "author", "paper", "venue", "A",
        ".", ",", ";", ":", "(", ")", "{", "}", '"', '"x"', ">", ">=", "=",
        "10", "2.5", " ", "\n",
    ]
)
query_soup = st.lists(query_alphabet, min_size=0, max_size=25).map(" ".join)

arbitrary_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=80
)


class TestParserNeverCrashes:
    @given(query_soup)
    @settings(max_examples=300)
    def test_parse_query_fails_cleanly_on_soup(self, text):
        try:
            parse_query(text)
        except QueryError:
            pass  # the only acceptable failure mode

    @given(arbitrary_text)
    @settings(max_examples=300)
    def test_parse_query_fails_cleanly_on_arbitrary_text(self, text):
        try:
            parse_query(text)
        except QueryError:
            pass

    @given(arbitrary_text)
    @settings(max_examples=200)
    def test_tokenizer_fails_cleanly(self, text):
        try:
            tokenize(text)
        except QueryError:
            pass

    @given(query_soup)
    @settings(max_examples=200)
    def test_set_expression_fails_cleanly(self, text):
        try:
            parse_set_expression(text)
        except QueryError:
            pass

    def test_deeply_nested_parentheses_fail_cleanly(self):
        """Hostile nesting depth gets a QueryError, never RecursionError."""
        depth = 4000
        text = "(" * depth + "author" + ")" * depth
        with pytest.raises(QueryError, match="nesting"):
            parse_set_expression(text)

    def test_deeply_nested_not_fails_cleanly(self):
        text = "author WHERE " + "NOT " * 4000 + "COUNT(author.paper) > 1"
        with pytest.raises(QueryError, match="nesting"):
            parse_set_expression(text)

    def test_reasonable_nesting_accepted(self):
        text = "(" * 20 + "author" + ")" * 20
        parse_set_expression(text)


class TestExecutorErrorDiscipline:
    @given(query_soup)
    @settings(max_examples=100, deadline=None)
    def test_detector_raises_only_repro_errors(self, figure1_text_query):
        from repro.datagen.fixtures import figure1_network
        from repro.engine.detector import OutlierDetector

        detector = OutlierDetector(figure1_network())
        try:
            detector.detect(figure1_text_query)
        except ReproError:
            pass
