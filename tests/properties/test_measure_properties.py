"""Property-based tests for the outlierness measures (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.connectivity import (
    connectivity,
    normalized_connectivity,
    visibility,
)
from repro.core.measures import CosineMeasure, NetOutMeasure, PathSimMeasure

# Small non-negative integer matrices: the shape neighbor vectors take
# (path counts are non-negative and overwhelmingly small integers).
counts = st.integers(min_value=0, max_value=6)


def phi_matrices(max_rows=6, max_cols=5):
    return st.tuples(
        st.integers(1, max_rows), st.integers(1, max_rows), st.integers(1, max_cols)
    ).flatmap(
        lambda dims: st.tuples(
            hnp.arrays(np.float64, (dims[0], dims[2]), elements=counts.map(float)),
            hnp.arrays(np.float64, (dims[1], dims[2]), elements=counts.map(float)),
        )
    )


class TestConnectivityProperties:
    @given(
        hnp.arrays(np.float64, 5, elements=counts.map(float)),
        hnp.arrays(np.float64, 5, elements=counts.map(float)),
    )
    def test_connectivity_symmetric_nonnegative(self, a, b):
        assert connectivity(a, b) == connectivity(b, a)
        assert connectivity(a, b) >= 0.0

    @given(hnp.arrays(np.float64, 5, elements=counts.map(float)))
    def test_self_normalized_connectivity(self, a):
        kappa = normalized_connectivity(a, a)
        if visibility(a) > 0:
            assert kappa == pytest.approx(1.0)
        else:
            assert kappa == 0.0

    @given(
        hnp.arrays(np.float64, 5, elements=counts.map(float)),
        hnp.arrays(np.float64, 5, elements=counts.map(float)),
    )
    def test_kappa_product_identity(self, a, b):
        """κ(a,b)·vis(a) == κ(b,a)·vis(b) == χ(a,b)."""
        chi = connectivity(a, b)
        if visibility(a) > 0:
            assert normalized_connectivity(a, b) * visibility(a) == pytest.approx(chi)
        if visibility(b) > 0:
            assert normalized_connectivity(b, a) * visibility(b) == pytest.approx(chi)


class TestMeasureEquivalences:
    @given(phi_matrices())
    @settings(max_examples=60)
    def test_netout_vectorized_equals_pairwise(self, matrices):
        candidates, reference = matrices
        vectorized = NetOutMeasure().score(candidates, reference)
        pairwise = NetOutMeasure().score_pairwise(candidates, reference)
        np.testing.assert_allclose(vectorized, pairwise, rtol=1e-9, atol=1e-12)

    @given(phi_matrices())
    @settings(max_examples=60)
    def test_cossim_vectorized_equals_pairwise(self, matrices):
        candidates, reference = matrices
        vectorized = CosineMeasure().score(candidates, reference)
        pairwise = CosineMeasure().score_pairwise(candidates, reference)
        np.testing.assert_allclose(vectorized, pairwise, rtol=1e-9, atol=1e-12)

    @given(phi_matrices())
    @settings(max_examples=40)
    def test_scores_nonnegative(self, matrices):
        candidates, reference = matrices
        for measure in (NetOutMeasure(), PathSimMeasure(), CosineMeasure()):
            assert (measure.score(candidates, reference) >= 0).all()

    @given(phi_matrices())
    @settings(max_examples=40)
    def test_reference_permutation_invariance(self, matrices):
        """Ω sums over the reference set — its order cannot matter."""
        candidates, reference = matrices
        rng = np.random.default_rng(0)
        permuted = reference[rng.permutation(reference.shape[0])]
        for measure in (NetOutMeasure(), PathSimMeasure(), CosineMeasure()):
            np.testing.assert_allclose(
                measure.score(candidates, reference),
                measure.score(candidates, permuted),
                rtol=1e-9,
            )

    @given(phi_matrices())
    @settings(max_examples=40)
    def test_duplicating_reference_doubles_sum_scores(self, matrices):
        candidates, reference = matrices
        doubled = np.vstack([reference, reference])
        for measure in (NetOutMeasure(), PathSimMeasure(), CosineMeasure()):
            np.testing.assert_allclose(
                2.0 * measure.score(candidates, reference),
                measure.score(candidates, doubled),
                rtol=1e-9,
                atol=1e-12,
            )

    @given(phi_matrices())
    @settings(max_examples=40)
    def test_min_le_mean_le_max(self, matrices):
        candidates, reference = matrices
        low = NetOutMeasure("min").score(candidates, reference)
        mean = NetOutMeasure("mean").score(candidates, reference)
        high = NetOutMeasure("max").score(candidates, reference)
        assert (low <= mean + 1e-9).all()
        assert (mean <= high + 1e-9).all()

    @given(phi_matrices())
    @settings(max_examples=40)
    def test_self_in_reference_bounds_netout_below_by_one(self, matrices):
        """With Sr ⊇ {v}, Ω(v) ≥ κ(v,v) = 1 for any visible v."""
        candidates, __ = matrices
        scores = NetOutMeasure().score(candidates, candidates)
        visible = np.einsum("ij,ij->i", candidates, candidates) > 0
        assert (scores[visible] >= 1.0 - 1e-9).all()

    @given(phi_matrices(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40)
    def test_cossim_scale_invariance(self, matrices, scale):
        candidates, reference = matrices
        np.testing.assert_allclose(
            CosineMeasure().score(candidates * scale, reference),
            CosineMeasure().score(candidates, reference),
            rtol=1e-8,
            atol=1e-10,
        )

    @given(phi_matrices())
    @settings(max_examples=40)
    def test_pathsim_bounded_by_reference_count(self, matrices):
        """PathSim(a,b) ≤ 1, so ΩPathSim ≤ |Sr|."""
        candidates, reference = matrices
        scores = PathSimMeasure().score(candidates, reference)
        assert (scores <= reference.shape[0] + 1e-9).all()
