"""Property-based tests: all strategies compute identical neighbor vectors
and NetOut scores on randomly generated bibliographic networks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import QueryExecutor
from repro.engine.strategies import BaselineStrategy, PMStrategy, SPMStrategy
from repro.hin.bibliographic import BibliographicNetworkBuilder, Publication
from repro.metapath.materialize import materialize
from repro.metapath.metapath import MetaPath

# ----------------------------------------------------------------------
# Random small bibliographic networks
# ----------------------------------------------------------------------
author_pool = [f"A{i}" for i in range(8)]
venue_pool = [f"V{i}" for i in range(4)]
term_pool = [f"t{i}" for i in range(5)]

publications = st.builds(
    lambda key, authors, venue, terms: Publication(
        key=f"p{key}", authors=sorted(set(authors)), venue=venue, terms=sorted(set(terms))
    ),
    key=st.integers(0, 10_000),
    authors=st.lists(st.sampled_from(author_pool), min_size=1, max_size=3),
    venue=st.sampled_from(venue_pool),
    terms=st.lists(st.sampled_from(term_pool), min_size=1, max_size=3),
)


@st.composite
def networks(draw):
    records = draw(st.lists(publications, min_size=1, max_size=12, unique_by=lambda p: p.key))
    builder = BibliographicNetworkBuilder()
    builder.add_publications(records)
    return builder.build()


PATHS = [
    MetaPath.parse("author.paper.venue"),
    MetaPath.parse("author.paper.author"),
    MetaPath.parse("author.paper.venue.paper.author"),
    MetaPath.parse("author.paper.term.paper"),
]


class TestStrategyEquivalence:
    @given(networks(), st.sampled_from(PATHS))
    @settings(max_examples=40, deadline=None)
    def test_neighbor_rows_identical(self, network, path):
        truth = materialize(network, path)
        selected = list(network.vertices("author"))[::2]
        strategies = [
            BaselineStrategy(network),
            PMStrategy(network),
            SPMStrategy(network, selected=selected),
        ]
        for vertex in network.vertices("author"):
            expected = truth.getrow(vertex.index)
            for strategy in strategies:
                row = strategy.neighbor_row(path, vertex.index)
                assert (row != expected).nnz == 0, (
                    f"{strategy.name} disagrees on {path} at {vertex}"
                )

    @given(networks())
    @settings(max_examples=25, deadline=None)
    def test_query_results_identical(self, network):
        anchor = network.vertex_names("author")[0]
        query = (
            f'FIND OUTLIERS FROM author{{"{anchor}"}}.paper.author '
            "JUDGED BY author.paper.venue TOP 5;"
        )
        rankings = []
        for strategy in (
            BaselineStrategy(network),
            PMStrategy(network),
            SPMStrategy(network, selected=list(network.vertices("author"))[:2]),
        ):
            result = QueryExecutor(strategy).execute(query)
            rankings.append([(e.name, round(e.score, 10)) for e in result])
        assert rankings[0] == rankings[1] == rankings[2]

    @given(networks())
    @settings(max_examples=25, deadline=None)
    def test_keep_all_subnetwork_is_identity(self, network):
        """Inducing with keep-everything predicates copies the network."""
        from repro.hin.subnetwork import induced_subnetwork

        copy = induced_subnetwork(network, {})
        for edge_type in network.schema.edge_types:
            left = network.adjacency(edge_type.source, edge_type.target)
            right = copy.adjacency(edge_type.source, edge_type.target)
            assert left.shape == right.shape
            assert (left != right).nnz == 0
        for vertex_type in network.schema.vertex_types:
            assert network.vertex_names(vertex_type) == copy.vertex_names(
                vertex_type
            )

    @given(networks())
    @settings(max_examples=25, deadline=None)
    def test_netout_self_reference_lower_bound(self, network):
        """Ω(v) ≥ 1 when Sr = Sc ∋ v and v has any venue paths."""
        anchor = network.vertex_names("author")[0]
        query = (
            f'FIND OUTLIERS FROM author{{"{anchor}"}}.paper.author '
            "JUDGED BY author.paper.venue TOP 50;"
        )
        result = QueryExecutor(BaselineStrategy(network)).execute(query)
        for vertex, score in result.scores.items():
            if score > 0:  # visible candidates only
                assert score >= 1.0 - 1e-9
