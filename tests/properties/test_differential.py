"""Differential testing: the engine vs an independent brute-force NetOut.

The reference implementation below shares *no* code with the engine's
scoring path: it counts path instances with plain dictionary traversal and
sums normalized connectivities pair by pair, straight from Definitions 7,
9, and 10.  Hypothesis feeds both implementations random networks and
anchored queries; scores must agree to floating-point accuracy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.detector import OutlierDetector
from repro.hin.bibliographic import BibliographicNetworkBuilder, Publication
from repro.hin.network import VertexId

author_pool = [f"A{i}" for i in range(7)]
venue_pool = ["V0", "V1", "V2", "V3"]

publications = st.builds(
    lambda key, authors, venue: Publication(
        key=f"p{key}", authors=sorted(set(authors)), venue=venue, terms=["t"]
    ),
    key=st.integers(0, 10_000),
    authors=st.lists(st.sampled_from(author_pool), min_size=1, max_size=4),
    venue=st.sampled_from(venue_pool),
)


@st.composite
def networks(draw):
    records = draw(
        st.lists(publications, min_size=1, max_size=14, unique_by=lambda p: p.key)
    )
    builder = BibliographicNetworkBuilder()
    builder.add_publications(records)
    return builder.build()


# ----------------------------------------------------------------------
# Independent reference implementation (dict-based, no engine code).
# ----------------------------------------------------------------------
def _paper_sets(network):
    """author index -> {paper index: 1}, venue of each paper."""
    author_papers = {}
    adjacency = network.adjacency("author", "paper")
    for author in range(network.num_vertices("author")):
        start, stop = adjacency.indptr[author], adjacency.indptr[author + 1]
        author_papers[author] = {
            int(p): float(c)
            for p, c in zip(adjacency.indices[start:stop], adjacency.data[start:stop])
        }
    paper_venues = {}
    pv = network.adjacency("paper", "venue")
    for paper in range(network.num_vertices("paper")):
        start, stop = pv.indptr[paper], pv.indptr[paper + 1]
        paper_venues[paper] = {
            int(v): float(c)
            for v, c in zip(pv.indices[start:stop], pv.data[start:stop])
        }
    return author_papers, paper_venues


def brute_force_netout(network, anchor_name):
    """Ω for every coauthor of `anchor_name` with P = (A P V), from scratch."""
    author_papers, paper_venues = _paper_sets(network)
    anchor = network.find_vertex("author", anchor_name).index

    # Candidate set: coauthors (incl. the anchor via self-paths).
    candidates = set()
    papers_a = author_papers[anchor]
    for other, papers_b in author_papers.items():
        if any(p in papers_a for p in papers_b):
            candidates.add(other)

    # Venue profiles: φ_APV.
    def profile(author):
        venues = {}
        for paper, paper_count in author_papers[author].items():
            for venue, venue_count in paper_venues.get(paper, {}).items():
                venues[venue] = venues.get(venue, 0.0) + paper_count * venue_count
        return venues

    profiles = {a: profile(a) for a in candidates}

    def dot(left, right):
        return sum(v * right.get(k, 0.0) for k, v in left.items())

    scores = {}
    for a in candidates:
        vis = dot(profiles[a], profiles[a])
        if vis == 0.0:
            scores[a] = 0.0
            continue
        scores[a] = sum(dot(profiles[a], profiles[r]) for r in candidates) / vis
    return scores


class TestDifferential:
    @given(networks(), st.integers(0, len(author_pool) - 1))
    @settings(max_examples=60, deadline=None)
    def test_engine_matches_brute_force(self, network, anchor_position):
        names = network.vertex_names("author")
        anchor_name = names[anchor_position % len(names)]
        expected = brute_force_netout(network, anchor_name)

        detector = OutlierDetector(network, strategy="pm")
        result = detector.detect(
            f'FIND OUTLIERS FROM author{{"{anchor_name}"}}.paper.author '
            "JUDGED BY author.paper.venue TOP 50;"
        )
        actual = {vertex.index: score for vertex, score in result.scores.items()}
        assert set(actual) == set(expected)
        for author, score in expected.items():
            assert actual[author] == pytest.approx(score, rel=1e-9), (
                f"disagreement for author {names[author]}"
            )

    @given(networks())
    @settings(max_examples=30, deadline=None)
    def test_all_measure_scores_finite(self, network):
        import numpy as np

        anchor_name = network.vertex_names("author")[0]
        for measure in ("netout", "pathsim", "cossim"):
            detector = OutlierDetector(network, measure=measure)
            result = detector.detect(
                f'FIND OUTLIERS FROM author{{"{anchor_name}"}}.paper.author '
                "JUDGED BY author.paper.venue TOP 50;"
            )
            values = np.fromiter(result.scores.values(), dtype=float)
            assert np.isfinite(values).all()
            assert (values >= 0).all()
