"""Property-based tests: ``OutlierResult.to_dict`` ∘ ``from_dict`` == id.

The HTTP frontend ships results as JSON, so the wire form must be lossless
for everything that *is* the answer: scores, ranks, names, degradation
flags, and the per-feature breakdown.  Hypothesis drives the whole shape
space — arbitrary score maps, optional feature scores, degraded results —
through an actual JSON round-trip.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import OutlierResult, ScoredVertex
from repro.hin.network import VertexId

vertex_types = st.sampled_from(["author", "paper", "venue", "term"])
vertex_ids = st.builds(
    VertexId, type=vertex_types, index=st.integers(min_value=0, max_value=50)
)
finite_scores = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
names = st.text(min_size=1, max_size=12)
score_maps = st.dictionaries(vertex_ids, finite_scores, min_size=1, max_size=12)
path_texts = st.sampled_from(
    ["author.paper.venue", "author.paper.term", "author.paper.author"]
)


@st.composite
def results(draw):
    scores = draw(score_maps)
    vertex_names = {
        vertex: draw(names, label=f"name[{vertex}]") for vertex in scores
    }
    degraded = draw(st.booleans())
    feature_scores = draw(
        st.one_of(
            st.none(),
            st.dictionaries(
                path_texts,
                st.fixed_dictionaries(
                    {}, optional={vertex: finite_scores for vertex in scores}
                ),
                min_size=1,
                max_size=3,
            ),
        )
    )
    return OutlierResult.from_scores(
        scores,
        vertex_names,
        top_k=draw(st.integers(min_value=1, max_value=15)),
        reference_count=draw(st.integers(min_value=0, max_value=100)),
        measure=draw(st.sampled_from(["netout", "pathsim", "cosine"])),
        feature_scores=feature_scores,
        degraded=degraded,
        degradation_reason=(
            draw(st.text(min_size=1, max_size=30)) if degraded else None
        ),
    )


class TestRoundTrip:
    @given(results())
    @settings(max_examples=150)
    def test_dict_round_trip_is_lossless(self, result):
        back = OutlierResult.from_dict(result.to_dict())
        assert back.outliers == result.outliers
        assert back.scores == result.scores
        assert back.candidate_count == result.candidate_count
        assert back.reference_count == result.reference_count
        assert back.measure == result.measure
        assert back.degraded == result.degraded
        assert back.degradation_reason == result.degradation_reason
        assert back.feature_scores == result.feature_scores

    @given(results())
    @settings(max_examples=100)
    def test_survives_actual_json(self, result):
        """The wire case: the payload must encode to JSON text and decode
        back without losing anything — what the HTTP frontend relies on."""
        back = OutlierResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.outliers == result.outliers
        assert back.scores == result.scores
        assert back.feature_scores == result.feature_scores

    @given(results())
    @settings(max_examples=50)
    def test_ranks_and_order_preserved(self, result):
        back = OutlierResult.from_dict(result.to_dict())
        assert [entry.rank for entry in back] == list(
            range(1, len(result) + 1)
        )
        assert back.names() == result.names()

    @given(results())
    @settings(max_examples=50)
    def test_stats_never_serialize(self, result):
        payload = result.to_dict()
        assert "stats" not in payload
        assert OutlierResult.from_dict(payload).stats is None
