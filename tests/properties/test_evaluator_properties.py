"""Property-based tests for set-expression evaluation (set-algebra laws)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.evaluator import SetEvaluator
from repro.engine.strategies import BaselineStrategy
from repro.hin.bibliographic import BibliographicNetworkBuilder, Publication
from repro.query.ast import Chain, SetOperation
from repro.query.parser import parse_set_expression

author_pool = [f"A{i}" for i in range(6)]
venue_pool = ["V0", "V1", "V2"]

publications = st.builds(
    lambda key, authors, venue: Publication(
        key=f"p{key}", authors=sorted(set(authors)), venue=venue, terms=["t"]
    ),
    key=st.integers(0, 10_000),
    authors=st.lists(st.sampled_from(author_pool), min_size=1, max_size=3),
    venue=st.sampled_from(venue_pool),
)


@st.composite
def networks(draw):
    records = draw(
        st.lists(publications, min_size=2, max_size=10, unique_by=lambda p: p.key)
    )
    builder = BibliographicNetworkBuilder()
    builder.add_publications(records)
    return builder.build()


def _chains_for(network):
    """Anchored chains over venues that actually exist in the network."""
    venues = network.vertex_names("venue")
    return st.sampled_from(
        [
            Chain(types=("venue", "paper", "author"), anchor=v)
            for v in venues
        ]
    )


def evaluate(network, expression):
    evaluator = SetEvaluator(BaselineStrategy(network))
    __, members = evaluator.evaluate(expression)
    return set(members)


class TestSetAlgebraLaws:
    @given(networks(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_union_commutative(self, network, data):
        chains = _chains_for(network)
        a = data.draw(chains)
        b = data.draw(chains)
        forward = evaluate(network, SetOperation("UNION", a, b))
        backward = evaluate(network, SetOperation("UNION", b, a))
        assert forward == backward

    @given(networks(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_intersect_is_subset_of_union(self, network, data):
        chains = _chains_for(network)
        a = data.draw(chains)
        b = data.draw(chains)
        intersection = evaluate(network, SetOperation("INTERSECT", a, b))
        union = evaluate(network, SetOperation("UNION", a, b))
        assert intersection <= union

    @given(networks(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_except_partitions(self, network, data):
        """A = (A \\ B) ∪ (A ∩ B), disjointly."""
        chains = _chains_for(network)
        a = data.draw(chains)
        b = data.draw(chains)
        whole = evaluate(network, a)
        difference = evaluate(network, SetOperation("EXCEPT", a, b))
        intersection = evaluate(network, SetOperation("INTERSECT", a, b))
        assert difference | intersection == whole
        assert not difference & intersection

    @given(networks(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_set_semantics_match_python_sets(self, network, data):
        """Engine set ops agree with Python's on the evaluated operands."""
        chains = _chains_for(network)
        a = data.draw(chains)
        b = data.draw(chains)
        left, right = evaluate(network, a), evaluate(network, b)
        assert evaluate(network, SetOperation("UNION", a, b)) == left | right
        assert evaluate(network, SetOperation("INTERSECT", a, b)) == left & right
        assert evaluate(network, SetOperation("EXCEPT", a, b)) == left - right

    @given(networks())
    @settings(max_examples=30, deadline=None)
    def test_where_filter_is_a_subset(self, network):
        unfiltered = evaluate(network, parse_set_expression("author"))
        filtered = evaluate(
            network,
            parse_set_expression("author AS A WHERE COUNT(A.paper) >= 2"),
        )
        assert filtered <= unfiltered

    @given(networks())
    @settings(max_examples=30, deadline=None)
    def test_where_and_not_where_partition(self, network):
        condition = "COUNT(author.paper) >= 2"
        whole = evaluate(network, parse_set_expression("author"))
        positive = evaluate(
            network, parse_set_expression(f"author WHERE {condition}")
        )
        negative = evaluate(
            network, parse_set_expression(f"author WHERE NOT {condition}")
        )
        assert positive | negative == whole
        assert not positive & negative
