"""Property-based tests: the batched ``neighbor_matrix`` path returns a
matrix *structurally identical* (dtype, indptr, indices, data) to vstacking
per-vertex ``neighbor_row`` calls — for every strategy, for SPM hit/miss
mixes, and for warm/cold caches."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.engine.caching import CachingStrategy
from repro.engine.strategies import (
    BaselineStrategy,
    PMStrategy,
    SPMStrategy,
    _canonical,
)
from tests.properties.test_strategy_properties import PATHS, networks


def _requests(draw, network):
    """A request list over author indices: unsorted, duplicates allowed."""
    count = network.num_vertices("author")
    return draw(
        st.lists(st.integers(0, count - 1), min_size=1, max_size=24)
    )


def _per_row_reference(strategy, path, indices):
    return _canonical(
        sparse.vstack(
            [strategy.neighbor_row(path, index) for index in indices],
            format="csr",
        )
    )


def _assert_identical(actual, expected, label):
    assert actual.shape == expected.shape, label
    assert actual.dtype == np.float64, label
    assert np.array_equal(actual.indptr, expected.indptr), label
    assert np.array_equal(actual.indices, expected.indices), label
    assert np.array_equal(actual.data, expected.data), label


class TestBatchedEqualsPerRow:
    @given(networks(), st.sampled_from(PATHS), st.data())
    @settings(max_examples=40, deadline=None)
    def test_all_strategies(self, network, path, data):
        indices = _requests(data.draw, network)
        # SPM indexes every other author: requests mix hits and misses.
        selected = list(network.vertices("author"))[::2]
        strategies = [
            BaselineStrategy(network),
            PMStrategy(network),
            SPMStrategy(network, selected=selected),
        ]
        for strategy in strategies:
            expected = _per_row_reference(strategy, path, indices)
            actual = strategy.neighbor_matrix(path, indices)
            _assert_identical(actual, expected, f"{strategy.name} on {path}")

    @given(networks(), st.sampled_from(PATHS), st.data())
    @settings(max_examples=30, deadline=None)
    def test_spm_all_hits_and_all_misses(self, network, path, data):
        """The pure-hit and pure-miss partitions agree with per-row too."""
        authors = list(network.vertices("author"))
        selected = authors[::2]
        strategy = SPMStrategy(network, selected=selected)
        hit_indices = [vertex.index for vertex in selected]
        miss_indices = [
            vertex.index for vertex in authors if vertex not in selected
        ]
        for indices in (hit_indices, miss_indices):
            if not indices:
                continue
            expected = _per_row_reference(strategy, path, indices)
            actual = strategy.neighbor_matrix(path, indices)
            _assert_identical(actual, expected, f"spm on {path}")

    @given(networks(), st.sampled_from(PATHS), st.data())
    @settings(max_examples=30, deadline=None)
    def test_caching_warm_and_cold(self, network, path, data):
        indices = _requests(data.draw, network)
        plain = BaselineStrategy(network)
        expected = _per_row_reference(plain, path, indices)

        cached = CachingStrategy(BaselineStrategy(network), max_rows=1024)
        # Prime a prefix through the row path so the batch sees a
        # warm/cold mix, then verify the cold batch and a fully warm one.
        for index in indices[: len(indices) // 2]:
            cached.neighbor_row(path, index)
        mixed = cached.neighbor_matrix(path, indices)
        _assert_identical(mixed, expected, f"cached mixed on {path}")
        warm = cached.neighbor_matrix(path, indices)
        _assert_identical(warm, expected, f"cached warm on {path}")
        assert cached.hits > 0
