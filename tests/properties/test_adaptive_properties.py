"""Property tests for adaptive indexing: byte-identity is *invariant*.

Two randomized guarantees back the hot-swap design:

* **Cache transparency** — attaching a :class:`SubpathCache` to any
  strategy changes nothing about its output, byte for byte, on random
  bibliographic networks.  Path counts are small non-negative integers, so
  float64 sparse products are exact and reassociating ``(S@A₁)@A₂`` into
  cached segment products cannot drift.
* **Swap transparency** — executing a query, hot-swapping a freshly built
  workload-ranked SPM index into a live :class:`EngineHandle`, and
  executing again yields byte-identical ``to_dict()`` payloads, whatever
  the network or the selection.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.caching import SubpathCache
from repro.engine.index import build_spm_index_bounded
from repro.engine.strategies import BaselineStrategy, SPMStrategy
from repro.hin.bibliographic import BibliographicNetworkBuilder, Publication
from repro.metapath.metapath import MetaPath
from repro.service import EngineHandle

# ----------------------------------------------------------------------
# Random small bibliographic networks (same shape as the strategy props)
# ----------------------------------------------------------------------
author_pool = [f"A{i}" for i in range(8)]
venue_pool = [f"V{i}" for i in range(4)]
term_pool = [f"t{i}" for i in range(5)]

publications = st.builds(
    lambda key, authors, venue, terms: Publication(
        key=f"p{key}",
        authors=sorted(set(authors)),
        venue=venue,
        terms=sorted(set(terms)),
    ),
    key=st.integers(0, 10_000),
    authors=st.lists(st.sampled_from(author_pool), min_size=1, max_size=3),
    venue=st.sampled_from(venue_pool),
    terms=st.lists(st.sampled_from(term_pool), min_size=1, max_size=3),
)


@st.composite
def networks(draw):
    records = draw(
        st.lists(publications, min_size=2, max_size=12, unique_by=lambda p: p.key)
    )
    builder = BibliographicNetworkBuilder()
    builder.add_publications(records)
    return builder.build()


PATHS = [
    MetaPath.parse("author.paper.venue"),
    MetaPath.parse("author.paper.author"),
    MetaPath.parse("author.paper.venue.paper.author"),
    MetaPath.parse("author.paper.term.paper.author"),
]

QUERIES = [
    "FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 3;",
    "FIND OUTLIERS FROM author JUDGED BY author.paper.author TOP 4;",
    "FIND OUTLIERS FROM venue JUDGED BY venue.paper.author TOP 2;",
]


def _bytes_of(matrix):
    matrix = matrix.tocsr().copy()
    matrix.sum_duplicates()
    matrix.sort_indices()
    matrix.eliminate_zeros()
    return (matrix.indices.tobytes(), matrix.data.tobytes(), matrix.shape)


class TestCacheTransparency:
    @given(networks(), st.sampled_from(PATHS))
    @settings(max_examples=30, deadline=None)
    def test_baseline_blocks_unchanged_by_cache(self, network, path):
        indices = [v.index for v in network.vertices(path.source)]
        plain = BaselineStrategy(network)
        cached = BaselineStrategy(network)
        cached.subpath_cache = SubpathCache(max_bytes=4 << 20)
        # Twice through the cached strategy: the second pass serves segment
        # products from the cache and must still match exactly.
        expected = _bytes_of(plain.neighbor_matrix(path, indices))
        assert _bytes_of(cached.neighbor_matrix(path, indices)) == expected
        assert _bytes_of(cached.neighbor_matrix(path, indices)) == expected

    @given(networks(), st.sampled_from(PATHS))
    @settings(max_examples=30, deadline=None)
    def test_spm_blocks_unchanged_by_cache(self, network, path):
        indices = [v.index for v in network.vertices(path.source)]
        selected = list(network.vertices(path.source))[::2]
        plain = SPMStrategy(network, selected=selected)
        cached = SPMStrategy(network, selected=selected)
        cached.subpath_cache = SubpathCache(max_bytes=4 << 20)
        expected = _bytes_of(plain.neighbor_matrix(path, indices))
        assert _bytes_of(cached.neighbor_matrix(path, indices)) == expected
        assert _bytes_of(cached.neighbor_matrix(path, indices)) == expected


class TestSwapTransparency:
    @given(networks(), st.sampled_from(QUERIES))
    @settings(max_examples=15, deadline=None)
    def test_scores_identical_across_hot_swap(self, network, query):
        handle = EngineHandle(network, strategy="spm", subpath_cache_mb=4.0)

        def wire(result):
            return json.dumps(result.to_dict(), sort_keys=True)

        batch = handle.execute_many([query])
        if batch.errors:
            return  # unservable on this random network either side of a swap
        before = wire(batch.results[0])

        # Re-plan around "every author queried": a selection that overlaps
        # and extends whatever the handle started with.
        ranked = list(network.vertices("author"))
        index, indexed = build_spm_index_bounded(network, ranked)
        assert indexed
        generation_before = handle.index_generation
        handle.swap_index(index)
        assert handle.index_generation == generation_before + 1

        assert wire(handle.execute_many([query]).results[0]) == before

    @given(networks())
    @settings(max_examples=15, deadline=None)
    def test_swap_then_cache_still_transparent(self, network):
        """After a swap, the attached sub-path cache (cleared by the
        version bump) keeps serving byte-identical answers."""
        query = QUERIES[0]
        ranked = list(network.vertices("author"))
        outcomes = []
        # Swap-then-execute per handle: the two handles share one network
        # object, and each swap bumps its version, staling the *other*
        # handle's index — so each one answers right after its own swap.
        for megabytes in (0.0, 4.0):
            handle = EngineHandle(
                network, strategy="spm", subpath_cache_mb=megabytes
            )
            index, _ = build_spm_index_bounded(network, ranked)
            handle.swap_index(index)
            batch = handle.execute_many([query])
            outcomes.append(
                (set(batch.errors), None)
                if batch.errors
                else (
                    set(),
                    json.dumps(batch.results[0].to_dict(), sort_keys=True),
                )
            )
        assert outcomes[0] == outcomes[1]
