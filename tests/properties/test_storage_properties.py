"""Property tests for the storage tiers: the mmap/out-of-core path is
*invisible* semantically.

Randomized guarantees behind the million-vertex tier:

* **Storage transparency** — a network copied onto ``storage="mmap"``
  serves byte-identical adjacency, and any PM index built over it (in-core
  or blocked, any block size, RAM- or file-backed store) holds
  byte-identical contents.  Path counts are small non-negative integers,
  exact in float64, and blocked row concatenation reproduces the in-core
  product rows exactly — no summation-order drift exists to find.
* **Score transparency** — :class:`OutlierResult` scores agree byte for
  byte across the full ``{ram,mmap} x {in-core,blocked}`` grid.
* **SPM admission equivalence** — the blocked bounded SPM build admits
  exactly the vertices the in-core bounded build admits (all-or-nothing,
  hottest-first, first-overflow-stops), with identical stored rows.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.detector import OutlierDetector
from repro.engine.index import (
    build_pm_index,
    build_pm_index_blocked,
    build_spm_index_blocked,
    build_spm_index_bounded,
)
from repro.hin.bibliographic import BibliographicNetworkBuilder, Publication
from repro.hin.network import VertexId
from repro.hin.storage import MmapArrayStore

author_pool = [f"A{i}" for i in range(8)]
venue_pool = [f"V{i}" for i in range(4)]
term_pool = [f"t{i}" for i in range(5)]

publications = st.builds(
    lambda key, authors, venue, terms: Publication(
        key=f"p{key}",
        authors=sorted(set(authors)),
        venue=venue,
        terms=sorted(set(terms)),
    ),
    key=st.integers(0, 10_000),
    authors=st.lists(st.sampled_from(author_pool), min_size=1, max_size=3),
    venue=st.sampled_from(venue_pool),
    terms=st.lists(st.sampled_from(term_pool), min_size=1, max_size=3),
)


@st.composite
def networks(draw):
    records = draw(
        st.lists(publications, min_size=2, max_size=12, unique_by=lambda p: p.key)
    )
    builder = BibliographicNetworkBuilder()
    builder.add_publications(records)
    return builder.build()


QUERIES = [
    "FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 3;",
    "FIND OUTLIERS FROM author JUDGED BY author.paper.author TOP 4;",
    "FIND OUTLIERS FROM venue JUDGED BY venue.paper.author TOP 2;",
]


def _bytes_of(matrix):
    csr = matrix.tocsr().copy()
    csr.sum_duplicates()
    csr.sort_indices()
    return (
        csr.data.tobytes(),
        csr.indices.astype(np.int64).tobytes(),
        csr.indptr.astype(np.int64).tobytes(),
        csr.shape,
    )


def _index_bytes(index):
    payload = {}
    for path in index.paths:
        full = index.full_matrix(path)
        if full is not None:
            payload[str(path)] = _bytes_of(full)
        else:
            payload[str(path)] = {
                vertex: _bytes_of(row)
                for vertex, row in index.partial_rows(path).items()
            }
    return payload


def _scores_bytes(network, index, strategy="pm"):
    detector = OutlierDetector(network, strategy=strategy, index=index)
    out = []
    for query in QUERIES:
        result = detector.detect(query)
        out.append(
            [(v, np.float64(s).tobytes()) for v, s in sorted(result.scores.items())]
        )
    return out


class TestStorageTransparency:
    @given(network=networks(), block_rows=st.integers(min_value=1, max_value=9))
    @settings(max_examples=25, deadline=None)
    def test_pm_grid_identical(self, network, block_rows, tmp_path_factory):
        mmap_net = network.copy_with_storage("mmap")
        # Adjacency itself must be byte-identical across tiers.
        for edge_type in network.schema.edge_types:
            ram = network.adjacency(edge_type.source, edge_type.target)
            mm = mmap_net.adjacency(edge_type.source, edge_type.target)
            assert _bytes_of(ram) == _bytes_of(mm)

        reference = build_pm_index(network)
        reference_bytes = _index_bytes(reference)
        store_dir = str(tmp_path_factory.mktemp("pm-store"))
        legs = {
            "ram/blocked": build_pm_index_blocked(network, block_rows=block_rows),
            "mmap/incore": build_pm_index(mmap_net),
            "mmap/blocked": build_pm_index_blocked(
                mmap_net,
                block_rows=block_rows,
                store=MmapArrayStore(store_dir),
            ),
        }
        for name, index in legs.items():
            assert _index_bytes(index) == reference_bytes, name

        reference_scores = _scores_bytes(network, reference)
        for name, (net, index) in {
            "ram/blocked": (network, legs["ram/blocked"]),
            "mmap/incore": (mmap_net, legs["mmap/incore"]),
            "mmap/blocked": (mmap_net, legs["mmap/blocked"]),
        }.items():
            assert _scores_bytes(net, index) == reference_scores, name

    @given(
        network=networks(),
        block_rows=st.integers(min_value=1, max_value=5),
        max_bytes=st.one_of(st.none(), st.integers(min_value=0, max_value=4000)),
    )
    @settings(max_examples=25, deadline=None)
    def test_spm_bounded_blocked_equivalent(
        self, network, block_rows, max_bytes, tmp_path_factory
    ):
        ranked = [
            VertexId("author", v.index) for v in network.vertices("author")
        ] + [VertexId("venue", v.index) for v in network.vertices("venue")]
        bounded, admitted = build_spm_index_bounded(
            network, ranked, max_bytes=max_bytes
        )
        blocked, admitted_blocked = build_spm_index_blocked(
            network,
            ranked,
            max_bytes=max_bytes,
            block_rows=block_rows,
            store=MmapArrayStore(str(tmp_path_factory.mktemp("spm-store"))),
        )
        assert admitted == admitted_blocked
        assert _index_bytes(bounded) == _index_bytes(blocked)
        if admitted:
            assert _scores_bytes(network, bounded, strategy="spm") == _scores_bytes(
                network, blocked, strategy="spm"
            )
