"""Tests for :mod:`repro.report` (HTML report generation)."""

import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.strategies import BaselineStrategy
from repro.report import render_html_report, write_html_report

SINGLE_QUERY = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 3;"
)
MULTI_QUERY = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue, author.paper.author TOP 3;"
)


@pytest.fixture()
def result(figure1):
    return QueryExecutor(BaselineStrategy(figure1)).execute(SINGLE_QUERY)


class TestRenderHtml:
    def test_is_standalone_document(self, result):
        document = render_html_report(result)
        assert document.startswith("<!DOCTYPE html>")
        assert "</html>" in document
        assert "<script" not in document  # no external/active content

    def test_contains_all_outliers(self, result):
        document = render_html_report(result)
        for entry in result.outliers:
            assert entry.name in document

    def test_query_text_included_and_escaped(self, result):
        document = render_html_report(
            result, query_text='FIND OUTLIERS FROM author{"<Zoe>"}...'
        )
        assert "&lt;Zoe&gt;" in document
        assert "<Zoe>" not in document

    def test_names_escaped(self, figure1):
        evil = figure1.add_vertex("author", "<script>alert(1)</script>")
        paper = figure1.find_vertex("paper", "p1")
        figure1.add_edge(paper, evil)
        result = QueryExecutor(BaselineStrategy(figure1)).execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 10;"
        )
        document = render_html_report(result)
        assert "<script>alert(1)</script>" not in document

    def test_metadata_line(self, result):
        document = render_html_report(result)
        assert "netout" in document
        assert f"{result.candidate_count} \ncandidates".replace("\n", "") in (
            document.replace("\n", "")
        )

    def test_histogram_present(self, result):
        document = render_html_report(result)
        assert 'class="hist"' in document
        assert "red bins" in document

    def test_feature_breakdown_columns(self, figure1):
        result = QueryExecutor(BaselineStrategy(figure1)).execute(MULTI_QUERY)
        document = render_html_report(result)
        assert "Ω(author.paper.venue)" in document
        assert "Ω(author.paper.author)" in document

    def test_custom_title(self, result):
        document = render_html_report(result, title="Coauthor audit")
        assert "<title>Coauthor audit</title>" in document


class TestWriteHtml:
    def test_writes_file(self, result, tmp_path):
        path = tmp_path / "report.html"
        write_html_report(result, path, query_text=SINGLE_QUERY)
        text = path.read_text(encoding="utf-8")
        assert text.startswith("<!DOCTYPE html>")
        assert "JUDGED BY" in text
