"""Tests for :mod:`repro.utils` (rng, timers, sparsetools, validation)."""

import time

import numpy as np
import pytest
from scipy import sparse

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.sparsetools import (
    as_dense_1d,
    csr_row_nnz,
    csr_storage_bytes,
    row_vector,
    sparse_row_bytes,
)
from repro.utils.timers import PhaseTimer, Stopwatch
from repro.utils.validation import (
    require,
    require_positive,
    require_probability,
    require_type,
)


class TestRng:
    def test_ensure_rng_from_int(self):
        first = ensure_rng(7)
        second = ensure_rng(7)
        assert first.integers(1000) == second.integers(1000)

    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_ensure_rng_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_spawn_rng_children_independent(self):
        parent = ensure_rng(0)
        children = spawn_rng(parent, 3)
        assert len(children) == 3
        draws = {tuple(c.integers(0, 100, 5)) for c in children}
        assert len(draws) == 3

    def test_spawn_rng_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(0), -1)


class TestStopwatch:
    def test_start_stop_accumulates(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.01)
        elapsed = watch.stop()
        assert elapsed >= 0.005
        assert not watch.running

    def test_double_start_rejected(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0


class TestPhaseTimer:
    def test_phase_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.005)
        with timer.phase("a"):
            pass
        assert timer.total("a") >= 0.004
        assert timer.counts["a"] == 2

    def test_unknown_phase_is_zero(self):
        assert PhaseTimer().total("missing") == 0.0

    def test_add_manual(self):
        timer = PhaseTimer()
        timer.add("x", 1.5)
        timer.add("x", 0.5)
        assert timer.total("x") == 2.0

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            PhaseTimer().add("x", -1.0)

    def test_merge(self):
        first = PhaseTimer()
        first.add("a", 1.0)
        second = PhaseTimer()
        second.add("a", 2.0)
        second.add("b", 3.0)
        first.merge(second)
        assert first.total("a") == 3.0
        assert first.total("b") == 3.0
        assert first.grand_total == 6.0

    def test_reset(self):
        timer = PhaseTimer()
        timer.add("a", 1.0)
        timer.reset()
        assert timer.grand_total == 0.0

    def test_exception_inside_phase_still_recorded(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("a"):
                raise RuntimeError("boom")
        assert timer.counts["a"] == 1


class TestSparseTools:
    @pytest.fixture()
    def matrix(self):
        return sparse.csr_matrix(np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 0.0]]))

    def test_row_vector(self, matrix):
        row = row_vector(matrix, 0)
        assert row.shape == (1, 3)
        assert row.nnz == 2

    def test_row_vector_out_of_range(self, matrix):
        with pytest.raises(IndexError):
            row_vector(matrix, 5)

    def test_csr_row_nnz(self, matrix):
        assert csr_row_nnz(matrix, 0) == 2
        assert csr_row_nnz(matrix, 1) == 0

    def test_csr_row_nnz_out_of_range(self, matrix):
        with pytest.raises(IndexError):
            csr_row_nnz(matrix, -1)

    def test_sparse_row_bytes(self):
        assert sparse_row_bytes(0) == 8
        assert sparse_row_bytes(10) == 10 * 12 + 8

    def test_sparse_row_bytes_negative(self):
        with pytest.raises(ValueError):
            sparse_row_bytes(-1)

    def test_csr_storage_bytes(self, matrix):
        expected = 2 * 12 + 3 * 8  # nnz * (8+4) + (rows+1) * 8
        assert csr_storage_bytes(matrix) == expected

    def test_as_dense_1d(self, matrix):
        np.testing.assert_allclose(as_dense_1d(matrix.getrow(0)), [1.0, 0.0, 2.0])
        np.testing.assert_allclose(as_dense_1d(np.array([1, 2])), [1.0, 2.0])


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_require_positive(self):
        require_positive(1.0, "x")
        with pytest.raises(ValueError):
            require_positive(0.0, "x")

    def test_require_probability(self):
        require_probability(0.0, "p")
        require_probability(1.0, "p")
        with pytest.raises(ValueError):
            require_probability(1.01, "p")

    def test_require_type(self):
        require_type("s", str, "x")
        require_type(1, (int, float), "x")
        with pytest.raises(TypeError, match="int, float"):
            require_type("s", (int, float), "x")
