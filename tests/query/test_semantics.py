"""Tests for :mod:`repro.query.semantics`."""

import pytest

from repro.exceptions import QuerySemanticError
from repro.hin.schema import bibliographic_schema
from repro.metapath.metapath import MetaPath
from repro.query.parser import parse_query, parse_set_expression
from repro.query.semantics import member_type_of, validate_query


@pytest.fixture()
def schema():
    return bibliographic_schema()


def q(text):
    return parse_query(text)


class TestMemberTypeOf:
    def test_chain_member_type(self, schema):
        expression = parse_set_expression('venue{"EDBT"}.paper.author')
        assert member_type_of(schema, expression) == "author"

    def test_bare_type(self, schema):
        assert member_type_of(schema, parse_set_expression("author")) == "author"

    def test_illegal_chain_step(self, schema):
        expression = parse_set_expression('author{"X"}.venue')
        with pytest.raises(QuerySemanticError, match="author-venue"):
            member_type_of(schema, expression)

    def test_unknown_type(self, schema):
        expression = parse_set_expression('galaxy{"X"}')
        with pytest.raises(QuerySemanticError, match="unknown vertex type"):
            member_type_of(schema, expression)

    def test_set_operation_same_member_type(self, schema):
        expression = parse_set_expression(
            'venue{"A"}.paper.author UNION venue{"B"}.paper.author'
        )
        assert member_type_of(schema, expression) == "author"

    def test_set_operation_mismatched_types(self, schema):
        expression = parse_set_expression(
            'venue{"A"}.paper.author UNION venue{"B"}.paper'
        )
        with pytest.raises(QuerySemanticError, match="different member types"):
            member_type_of(schema, expression)

    def test_filtered_set_member_type(self, schema):
        expression = parse_set_expression(
            '(venue{"A"}.paper.author) AS A WHERE COUNT(A.paper) > 1'
        )
        assert member_type_of(schema, expression) == "author"


class TestWhereValidation:
    def test_alias_reference_ok(self, schema):
        expression = parse_set_expression(
            'venue{"A"}.paper.author AS A WHERE COUNT(A.paper) > 1'
        )
        member_type_of(schema, expression)

    def test_member_type_name_usable_without_alias(self, schema):
        expression = parse_set_expression(
            'venue{"A"}.paper.author WHERE COUNT(author.paper) > 1'
        )
        member_type_of(schema, expression)

    def test_unknown_alias_rejected(self, schema):
        expression = parse_set_expression(
            'venue{"A"}.paper.author AS A WHERE COUNT(B.paper) > 1'
        )
        with pytest.raises(QuerySemanticError, match="unknown alias"):
            member_type_of(schema, expression)

    def test_illegal_walk_rejected(self, schema):
        expression = parse_set_expression(
            'venue{"A"}.paper.author AS A WHERE COUNT(A.venue) > 1'
        )
        with pytest.raises(QuerySemanticError, match="WHERE walk"):
            member_type_of(schema, expression)

    def test_nested_boolean_conditions_validated(self, schema):
        expression = parse_set_expression(
            'venue{"A"}.paper.author AS A '
            "WHERE COUNT(A.paper) > 1 AND NOT COUNT(A.galaxy) > 1"
        )
        with pytest.raises(QuerySemanticError):
            member_type_of(schema, expression)


class TestValidateQuery:
    def test_valid_query(self, schema):
        validated = validate_query(
            schema,
            q(
                'FIND OUTLIERS FROM author{"X"}.paper.author '
                "JUDGED BY author.paper.venue TOP 10;"
            ),
        )
        assert validated.member_type == "author"
        assert validated.features[0].path == MetaPath.parse("author.paper.venue")

    def test_feature_weights_preserved(self, schema):
        validated = validate_query(
            schema,
            q(
                'FIND OUTLIERS FROM author{"X"}.paper.author '
                "JUDGED BY author.paper.venue: 2.0, author.paper.author TOP 10;"
            ),
        )
        assert [f.weight for f in validated.features] == [2.0, 1.0]

    def test_feature_must_start_at_member_type(self, schema):
        with pytest.raises(QuerySemanticError, match="must start at"):
            validate_query(
                schema,
                q(
                    'FIND OUTLIERS FROM author{"X"}.paper.author '
                    "JUDGED BY venue.paper.term TOP 10;"
                ),
            )

    def test_feature_with_illegal_step(self, schema):
        with pytest.raises(QuerySemanticError, match="feature meta-path"):
            validate_query(
                schema,
                q(
                    'FIND OUTLIERS FROM author{"X"}.paper.author '
                    "JUDGED BY author.venue TOP 10;"
                ),
            )

    def test_reference_member_type_must_match(self, schema):
        with pytest.raises(QuerySemanticError, match="share a member type"):
            validate_query(
                schema,
                q(
                    'FIND OUTLIERS FROM author{"X"}.paper.author '
                    'COMPARED TO venue{"KDD"}.paper '
                    "JUDGED BY author.paper.venue TOP 10;"
                ),
            )

    def test_reference_validated_too(self, schema):
        with pytest.raises(QuerySemanticError):
            validate_query(
                schema,
                q(
                    'FIND OUTLIERS FROM author{"X"}.paper.author '
                    'COMPARED TO galaxy{"KDD"}.paper.author '
                    "JUDGED BY author.paper.venue TOP 10;"
                ),
            )

    def test_table4_templates_validate(self, schema):
        from repro.query.templates import QUERY_TEMPLATES

        for template in QUERY_TEMPLATES:
            validate_query(schema, template.parse("Some Author"))
