"""Tests for :mod:`repro.query.parser`, including every example in the paper."""

import pytest

from repro.exceptions import QuerySyntaxError
from repro.query.ast import (
    BooleanCondition,
    Chain,
    Comparison,
    FeaturePath,
    FilteredSet,
    NotCondition,
    Query,
    SetOperation,
)
from repro.query.parser import parse_query, parse_set_expression


class TestPaperExampleQueries:
    """The three example queries of Section 4.3 must parse exactly."""

    def test_example1_christos_venues(self):
        query = parse_query(
            """
            FIND OUTLIERS
            FROM author{"Christos Faloutsos"}.paper.author
            JUDGED BY author.paper.venue
            TOP 10;
            """
        )
        assert query.candidates == Chain(
            types=("author", "paper", "author"), anchor="Christos Faloutsos"
        )
        assert query.reference is None
        assert query.features == (FeaturePath(("author", "paper", "venue")),)
        assert query.top_k == 10

    def test_example2_compared_to_kdd(self):
        query = parse_query(
            """
            FIND OUTLIERS
            FROM author{"Christos Faloutsos"}.paper.author
            COMPARED TO venue{"KDD"}.paper.author
            JUDGED BY author.paper.venue, author.paper.author
            TOP 10;
            """
        )
        assert query.reference == Chain(
            types=("venue", "paper", "author"), anchor="KDD"
        )
        assert len(query.features) == 2
        assert query.features[1] == FeaturePath(("author", "paper", "author"))

    def test_example3_sigmod_where_and_weights(self):
        query = parse_query(
            """
            FIND OUTLIERS
            FROM venue{"SIGMOD"}.paper.author AS A
                WHERE COUNT(A.paper) >= 5
            JUDGED BY
                author.paper.author,
                author.paper.term : 3.0
            TOP 50;
            """
        )
        candidates = query.candidates
        assert isinstance(candidates, Chain)
        assert candidates.alias == "A"
        assert candidates.where == Comparison(
            function="COUNT", alias="A", steps=("paper",), operator=">=", value=5.0
        )
        assert query.features == (
            FeaturePath(("author", "paper", "author"), 1.0),
            FeaturePath(("author", "paper", "term"), 3.0),
        )
        assert query.top_k == 50

    def test_table4_in_keyword_variant(self):
        """Table 4 templates use FIND OUTLIERS IN — accepted as FROM."""
        query = parse_query(
            'FIND OUTLIERS IN author{"x"}.paper.venue '
            "JUDGED BY venue.paper.term TOP 10;"
        )
        assert query.candidates == Chain(
            types=("author", "paper", "venue"), anchor="x"
        )


class TestClauseStructure:
    def test_semicolon_optional(self):
        text = 'FIND OUTLIERS FROM author{"x"}.paper.author JUDGED BY author.paper.venue TOP 5'
        assert parse_query(text).top_k == 5

    def test_top_clause_optional_defaults_to_10(self):
        text = 'FIND OUTLIERS FROM author{"x"}.paper.author JUDGED BY author.paper.venue;'
        assert parse_query(text).top_k == 10

    def test_missing_judged_by_rejected(self):
        with pytest.raises(QuerySyntaxError, match="JUDGED"):
            parse_query('FIND OUTLIERS FROM author{"x"}.paper.author TOP 5;')

    def test_missing_from_rejected(self):
        with pytest.raises(QuerySyntaxError, match="FROM or IN"):
            parse_query("FIND OUTLIERS JUDGED BY a.p TOP 5;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError, match="trailing"):
            parse_query(
                'FIND OUTLIERS FROM author{"x"}.paper.author '
                "JUDGED BY author.paper.venue TOP 5; extra"
            )

    def test_top_zero_rejected(self):
        with pytest.raises(QuerySyntaxError, match="positive"):
            parse_query(
                'FIND OUTLIERS FROM author{"x"}.paper.author '
                "JUDGED BY author.paper.venue TOP 0;"
            )

    def test_top_decimal_rejected(self):
        with pytest.raises(QuerySyntaxError, match="integer"):
            parse_query(
                'FIND OUTLIERS FROM author{"x"}.paper.author '
                "JUDGED BY author.paper.venue TOP 2.5;"
            )

    def test_compared_without_to_rejected(self):
        with pytest.raises(QuerySyntaxError, match="TO"):
            parse_query(
                'FIND OUTLIERS FROM author{"x"}.paper.author COMPARED '
                'venue{"KDD"}.paper.author JUDGED BY author.paper.venue;'
            )


class TestSetExpressions:
    def test_single_vertex_reference(self):
        expression = parse_set_expression('venue{"EDBT"}')
        assert expression == Chain(types=("venue",), anchor="EDBT")

    def test_bare_type_selects_all(self):
        assert parse_set_expression("author") == Chain(types=("author",))

    def test_unanchored_chain(self):
        assert parse_set_expression("venue.paper.author") == Chain(
            types=("venue", "paper", "author")
        )

    def test_union_paper_example(self):
        expression = parse_set_expression(
            'venue{"EDBT"}.paper.author UNION venue{"ICDE"}.paper.author'
        )
        assert isinstance(expression, SetOperation)
        assert expression.operator == "UNION"

    def test_intersect_paper_example(self):
        expression = parse_set_expression(
            'venue{"EDBT"}.paper.author INTERSECT venue{"ICDE"}.paper.author'
        )
        assert expression.operator == "INTERSECT"

    def test_except_supported(self):
        expression = parse_set_expression(
            'venue{"EDBT"}.paper.author EXCEPT venue{"ICDE"}.paper.author'
        )
        assert expression.operator == "EXCEPT"

    def test_set_operators_left_associative(self):
        expression = parse_set_expression("author UNION author INTERSECT author")
        assert expression.operator == "INTERSECT"
        assert expression.left.operator == "UNION"

    def test_parenthesized_grouping(self):
        expression = parse_set_expression("author UNION (author INTERSECT author)")
        assert expression.operator == "UNION"
        assert expression.right.operator == "INTERSECT"

    def test_parenthesized_with_alias_and_where(self):
        expression = parse_set_expression(
            '(venue{"A"}.paper.author UNION venue{"B"}.paper.author) AS A '
            "WHERE COUNT(A.paper) > 3"
        )
        assert isinstance(expression, FilteredSet)
        assert expression.alias == "A"
        assert isinstance(expression.where, Comparison)

    def test_redundant_parens_collapse(self):
        expression = parse_set_expression('(venue{"A"}.paper.author)')
        assert isinstance(expression, Chain)

    def test_unclosed_brace_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_set_expression('venue{"A".paper')

    def test_anchor_must_be_string(self):
        with pytest.raises(QuerySyntaxError, match="quoted"):
            parse_set_expression("venue{EDBT}")


class TestWhereConditions:
    def _candidates(self, where_text):
        expression = parse_set_expression(
            f'venue{{"V"}}.paper.author AS A WHERE {where_text}'
        )
        return expression.where

    def test_count_comparison(self):
        where = self._candidates("COUNT(A.paper) > 10")
        assert where == Comparison(
            function="COUNT", alias="A", steps=("paper",), operator=">", value=10.0
        )

    def test_paths_aggregate(self):
        where = self._candidates("PATHS(A.paper.venue) >= 2")
        assert where.function == "PATHS"
        assert where.steps == ("paper", "venue")

    def test_all_comparison_operators(self):
        for op in (">", ">=", "<", "<=", "=", "!="):
            where = self._candidates(f"COUNT(A.paper) {op} 1")
            assert where.operator == op

    def test_synonym_operators_normalized(self):
        assert self._candidates("COUNT(A.paper) == 1").operator == "="
        assert self._candidates("COUNT(A.paper) <> 1").operator == "!="

    def test_and_or_precedence(self):
        where = self._candidates(
            "COUNT(A.paper) > 1 OR COUNT(A.paper) < 5 AND COUNT(A.paper) != 3"
        )
        # AND binds tighter than OR.
        assert isinstance(where, BooleanCondition)
        assert where.operator == "OR"
        assert where.right.operator == "AND"

    def test_not_condition(self):
        where = self._candidates("NOT COUNT(A.paper) > 1")
        assert isinstance(where, NotCondition)

    def test_parenthesized_condition(self):
        where = self._candidates(
            "(COUNT(A.paper) > 1 OR COUNT(A.paper) < 5) AND COUNT(A.paper) != 3"
        )
        assert where.operator == "AND"
        assert where.left.operator == "OR"

    def test_count_without_steps_rejected(self):
        with pytest.raises(QuerySyntaxError, match="at least one"):
            self._candidates("COUNT(A) > 1")

    def test_missing_comparison_rejected(self):
        with pytest.raises(QuerySyntaxError):
            self._candidates("COUNT(A.paper)")


class TestFeatureClauses:
    def _features(self, text):
        return parse_query(
            f'FIND OUTLIERS FROM author{{"x"}}.paper.author JUDGED BY {text};'
        ).features

    def test_multiple_features(self):
        features = self._features("author.paper.venue, author.paper.author")
        assert len(features) == 2

    def test_weight_syntax(self):
        features = self._features("author.paper.venue: 2.0, author.paper.author")
        assert features[0].weight == 2.0
        assert features[1].weight == 1.0

    def test_single_type_feature_rejected(self):
        with pytest.raises(QuerySyntaxError, match="two vertex types"):
            self._features("author")

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(QuerySyntaxError, match="positive"):
            self._features("author.paper.venue: 0")


class TestAstInvariants:
    def test_query_requires_features(self):
        with pytest.raises(ValueError):
            Query(candidates=Chain(types=("a",)), features=())

    def test_query_requires_positive_top_k(self):
        with pytest.raises(ValueError):
            Query(
                candidates=Chain(types=("a",)),
                features=(FeaturePath(("a", "p")),),
                top_k=-1,
            )

    def test_chain_requires_types(self):
        with pytest.raises(ValueError):
            Chain(types=())

    def test_comparison_requires_steps(self):
        with pytest.raises(ValueError):
            Comparison(function="COUNT", alias="A", steps=(), operator=">", value=1)
