"""Tests for attribute predicates in WHERE clauses (``A.year >= 2000``)."""

import pytest

from repro.engine.evaluator import SetEvaluator
from repro.engine.strategies import BaselineStrategy
from repro.exceptions import QuerySemanticError, QuerySyntaxError
from repro.hin.bibliographic import BibliographicNetworkBuilder, Publication
from repro.hin.schema import bibliographic_schema
from repro.query.ast import AttributeComparison
from repro.query.formatter import format_condition, format_query
from repro.query.parser import parse_query, parse_set_expression
from repro.query.semantics import member_type_of, validate_query


@pytest.fixture()
def dated_network():
    """Papers with year attributes, for WHERE-based temporal slicing."""
    builder = BibliographicNetworkBuilder()
    builder.add_publications(
        [
            Publication("old1", ["Ava"], "KDD", terms=["t"], year=1995),
            Publication("old2", ["Liam"], "KDD", terms=["t"], year=1999),
            Publication("new1", ["Ava"], "ICDE", terms=["t"], year=2010),
            Publication("new2", ["Zoe"], "ICDE", terms=["t"], year=2012),
            Publication("untitled", ["Zoe"], "KDD", terms=["t"]),  # no year
        ]
    )
    return builder.build()


class TestParsing:
    def test_numeric_attribute_comparison(self):
        expression = parse_set_expression("paper AS P WHERE P.year >= 2000")
        assert expression.where == AttributeComparison(
            alias="P", attribute="year", operator=">=", value=2000.0
        )

    def test_string_attribute_comparison(self):
        expression = parse_set_expression('paper AS P WHERE P.title = "Graphs"')
        assert expression.where == AttributeComparison(
            alias="P", attribute="title", operator="=", value="Graphs"
        )

    def test_string_with_inequality_rejected(self):
        with pytest.raises(QuerySyntaxError, match="string attributes"):
            parse_set_expression('paper AS P WHERE P.title > "Graphs"')

    def test_mixed_with_count_conditions(self):
        expression = parse_set_expression(
            "author AS A WHERE COUNT(A.paper) > 1 AND A.seniority >= 5"
        )
        assert expression.where.operator == "AND"

    def test_synonym_operators_normalized(self):
        expression = parse_set_expression("paper AS P WHERE P.year <> 2000")
        assert expression.where.operator == "!="


class TestFormatting:
    def test_numeric_round_trip(self):
        text = "paper AS P WHERE P.year >= 2000"
        expression = parse_set_expression(text)
        assert parse_set_expression(
            f"paper AS P WHERE {format_condition(expression.where)}"
        ).where == expression.where

    def test_string_round_trip_with_escaping(self):
        expression = parse_set_expression('paper AS P WHERE P.title = "a \\"b\\""')
        rendered = format_condition(expression.where)
        assert parse_set_expression(f"paper AS P WHERE {rendered}").where == (
            expression.where
        )

    def test_full_query_round_trip(self):
        text = (
            'FIND OUTLIERS FROM venue{"KDD"}.paper AS P WHERE P.year >= 2000 '
            "JUDGED BY paper.term TOP 5;"
        )
        query = parse_query(text)
        assert parse_query(format_query(query)) == query


class TestSemantics:
    def test_alias_validated(self):
        schema = bibliographic_schema()
        expression = parse_set_expression("paper AS P WHERE Q.year > 2000")
        with pytest.raises(QuerySemanticError, match="unknown alias"):
            member_type_of(schema, expression)

    def test_member_type_name_usable(self):
        schema = bibliographic_schema()
        expression = parse_set_expression("paper WHERE paper.year > 2000")
        assert member_type_of(schema, expression) == "paper"

    def test_validates_in_full_query(self):
        schema = bibliographic_schema()
        query = parse_query(
            "FIND OUTLIERS FROM paper AS P WHERE P.year >= 2000 "
            "JUDGED BY paper.term TOP 5;"
        )
        assert validate_query(schema, query).member_type == "paper"


class TestEvaluation:
    def _papers(self, network, where):
        evaluator = SetEvaluator(BaselineStrategy(network))
        expression = parse_set_expression(f"paper AS P WHERE {where}")
        __, members = evaluator.evaluate(expression)
        names = network.vertex_names("paper")
        return {names[i] for i in members}

    def test_numeric_filter(self, dated_network):
        assert self._papers(dated_network, "P.year >= 2000") == {"new1", "new2"}

    def test_missing_attribute_fails_predicate(self, dated_network):
        papers = self._papers(dated_network, "P.year < 3000")
        assert "untitled" not in papers
        assert len(papers) == 4

    def test_not_inverts_null_semantics_too(self, dated_network):
        """NOT (year < 3000) keeps the yearless paper: NOT of False."""
        papers = self._papers(dated_network, "NOT P.year < 3000")
        assert papers == {"untitled"}

    def test_string_equality(self, dated_network):
        # Titles are stored only when provided; use year-less paper names.
        papers = self._papers(dated_network, 'P.title = "nothing"')
        assert papers == set()

    def test_type_mismatch_fails(self, dated_network):
        # year is numeric; comparing as string fails every row.
        assert self._papers(dated_network, 'P.year = "1995"') == set()

    def test_combined_walk_and_attribute(self, dated_network):
        evaluator = SetEvaluator(BaselineStrategy(dated_network))
        expression = parse_set_expression(
            'venue{"KDD"}.paper AS P WHERE P.year <= 1999'
        )
        __, members = evaluator.evaluate(expression)
        names = dated_network.vertex_names("paper")
        assert {names[i] for i in members} == {"old1", "old2"}

    def test_end_to_end_query(self, dated_network):
        """Temporal slicing inside a full outlier query."""
        from repro.engine.detector import OutlierDetector

        detector = OutlierDetector(dated_network)
        result = detector.detect(
            "FIND OUTLIERS FROM paper AS P WHERE P.year >= 2000 "
            "JUDGED BY paper.venue TOP 2;"
        )
        assert set(result.names()) <= {"new1", "new2"}
