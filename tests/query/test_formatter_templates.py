"""Tests for :mod:`repro.query.formatter` and :mod:`repro.query.templates`."""

import pytest

from repro.query.formatter import format_condition, format_query, format_set_expression
from repro.query.parser import parse_query, parse_set_expression
from repro.query.templates import (
    QUERY_TEMPLATES,
    TEMPLATE_Q1,
    TEMPLATE_Q2,
    TEMPLATE_Q3,
)


def round_trip_query(text):
    first = parse_query(text)
    rendered = format_query(first)
    second = parse_query(rendered)
    assert second == first, f"round-trip changed the AST:\n{rendered}"
    return rendered


def round_trip_set(text):
    first = parse_set_expression(text)
    rendered = format_set_expression(first)
    second = parse_set_expression(rendered)
    assert second == first, f"round-trip changed the AST:\n{rendered}"
    return rendered


class TestQueryRoundTrips:
    def test_example1(self):
        round_trip_query(
            'FIND OUTLIERS FROM author{"Christos Faloutsos"}.paper.author '
            "JUDGED BY author.paper.venue TOP 10;"
        )

    def test_example2(self):
        round_trip_query(
            'FIND OUTLIERS FROM author{"C"}.paper.author '
            'COMPARED TO venue{"KDD"}.paper.author '
            "JUDGED BY author.paper.venue, author.paper.author TOP 10;"
        )

    def test_example3_with_where_and_weights(self):
        round_trip_query(
            'FIND OUTLIERS FROM venue{"SIGMOD"}.paper.author AS A '
            "WHERE COUNT(A.paper) >= 5 "
            "JUDGED BY author.paper.author, author.paper.term: 3.0 TOP 50;"
        )

    def test_anchor_with_quotes_escaped(self):
        rendered = round_trip_query(
            'FIND OUTLIERS FROM author{"A \\"quoted\\" name"}.paper.author '
            "JUDGED BY author.paper.venue TOP 3;"
        )
        assert '\\"quoted\\"' in rendered

    def test_in_keyword_normalized_to_from(self):
        rendered = round_trip_query(
            'FIND OUTLIERS IN author{"x"}.paper.venue '
            "JUDGED BY venue.paper.term TOP 10;"
        )
        assert "FROM" in rendered

    def test_default_top_k_rendered_explicitly(self):
        rendered = round_trip_query(
            'FIND OUTLIERS FROM author{"x"}.paper.author JUDGED BY author.paper.venue;'
        )
        assert "TOP 10;" in rendered


class TestSetExpressionRoundTrips:
    @pytest.mark.parametrize(
        "text",
        [
            'venue{"EDBT"}',
            "author",
            'venue{"EDBT"}.paper.author',
            'venue{"A"}.paper.author UNION venue{"B"}.paper.author',
            'venue{"A"}.paper.author INTERSECT venue{"B"}.paper.author EXCEPT author',
            'author UNION (author INTERSECT author)',
            '(venue{"A"}.paper.author) AS A WHERE COUNT(A.paper) > 3',
            'venue{"A"}.paper.author AS X WHERE COUNT(X.paper) > 1 AND '
            "PATHS(X.paper.venue) <= 7",
            'author WHERE NOT (COUNT(author.paper) > 1 OR COUNT(author.paper) < 5)',
        ],
    )
    def test_round_trip(self, text):
        round_trip_set(text)

    def test_or_under_and_parenthesized(self):
        rendered = round_trip_set(
            'author WHERE (COUNT(author.paper) > 1 OR COUNT(author.paper) < 5) '
            "AND COUNT(author.paper) != 3"
        )
        assert "(" in rendered


class TestConditionFormatting:
    def test_integer_values_render_without_decimal(self):
        condition = parse_set_expression(
            'author AS A WHERE COUNT(A.paper) > 10'
        ).where
        assert format_condition(condition) == "COUNT(A.paper) > 10"

    def test_float_values_preserved(self):
        condition = parse_set_expression(
            'author AS A WHERE PATHS(A.paper) >= 2.5'
        ).where
        assert format_condition(condition) == "PATHS(A.paper) >= 2.5"


class TestTemplates:
    def test_three_templates_in_paper_order(self):
        assert [t.name for t in QUERY_TEMPLATES] == ["Q1", "Q2", "Q3"]

    def test_q1_shape(self):
        query = TEMPLATE_Q1.parse("Jane Roe")
        assert query.candidates.anchor == "Jane Roe"
        assert query.candidates.types == ("author", "paper", "author")
        assert query.features[0].types == ("author", "paper", "venue")
        assert query.top_k == 10

    def test_q2_shape(self):
        query = TEMPLATE_Q2.parse("Jane Roe")
        assert query.candidates.types == ("author", "paper", "venue")
        assert query.features[0].types == ("venue", "paper", "term")

    def test_q3_shape(self):
        query = TEMPLATE_Q3.parse("Jane Roe")
        assert query.candidates.types == ("author", "paper", "term")
        assert query.features[0].types == ("term", "paper", "venue")

    def test_render_escapes_quotes(self):
        text = TEMPLATE_Q1.render('O"Brien')
        query = parse_query(text)
        assert query.candidates.anchor == 'O"Brien'

    def test_render_escapes_backslashes(self):
        text = TEMPLATE_Q1.render("back\\slash")
        query = parse_query(text)
        assert query.candidates.anchor == "back\\slash"
