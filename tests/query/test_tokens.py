"""Tests for :mod:`repro.query.tokens`."""

import pytest

from repro.exceptions import QuerySyntaxError
from repro.query.tokens import Token, TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestKeywordsAndIdentifiers:
    def test_keywords_case_insensitive(self):
        for text in ("FIND", "find", "Find", "fInD"):
            token = tokenize(text)[0]
            assert token.type is TokenType.KEYWORD
            assert token.value == "FIND"

    def test_identifiers_case_sensitive(self):
        token = tokenize("Author")[0]
        assert token.type is TokenType.IDENT
        assert token.value == "Author"

    def test_identifier_with_underscore_and_digits(self):
        token = tokenize("vertex_type_2")[0]
        assert token.type is TokenType.IDENT
        assert token.value == "vertex_type_2"

    def test_all_clause_keywords(self):
        text = "FIND OUTLIERS FROM COMPARED TO JUDGED BY TOP AS WHERE"
        assert all(t is TokenType.KEYWORD for t in kinds(text)[:-1])


class TestStrings:
    def test_simple_string(self):
        token = tokenize('"Christos Faloutsos"')[0]
        assert token.type is TokenType.STRING
        assert token.value == "Christos Faloutsos"

    def test_escaped_quote(self):
        token = tokenize(r'"say \"hi\""')[0]
        assert token.value == 'say "hi"'

    def test_escaped_backslash(self):
        token = tokenize(r'"a\\b"')[0]
        assert token.value == "a\\b"

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError, match="unterminated"):
            tokenize('"open')

    def test_unterminated_escape(self):
        with pytest.raises(QuerySyntaxError, match="escape"):
            tokenize('"trailing\\')

    def test_string_may_contain_dots_and_braces(self):
        token = tokenize('"a.b{c}"')[0]
        assert token.value == "a.b{c}"


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == "42"

    def test_decimal(self):
        token = tokenize("2.5")[0]
        assert token.value == "2.5"

    def test_integer_followed_by_dot_operator(self):
        # "10.paper" must lex as NUMBER(10), DOT, IDENT(paper).
        tokens = tokenize("10.paper")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.NUMBER,
            TokenType.DOT,
            TokenType.IDENT,
        ]


class TestOperatorsAndPunctuation:
    def test_two_char_operators_win(self):
        assert values(">= <= != <> ==") == [">=", "<=", "!=", "<>", "=="]

    def test_single_char_operators(self):
        assert values("> < =") == [">", "<", "="]

    def test_punctuation(self):
        assert kinds(".,:;(){}")[:-1] == [
            TokenType.DOT,
            TokenType.COMMA,
            TokenType.COLON,
            TokenType.SEMICOLON,
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.LBRACE,
            TokenType.RBRACE,
        ]

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError, match="unexpected character"):
            tokenize("author @ paper")


class TestStructure:
    def test_end_token_always_present(self):
        assert tokenize("")[-1].type is TokenType.END
        assert tokenize("FIND")[-1].type is TokenType.END

    def test_whitespace_and_newlines_skipped(self):
        assert kinds("  FIND\n\tOUTLIERS ")[:-1] == [TokenType.KEYWORD] * 2

    def test_sql_style_comment_skipped(self):
        tokens = tokenize("FIND -- a comment\nOUTLIERS")
        assert [t.value for t in tokens[:-1]] == ["FIND", "OUTLIERS"]

    def test_full_query_token_stream(self):
        text = 'FIND OUTLIERS FROM author{"X"}.paper.author JUDGED BY author.paper.venue TOP 10;'
        tokens = tokenize(text)
        assert tokens[-1].type is TokenType.END
        # FIND, OUTLIERS, FROM, JUDGED, BY, TOP.
        assert sum(t.type is TokenType.KEYWORD for t in tokens) == 6

    def test_positions_recorded(self):
        tokens = tokenize("FIND OUTLIERS")
        assert tokens[0].position == 0
        assert tokens[1].position == 5

    def test_is_keyword_helper(self):
        token = tokenize("FROM")[0]
        assert token.is_keyword("FROM")
        assert not token.is_keyword("TO")
        assert not Token(TokenType.IDENT, "FROM", 0).is_keyword("FROM")
