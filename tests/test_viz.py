"""Tests for :mod:`repro.viz` (terminal visualization, paper §8)."""

import numpy as np
import pytest

from repro.engine.executor import QueryExecutor
from repro.engine.strategies import BaselineStrategy
from repro.exceptions import ReproError
from repro.hin.network import VertexId
from repro.metapath.metapath import MetaPath
from repro.viz import histogram, profile_comparison, score_distribution, sparkline


class TestSparkline:
    def test_monotone_sequence(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_constant_sequence(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_preserved(self):
        values = np.random.default_rng(0).normal(size=37)
        assert len(sparkline(values)) == 37


class TestHistogram:
    def test_counts_sum_to_input_size(self):
        values = np.random.default_rng(1).normal(size=100)
        text = histogram(values, bins=8)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in text.splitlines()]
        assert sum(counts) == 100
        assert len(counts) == 8

    def test_empty(self):
        assert histogram([]) == "(no data)"

    def test_invalid_bins(self):
        with pytest.raises(ReproError):
            histogram([1.0], bins=0)

    def test_single_value(self):
        text = histogram([3.0, 3.0], bins=4)
        assert "2" in text


class TestScoreDistribution:
    @pytest.fixture()
    def result(self, figure1):
        return QueryExecutor(BaselineStrategy(figure1)).execute(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 2;"
        )

    def test_mentions_candidates_and_topk(self, result):
        text = score_distribution(result)
        assert "3 candidates" in text
        assert "top-2" in text

    def test_outlier_bins_marked(self, result):
        text = score_distribution(result)
        assert any(line.startswith("*") for line in text.splitlines()[1:])

    def test_empty_result(self):
        from repro.core.results import OutlierResult

        empty = OutlierResult(
            outliers=[], scores={}, candidate_count=0, reference_count=0
        )
        assert score_distribution(empty) == "(no candidates)"


class TestProfileComparison:
    def test_shows_dominant_dimensions(self, figure2):
        strategy = BaselineStrategy(figure2)
        jim = figure2.find_vertex("author", "Jim")
        mary = figure2.find_vertex("author", "Mary")
        text = profile_comparison(
            strategy,
            MetaPath.parse("author.paper.venue"),
            jim,
            [mary.index],
        )
        assert "Jim" in text
        for venue in ("V1", "V2", "V3"):
            assert venue in text

    def test_wrong_vertex_type_rejected(self, figure2):
        strategy = BaselineStrategy(figure2)
        kdd = figure2.find_vertex("venue", "V1")
        with pytest.raises(ReproError, match="source"):
            profile_comparison(
                strategy, MetaPath.parse("author.paper.venue"), kdd, [0]
            )

    def test_zero_profile_vertex(self, figure1):
        lonely = figure1.add_vertex("author", "Lonely")
        strategy = BaselineStrategy(figure1)
        zoe = figure1.find_vertex("author", "Zoe")
        text = profile_comparison(
            strategy,
            MetaPath.parse("author.paper.venue"),
            lonely,
            [zoe.index],
        )
        assert "Lonely" in text

    def test_top_dimensions_cap(self, figure2):
        strategy = BaselineStrategy(figure2)
        jim = figure2.find_vertex("author", "Jim")
        text = profile_comparison(
            strategy,
            MetaPath.parse("author.paper.venue"),
            jim,
            [0],
            top_dimensions=2,
        )
        # Header (2 lines) + 2 dimension rows.
        assert len(text.splitlines()) == 4
