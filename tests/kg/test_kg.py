"""Tests for :mod:`repro.kg` (open-schema knowledge graphs, paper §8)."""

import pytest

from repro.exceptions import ReproError
from repro.kg import KnowledgeGraph, movie_knowledge_graph
from repro.kg.triples import sanitize_identifier


class TestSanitize:
    def test_spaces_to_underscores(self):
        assert sanitize_identifier("acted in") == "acted_in"

    def test_namespace_colon(self):
        assert sanitize_identifier("rdf:type") == "rdf_type"

    def test_leading_digit_prefixed(self):
        assert sanitize_identifier("3d model") == "t_3d_model"

    def test_case_lowered(self):
        assert sanitize_identifier("ActedIn") == "actedin"

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            sanitize_identifier("!!!")


class TestKnowledgeGraph:
    @pytest.fixture()
    def small_kg(self):
        kg = KnowledgeGraph()
        kg.add_triples(
            [
                ("Tom", "type", "person"),
                ("Ann", "type", "person"),
                ("Heat", "type", "movie"),
                ("Tom", "acted in", "Heat"),
                ("Ann", "acted in", "Heat"),
                ("Ann", "directed", "Heat"),
            ]
        )
        return kg

    def test_type_declarations_not_data_triples(self, small_kg):
        assert small_kg.triple_count == 3

    def test_entity_type_inference(self, small_kg):
        assert small_kg.entity_type("Tom") == "person"
        assert small_kg.entity_type("Heat") == "movie"

    def test_untyped_entities_get_default(self, small_kg):
        small_kg.add("Tom", "lives in", "LA")
        assert small_kg.entity_type("LA") == "entity"

    def test_conflicting_types_rejected(self, small_kg):
        with pytest.raises(ReproError, match="conflicting"):
            small_kg.add("Tom", "type", "movie")

    def test_empty_fields_rejected(self):
        with pytest.raises(ReproError):
            KnowledgeGraph().add("", "p", "o")

    def test_predicates_sanitized(self, small_kg):
        assert small_kg.predicates() == {"acted_in", "directed"}

    def test_from_text(self):
        kg = KnowledgeGraph.from_text(
            "# a comment\n"
            "Tom\ttype\tperson\n"
            "Heat\ttype\tmovie\n"
            "Tom\tacted in\tHeat\n"
        )
        assert kg.triple_count == 1
        assert kg.entity_type("Tom") == "person"

    def test_from_text_malformed_line(self):
        with pytest.raises(ReproError, match="line 1"):
            KnowledgeGraph.from_text("just two\tfields\n")


class TestReifiedConversion:
    @pytest.fixture()
    def network(self):
        kg = KnowledgeGraph()
        kg.add_triples(
            [
                ("Tom", "type", "person"),
                ("Ann", "type", "person"),
                ("Heat", "type", "movie"),
                ("Tom", "acted in", "Heat"),
                ("Ann", "acted in", "Heat"),
                ("Ann", "directed", "Heat"),
            ]
        )
        return kg.to_hin()

    def test_predicates_become_vertex_types(self, network):
        assert network.schema.has_vertex_type("acted_in")
        assert network.schema.has_vertex_type("directed")

    def test_statement_vertices_created(self, network):
        assert network.num_vertices("acted_in") == 2
        assert network.num_vertices("directed") == 1

    def test_metapath_through_predicate(self, network):
        """person.acted_in.movie counts acting credits."""
        from repro.metapath.counting import count_path_instances
        from repro.metapath.metapath import MetaPath

        tom = network.find_vertex("person", "Tom")
        heat = network.find_vertex("movie", "Heat")
        path = MetaPath.parse("person.acted_in.movie")
        assert count_path_instances(network, path, tom, heat) == 1.0

    def test_distinct_predicates_distinguishable(self, network):
        """directed and acted_in paths count different things."""
        from repro.metapath.counting import count_path_instances
        from repro.metapath.metapath import MetaPath

        ann = network.find_vertex("person", "Ann")
        heat = network.find_vertex("movie", "Heat")
        acted = count_path_instances(
            network, MetaPath.parse("person.acted_in.movie"), ann, heat
        )
        directed = count_path_instances(
            network, MetaPath.parse("person.directed.movie"), ann, heat
        )
        assert acted == 1.0 and directed == 1.0
        tom = network.find_vertex("person", "Tom")
        assert count_path_instances(
            network, MetaPath.parse("person.directed.movie"), tom, heat
        ) == 0.0

    def test_predicate_type_collision_rejected(self):
        kg = KnowledgeGraph()
        kg.add("X", "type", "person")
        kg.add("Y", "type", "person")
        kg.add("X", "person", "Y")  # predicate named like a type
        with pytest.raises(ReproError, match="collide"):
            kg.to_hin()


class TestDirectConversion:
    def test_direct_edges(self):
        kg = KnowledgeGraph()
        kg.add("Tom", "type", "person")
        kg.add("Heat", "type", "movie")
        kg.add("Tom", "acted in", "Heat")
        network = kg.to_hin(reify_predicates=False)
        assert not network.schema.has_vertex_type("acted_in")
        tom = network.find_vertex("person", "Tom")
        assert network.degree(tom, "movie") == 1.0

    def test_predicates_merge(self):
        kg = KnowledgeGraph()
        kg.add("Ann", "type", "person")
        kg.add("Heat", "type", "movie")
        kg.add("Ann", "acted in", "Heat")
        kg.add("Ann", "directed", "Heat")
        network = kg.to_hin(reify_predicates=False)
        ann = network.find_vertex("person", "Ann")
        assert network.degree(ann, "movie") == 2.0


class TestMovieDemo:
    @pytest.fixture(scope="class")
    def corpus(self):
        return movie_knowledge_graph(seed=3)

    def test_deterministic(self):
        first = movie_knowledge_graph(seed=5)
        second = movie_knowledge_graph(seed=5)
        assert list(first.graph.triples()) == list(second.graph.triples())

    def test_planted_outlier_found_by_query(self, corpus):
        """The §8 end goal: outlier queries run on a knowledge graph."""
        from repro.engine.detector import OutlierDetector

        network = corpus.graph.to_hin()
        detector = OutlierDetector(network, strategy="pm")
        # Candidates: co-actors of a drama cluster member; judged by the
        # genres of the movies they act in.
        anchor = corpus.cluster_actors[0]
        result = detector.detect(
            f'FIND OUTLIERS FROM movie{{"Drama Movie 00"}}.acted_in.person '
            "JUDGED BY person.acted_in.movie.has_genre.genre "
            "TOP 1;"
        )
        assert result.names() == [corpus.outlier_actor]
