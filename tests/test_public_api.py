"""Public API surface integrity.

Guards against re-export drift: everything a package advertises in
``__all__`` must actually be importable from it, carry a docstring, and the
top-level package must expose the documented entry points.
"""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.hin",
    "repro.metapath",
    "repro.query",
    "repro.core",
    "repro.engine",
    "repro.baselines",
    "repro.datagen",
    "repro.relational",
    "repro.kg",
    "repro.service",
    "repro.utils",
    "repro.zoo",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} has no __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} is advertised "
        "in __all__ but not importable"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_callables_have_docstrings(package_name):
    package = importlib.import_module(package_name)
    import typing

    undocumented = []
    for name in package.__all__:
        obj = getattr(package, name)
        if isinstance(obj, type(typing.Union[int, str])):
            continue  # typing aliases cannot carry docstrings
        if callable(obj) and not isinstance(obj, type(repro)):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, (
        f"{package_name} exports without docstrings: {undocumented}"
    )


def test_every_module_has_a_docstring():
    missing = []
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(module_info.name)
        if not (module.__doc__ or "").strip():
            missing.append(module_info.name)
    assert not missing, f"modules without docstrings: {missing}"


def test_documented_entry_points_exist():
    """The README's headline API must exist under these exact names."""
    from repro import (  # noqa: F401
        HIN,
        MetaPath,
        NetOutMeasure,
        OutlierDetector,
        ProgressiveQueryExecutor,
        QueryAdvisor,
        parse_query,
        register_measure,
    )
    from repro.datagen import hub_ego_corpus  # noqa: F401
    from repro.engine import CachingStrategy, LatencyReport  # noqa: F401
    from repro.hin import from_networkx, slice_by_attribute  # noqa: F401
    from repro.kg import KnowledgeGraph  # noqa: F401
    from repro.relational import database_to_hin  # noqa: F401
    from repro.report import write_html_report  # noqa: F401
    from repro.service import EngineHandle, QueryService  # noqa: F401
    from repro.viz import score_distribution  # noqa: F401


def test_version_is_pep440ish():
    assert repro.__version__.count(".") == 2
    assert all(part.isdigit() for part in repro.__version__.split("."))
