"""File-backed shared segments: the mmap-tier alternative to /dev/shm.

POSIX shared memory lives in a tmpfs whose budget (typically half of RAM)
is exactly what the large-graph tier is trying to escape; ``backing="file"``
writes the same 64-byte-aligned segment layout to an ordinary file and maps
it read-only.  These tests pin the contract: identical views, pickling
manifests across processes, tamper detection, cleanup, and the process
backend running end to end on file-backed segments.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.service import shm


def _arrays():
    return {
        "a:data": np.arange(11, dtype=np.float64),
        "a:indices": np.arange(11, dtype=np.int32),
        "empty": np.empty(0, dtype=np.float64),
    }


class TestFileBackedSegments:
    def test_export_attach_roundtrip(self, tmp_path):
        segment = shm.export_arrays(
            _arrays(), name_hint="t", backing="file", directory=str(tmp_path)
        )
        try:
            assert os.path.exists(segment.manifest.segment)
            assert segment.manifest.backing == "file"
            # The manifest travels by pickle (spawn-context worker args).
            manifest = pickle.loads(pickle.dumps(segment.manifest))
            attached, views = shm.attach_arrays(manifest)
            np.testing.assert_array_equal(views["a:data"], _arrays()["a:data"])
            assert views["empty"].size == 0
            with pytest.raises((ValueError, TypeError)):
                views["a:data"][0] = 99.0  # read-only mapping
            del views
            attached.close()
        finally:
            segment.close()
            segment.unlink()
        assert not os.path.exists(segment.manifest.segment)

    def test_attach_missing_file_raises(self, tmp_path):
        segment = shm.export_arrays(
            _arrays(), name_hint="t", backing="file", directory=str(tmp_path)
        )
        manifest = segment.manifest
        segment.close()
        segment.unlink()
        with pytest.raises(ServiceError, match="gone"):
            shm.attach_arrays(manifest)

    def test_tamper_detection(self, tmp_path):
        segment = shm.export_arrays(
            _arrays(), name_hint="t", backing="file", directory=str(tmp_path)
        )
        try:
            path = segment.manifest.segment
            with open(path, "r+b") as handle:
                handle.seek(0)
                handle.write(b"\xff\xff\xff\xff")
            with pytest.raises(ServiceError, match="fingerprint"):
                shm.attach_arrays(segment.manifest)
        finally:
            segment.close()
            segment.unlink()

    def test_invalid_backing_rejected(self):
        with pytest.raises(ServiceError, match="backing"):
            shm.export_arrays(_arrays(), backing="carrier-pigeon")

    def test_legacy_manifest_defaults_to_shm(self):
        segment = shm.export_arrays(_arrays(), name_hint="t")
        try:
            assert segment.manifest.backing == "shm"
            attached, views = shm.attach_arrays(segment.manifest)
            np.testing.assert_array_equal(views["a:data"], _arrays()["a:data"])
            del views
            attached.close()
        finally:
            segment.close()
            segment.unlink()


class TestServiceConfigStorage:
    def test_segment_backing_derivation(self):
        from repro.service.config import ServiceConfig

        assert ServiceConfig().segment_backing == "shm"
        assert ServiceConfig(storage="mmap").segment_backing == "file"

    def test_invalid_storage_rejected(self):
        from repro.exceptions import ServiceError
        from repro.service.config import ServiceConfig

        with pytest.raises(ServiceError):
            ServiceConfig(storage="tape")
        with pytest.raises(ServiceError):
            ServiceConfig(index_build_block_rows=0)
        with pytest.raises(ServiceError):
            ServiceConfig(max_build_memory_mb=-1.0)
