"""Tests for :mod:`repro.service.admission` — bounded typed load shedding."""

import threading

import pytest

from repro import faultinject
from repro.exceptions import ServiceError, ServiceOverloadedError
from repro.service.admission import AdmissionController


class TestBudget:
    def test_admits_up_to_capacity(self):
        controller = AdmissionController(capacity=3)
        for _ in range(3):
            controller.admit()
        assert controller.in_flight == 3

    def test_sheds_beyond_capacity(self):
        controller = AdmissionController(capacity=2)
        controller.admit()
        controller.admit()
        with pytest.raises(ServiceOverloadedError) as excinfo:
            controller.admit()
        assert excinfo.value.queued == 2
        assert excinfo.value.capacity == 2

    def test_release_frees_a_slot(self):
        controller = AdmissionController(capacity=1)
        controller.admit()
        with pytest.raises(ServiceOverloadedError):
            controller.admit()
        controller.release()
        controller.admit()  # works again
        assert controller.in_flight == 1

    def test_release_without_admit_is_a_bug(self):
        controller = AdmissionController(capacity=1)
        with pytest.raises(ServiceError):
            controller.release()

    def test_invalid_capacity(self):
        with pytest.raises(ServiceError):
            AdmissionController(capacity=0)


class TestRetryHints:
    def test_default_hint_attached(self):
        controller = AdmissionController(capacity=1, retry_after_seconds=0.25)
        controller.admit()
        with pytest.raises(ServiceOverloadedError) as excinfo:
            controller.admit()
        assert excinfo.value.retry_after_seconds == 0.25

    def test_per_call_hint_overrides_default(self):
        controller = AdmissionController(capacity=1, retry_after_seconds=0.25)
        controller.admit()
        with pytest.raises(ServiceOverloadedError) as excinfo:
            controller.admit(retry_after_seconds=1.5)
        assert excinfo.value.retry_after_seconds == 1.5


class TestCounters:
    def test_exact_accounting(self):
        controller = AdmissionController(capacity=2)
        controller.admit()
        controller.admit()
        for _ in range(3):
            with pytest.raises(ServiceOverloadedError):
                controller.admit()
        controller.release()
        controller.admit()
        snapshot = controller.snapshot()
        assert snapshot["admitted"] == 3
        assert snapshot["shed"] == 3
        assert snapshot["faulted"] == 0
        assert snapshot["in_flight"] == 2
        assert snapshot["peak_in_flight"] == 2
        assert snapshot["capacity"] == 2

    def test_counters_exact_under_contention(self):
        controller = AdmissionController(capacity=5)
        outcomes = []
        lock = threading.Lock()
        barrier = threading.Barrier(16)

        def contend():
            barrier.wait()
            try:
                controller.admit()
            except ServiceOverloadedError:
                with lock:
                    outcomes.append("shed")
            else:
                with lock:
                    outcomes.append("admitted")

        threads = [threading.Thread(target=contend) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count("admitted") == 5
        assert outcomes.count("shed") == 11
        assert controller.in_flight == 5


class TestFaultPoint:
    """Satellite: the ``service.enqueue`` fault point converts an injected
    queue stall into a typed shed, never a crash or a leaked slot."""

    def test_enqueue_fault_sheds_typed(self):
        controller = AdmissionController(capacity=4)
        with faultinject.inject(faultinject.FaultRule(point="service.enqueue")):
            with pytest.raises(ServiceOverloadedError) as excinfo:
                controller.admit()
        assert excinfo.value.retry_after_seconds > 0
        snapshot = controller.snapshot()
        assert snapshot["faulted"] == 1
        assert snapshot["shed"] == 1
        # The fault fired before the slot was claimed: no capacity leaked.
        assert snapshot["in_flight"] == 0
        controller.admit()  # recovers once the injection is gone

    def test_enqueue_is_a_registered_fault_point(self):
        assert "service.enqueue" in faultinject.FAULT_POINTS
