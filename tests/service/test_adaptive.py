"""Tests for :mod:`repro.service.adaptive` — observe → re-plan → hot-swap.

Four contracts, mirroring the module's two halves plus the swap machinery
they drive:

* :class:`TestWorkloadRecorder` — the bounded admission log: window
  semantics, JSONL spill, and spill errors counted rather than raised.
* :class:`TestReindexerControlLoop` — every skip reason is observable and
  the watermark advances so identical traffic never re-triggers a build.
* :class:`TestHotSwap` — the acceptance criterion on both backends:
  results stay byte-identical across a live index swap, the generation
  counters converge, and stats/healthz surface the new index metadata.
* :class:`TestChaos` — a worker killed around a swap never serves a torn
  index: the respawned worker attaches the *new* generation and answers
  match the pre-swap baseline exactly.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.exceptions import ServiceError
from repro.service import (
    QueryService,
    Reindexer,
    ServiceConfig,
    WorkloadRecorder,
)

QUERY_A = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 3;"
)
QUERY_B = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.author TOP 3;"
)
QUERY_C = "FIND OUTLIERS FROM venue JUDGED BY venue.paper.author TOP 2;"


def _adaptive_config(**overrides):
    defaults = dict(
        workers=2,
        adaptive=True,
        # A huge interval parks the background thread; tests drive cycles
        # deterministically through reindex_now().
        reindex_interval_seconds=3600.0,
        reindex_min_queries=2,
        subpath_cache_mb=8.0,
        cache_ttl_seconds=None,
        cache_max_entries=0,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# ----------------------------------------------------------------------
# WorkloadRecorder
# ----------------------------------------------------------------------
class TestWorkloadRecorder:
    def test_rejects_empty_window(self):
        with pytest.raises(ServiceError):
            WorkloadRecorder(max_entries=0)

    def test_window_is_bounded_but_total_is_not(self):
        recorder = WorkloadRecorder(max_entries=3)
        for position in range(7):
            recorder.record(f"q{position}")
        total, window = recorder.snapshot()
        assert total == 7
        assert window == ["q4", "q5", "q6"]
        stats = recorder.stats()
        assert stats["window_entries"] == 3
        assert stats["total_recorded"] == 7

    def test_spills_jsonl(self, tmp_path):
        spill = tmp_path / "admissions.jsonl"
        recorder = WorkloadRecorder(max_entries=8, spill_path=str(spill))
        recorder.record("q-one")
        recorder.record("q-two")
        recorder.close()
        lines = spill.read_text().splitlines()
        assert [json.loads(line)["query"] for line in lines] == [
            "q-one",
            "q-two",
        ]
        assert all("ts" in json.loads(line) for line in lines)

    def test_spill_errors_counted_not_raised(self, tmp_path):
        missing_dir = tmp_path / "does" / "not" / "exist" / "log.jsonl"
        recorder = WorkloadRecorder(max_entries=8, spill_path=str(missing_dir))
        recorder.record("q-one")  # must not raise
        assert recorder.stats()["spill_errors"] >= 1
        total, window = recorder.snapshot()
        assert total == 1 and window == ["q-one"]
        recorder.close()


# ----------------------------------------------------------------------
# Reindexer control loop (thread backend; cycles driven synchronously)
# ----------------------------------------------------------------------
class TestReindexerControlLoop:
    def test_adaptive_requires_spm_strategy(self, figure1):
        with pytest.raises(ServiceError):
            QueryService.from_network(
                figure1, _adaptive_config(), strategy="pm"
            )

    def test_non_adaptive_service_has_no_loop(self, figure1):
        config = ServiceConfig(workers=1, cache_max_entries=0)
        with QueryService.from_network(figure1, config, strategy="spm") as s:
            assert s.recorder is None and s.reindexer is None
            with pytest.raises(ServiceError):
                s.reindex_now()

    def test_skips_until_enough_new_queries(self, figure1):
        config = _adaptive_config(reindex_min_queries=5)
        with QueryService.from_network(figure1, config, strategy="spm") as s:
            s.execute(QUERY_A)
            assert s.reindex_now() is False
            assert s.reindexer.last_skip_reason == "too-few-new-queries"
            assert s.reindexer.skipped == 1

    def test_watermark_prevents_identical_retrigger(self, figure1):
        with QueryService.from_network(
            figure1, _adaptive_config(), strategy="spm"
        ) as s:
            for _ in range(3):
                s.execute(QUERY_A)
            assert s.reindex_now() is True
            # Same traffic, no new admissions: the watermark moved, so the
            # next cycle skips instead of rebuilding an identical index.
            assert s.reindex_now() is False
            assert s.reindexer.last_skip_reason == "too-few-new-queries"

    def test_unchanged_selection_skips(self, figure1):
        with QueryService.from_network(
            figure1, _adaptive_config(), strategy="spm"
        ) as s:
            for _ in range(3):
                s.execute(QUERY_A)
            assert s.reindex_now() is True
            for _ in range(3):
                s.execute(QUERY_A)  # same workload again
            assert s.reindex_now() is False
            assert s.reindexer.last_skip_reason == "selection-unchanged"
            assert s.reindexer.reindexes == 1

    def test_threshold_can_exclude_every_vertex(self, figure1):
        with QueryService.from_network(
            figure1, _adaptive_config(), strategy="spm"
        ) as s:
            s.reindexer.stop()
            # Relative frequencies never exceed 1, so a threshold above 1
            # leaves the ranking empty.
            loop = Reindexer(s, min_new_queries=1, spm_threshold=2.0)
            s.execute(QUERY_A)
            assert loop.run_once() is False
            assert loop.last_skip_reason == "no-hot-vertices"

    def test_budget_can_exclude_every_vertex(self, figure1):
        config = _adaptive_config(max_index_mb=1e-6)  # ~1 byte budget
        with QueryService.from_network(figure1, config, strategy="spm") as s:
            for _ in range(3):
                s.execute(QUERY_A)
            assert s.reindex_now() is False
            assert s.reindexer.last_skip_reason == "budget-excludes-all"

    def test_failed_cycle_counts_and_recovers(self, figure1):
        with QueryService.from_network(
            figure1, _adaptive_config(), strategy="spm"
        ) as s:
            for _ in range(3):
                s.execute(QUERY_A)
            original = s.apply_index_swap

            def explode(index):
                raise RuntimeError("injected swap failure")

            s.apply_index_swap = explode
            try:
                assert s.reindex_now() is False
            finally:
                s.apply_index_swap = original
            assert s.reindexer.failed == 1
            assert "injected swap failure" in s.reindexer.last_error
            # The loop keeps serving and the next cycle can still swap.
            for _ in range(3):
                s.execute(QUERY_B)
            s.execute(QUERY_A)

    def test_validation_rejects_bad_knobs(self, figure1):
        with QueryService.from_network(
            figure1, _adaptive_config(), strategy="spm"
        ) as s:
            s.reindexer.stop()
            with pytest.raises(ServiceError):
                Reindexer(s, interval_seconds=0)
            with pytest.raises(ServiceError):
                Reindexer(s, min_new_queries=0)


# ----------------------------------------------------------------------
# Config validation for the new knobs
# ----------------------------------------------------------------------
class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"subpath_cache_mb": -1.0},
            {"reindex_interval_seconds": 0.0},
            {"reindex_min_queries": 0},
            {"admission_log_entries": 0},
            {"max_index_mb": 0.0},
            {"max_index_mb": -4.0},
        ],
    )
    def test_rejects(self, overrides):
        with pytest.raises(ServiceError):
            ServiceConfig(workers=1, **overrides)


# ----------------------------------------------------------------------
# Hot swap: both backends, byte-identical answers
# ----------------------------------------------------------------------
class TestHotSwap:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_results_identical_across_swap(self, figure1, backend):
        config = _adaptive_config(backend=backend)
        with QueryService.from_network(figure1, config, strategy="spm") as s:
            before = {
                query: json.dumps(s.execute(query).to_dict(), sort_keys=True)
                for query in (QUERY_A, QUERY_B, QUERY_C)
            }
            for _ in range(2):
                s.execute(QUERY_A)
                s.execute(QUERY_B)
            assert s.reindex_now() is True
            after = {
                query: json.dumps(s.execute(query).to_dict(), sort_keys=True)
                for query in (QUERY_A, QUERY_B, QUERY_C)
            }
            assert before == after
            stats = s.stats()
            index = stats["engine"]["index"]
            assert index["generation"] == 1
            assert index["strategy"] == "spm"
            assert index["coverage"] is not None
            assert 0.0 < index["row_coverage"] <= 1.0
            if backend == "process":
                assert stats["backend"]["index_generation"] == 1
                assert all(
                    worker["generation"] == 1
                    for worker in stats["backend"]["per_worker"]
                )

    def test_stats_surface_adaptive_blocks(self, figure1):
        with QueryService.from_network(
            figure1, _adaptive_config(), strategy="spm"
        ) as s:
            for _ in range(3):
                s.execute(QUERY_A)
            assert s.reindex_now() is True
            stats = s.stats()
            adaptive = stats["adaptive"]
            assert adaptive["recorder"]["total_recorded"] >= 3
            assert adaptive["reindexer"]["reindexes"] == 1
            assert adaptive["reindexer"]["last_reindex_unix"] is not None
            assert adaptive["reindexer"]["last_selected"]
            engine = stats["engine"]
            assert "subpath_cache" in engine
            assert "subpath_cache_hit_rate" in engine
            assert engine["index"]["subpath_cache"] is not None

    def test_swap_rejected_for_non_spm_handle(self, figure1):
        from repro.engine.index import build_spm_index_bounded
        from repro.service import EngineHandle

        handle = EngineHandle(figure1, strategy="pm")
        index, indexed = build_spm_index_bounded(
            figure1, list(figure1.vertices("author"))[:2]
        )
        assert indexed
        with pytest.raises(ServiceError):
            handle.swap_index(index)

    def test_result_cache_survives_swap_consistently(self, figure1):
        """With memoization ON, entries cached before the swap are version-
        invalidated, and re-executed answers still match byte-for-byte."""
        config = _adaptive_config(cache_max_entries=64, cache_ttl_seconds=60.0)
        with QueryService.from_network(figure1, config, strategy="spm") as s:
            first = json.dumps(s.execute(QUERY_A).to_dict(), sort_keys=True)
            for _ in range(2):
                s.execute(QUERY_A)
            assert s.reindex_now() is True
            again = json.dumps(s.execute(QUERY_A).to_dict(), sort_keys=True)
            assert first == again


# ----------------------------------------------------------------------
# Chaos: crashes around the swap window
# ----------------------------------------------------------------------
class TestChaos:
    def test_killed_worker_respawns_onto_new_generation(self, figure1):
        config = _adaptive_config(backend="process")
        with QueryService.from_network(figure1, config, strategy="spm") as s:
            baseline = json.dumps(s.execute(QUERY_A).to_dict(), sort_keys=True)
            for _ in range(2):
                s.execute(QUERY_A)
                s.execute(QUERY_B)
            victim = s.stats()["backend"]["per_worker"][0]["pid"]
            os.kill(victim, signal.SIGKILL)
            # Swap while the pool is healing: the dead slot must come back
            # attached to the *new* segment generation, never the old one.
            assert s.reindex_now() is True
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                workers = s.stats()["backend"]["per_worker"]
                if all(worker["generation"] == 1 for worker in workers):
                    break
                time.sleep(0.05)
            workers = s.stats()["backend"]["per_worker"]
            assert all(worker["generation"] == 1 for worker in workers)
            # No torn index: every answer after the chaos matches baseline.
            for _ in range(4):
                answer = json.dumps(
                    s.execute(QUERY_A).to_dict(), sort_keys=True
                )
                assert answer == baseline
            assert s.stats()["backend"]["swap_errors"] == 0
