"""Concurrency regression suite for the process execution backend.

The process backend must be *indistinguishable* from the thread backend to
every caller — byte-identical results, the same typed errors, the same
admission accounting — while surviving the failure modes only processes
have: worker crashes, orphaned shared-memory segments, kill signals.  Each
class below pins one of those contracts:

* :class:`TestByteEquality` — the acceptance criterion: ``to_dict()``
  payloads byte-identical across backends over a strategy x query grid.
* :class:`TestCrashReplacement` — kill a worker mid-burst; every admitted
  query still answers, the slot respawns, and the pool heals.
* :class:`TestSegmentCleanup` — no shared-memory segments leak, on the
  happy path or on construction/start-up failures.
* :class:`TestCloseDrain` — ``close(drain=True)`` resolves every in-flight
  future and releases every admission slot before teardown.
* :class:`TestServeSignals` — ``repro serve`` under SIGTERM takes the same
  drain-then-teardown path (both backends) and exits 0.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import wait
from pathlib import Path

import pytest

from repro.core.measures import NetOutMeasure
from repro.exceptions import ServiceClosedError, ServiceError
from repro.service import (
    QueryService,
    ServiceConfig,
    auto_worker_count,
    shm,
)
from repro.service.simload import GilBoundNetOutMeasure

#: A small grid of executable figure-1 queries with distinct canonical forms.
QUERY_GRID = [
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 3;",
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 2;",
    "FIND OUTLIERS FROM author JUDGED BY author.paper.venue TOP 5;",
    "FIND OUTLIERS FROM venue JUDGED BY venue.paper.author TOP 2;",
    "FIND OUTLIERS FROM author JUDGED BY author.paper.term TOP 4;",
]


def _service(network, backend, *, workers=2, measure=None, **config_kwargs):
    config = ServiceConfig(
        workers=workers,
        backend=backend,
        cache_max_entries=0,  # exercise execution, not memoization
        **config_kwargs,
    )
    kwargs = {"strategy": "pm"}
    if measure is not None:
        kwargs["measure"] = measure
    return QueryService.from_network(network, config, **kwargs)


def _wire(results):
    """Canonical byte form of a result list (the frontend's wire format)."""
    return json.dumps(
        [result.to_dict() for result in results], sort_keys=True
    ).encode("utf-8")


# ----------------------------------------------------------------------
# Byte equality across backends
# ----------------------------------------------------------------------
class TestByteEquality:
    @pytest.mark.parametrize("strategy", ["baseline", "pm", "spm"])
    def test_results_identical_across_backends(self, figure1, strategy):
        """Acceptance: the backend switch never changes a single byte of
        any result, for every strategy whose index crosses the shm layer."""
        payloads = {}
        for backend in ("thread", "process"):
            config = ServiceConfig(
                workers=2, backend=backend, cache_max_entries=0
            )
            with QueryService.from_network(
                figure1, config, strategy=strategy
            ) as service:
                results = service.execute_many(QUERY_GRID, timeout=60.0)
            payloads[backend] = _wire(results)
        assert payloads["thread"] == payloads["process"]

    def test_typed_errors_cross_the_process_boundary(self, figure1):
        """A worker-side failure comes back as the same exception type the
        thread backend raises, not a generic pickle of a traceback."""
        from repro.exceptions import VertexNotFoundError

        ghost = QUERY_GRID[0].replace("Zoe", "Ghost")
        with _service(figure1, "process") as service:
            with pytest.raises(VertexNotFoundError):
                service.execute(ghost, timeout=30.0)

    def test_deadline_error_keeps_payload_across_boundary(self, figure1):
        from repro.exceptions import DeadlineExceededError

        with _service(
            figure1, "process", timeout_seconds=1e-9
        ) as service:
            with pytest.raises(DeadlineExceededError) as excinfo:
                service.execute(QUERY_GRID[0], timeout=30.0)
        assert excinfo.value.budget_seconds == 1e-9
        assert excinfo.value.elapsed_seconds > 0


# ----------------------------------------------------------------------
# Crash replacement
# ----------------------------------------------------------------------
class TestCrashReplacement:
    def test_killed_worker_is_replaced_and_burst_completes(self, figure1):
        """SIGKILL one worker mid-burst: every admitted query still gets
        its (correct) answer, and the pool heals back to full strength."""
        measure = GilBoundNetOutMeasure(compute_seconds=0.15)
        burst = [QUERY_GRID[i % len(QUERY_GRID)] for i in range(10)]
        with _service(figure1, "thread", measure=measure) as reference_svc:
            reference = _wire(reference_svc.execute_many(burst, timeout=60.0))

        service = _service(
            figure1, "process", measure=measure, queue_depth=len(burst)
        )
        try:
            futures = [service.submit(query) for query in burst]
            victims = [
                worker["pid"]
                for worker in service.stats()["backend"]["per_worker"]
                if worker["alive"]
            ]
            os.kill(victims[0], signal.SIGKILL)

            done, not_done = wait(futures, timeout=60.0)
            assert not not_done, "crash left hanging futures"
            results = [future.result(timeout=0) for future in futures]
            assert _wire(results) == reference

            stats = service.stats()["backend"]
            assert sum(w["restarts"] for w in stats["per_worker"]) >= 1
            assert stats["live_workers"] == 2  # the slot respawned
            assert service.admission.in_flight == 0
        finally:
            service.close()

    def test_service_answers_after_the_crash(self, figure1):
        """The replacement worker is a full citizen: fresh queries after a
        kill execute on the healed pool."""
        service = _service(figure1, "process")
        try:
            service.execute(QUERY_GRID[0], timeout=30.0)
            pid = service.stats()["backend"]["per_worker"][0]["pid"]
            os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while service.backend.live_workers() < 2:
                assert time.monotonic() < deadline, "worker never respawned"
                time.sleep(0.02)
            assert len(service.execute(QUERY_GRID[2], timeout=30.0)) > 0
        finally:
            service.close()


# ----------------------------------------------------------------------
# Shared-memory cleanup
# ----------------------------------------------------------------------
def _dev_shm_segments():
    """Names of this suite's segments visible in the OS shm filesystem."""
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux fallback
        return set()
    return {entry.name for entry in root.iterdir() if "repro-serve" in entry.name}


def _poison_rebuild():
    raise RuntimeError("poisoned measure: worker-side rebuild must fail")


class PoisonedRebuildMeasure(NetOutMeasure):
    """Pickles fine in the parent; exploding only when a worker rebuilds it.

    This models the realistic start-up failure class — the spec crosses the
    process boundary but cannot be reconstituted on the far side — *after*
    the shared segment has already been exported, which is exactly the path
    that must not leak it.
    """

    name = "netout-poisoned"

    def __reduce__(self):
        return (_poison_rebuild, ())


class TestSegmentCleanup:
    def test_normal_close_unlinks_the_segment(self, figure1):
        service = _service(figure1, "process")
        segment = service.stats()["backend"]["segment"]
        assert segment in shm.active_segments()
        assert segment in _dev_shm_segments()
        service.execute(QUERY_GRID[0], timeout=30.0)
        service.close()
        assert segment not in shm.active_segments()
        assert segment not in _dev_shm_segments()

    def test_nondrain_close_unlinks_the_segment(self, figure1):
        service = _service(figure1, "process")
        segment = service.stats()["backend"]["segment"]
        for query in QUERY_GRID:
            service.submit(query)
        service.close(drain=False)
        assert segment not in shm.active_segments()
        assert segment not in _dev_shm_segments()

    def test_unpicklable_spec_fails_before_any_segment_exists(self, figure1):
        """An engine spec that cannot cross the boundary is rejected with a
        typed error at construction — fail-fast, nothing exported."""

        class Unpicklable(NetOutMeasure):  # local class: not picklable
            name = "netout-local"

        before = shm.active_segments()
        with pytest.raises(ServiceError, match="pickle"):
            _service(figure1, "process", measure=Unpicklable())
        assert shm.active_segments() == before

    def test_worker_startup_failure_unlinks_the_segment(self, figure1):
        """Start-up failure *after* export (workers die rebuilding the
        engine) must tear the segment down on the error path."""
        before_active = shm.active_segments()
        before_os = _dev_shm_segments()
        with pytest.raises(ServiceError, match="failed to start|died"):
            _service(figure1, "process", measure=PoisonedRebuildMeasure())
        assert shm.active_segments() == before_active
        assert _dev_shm_segments() == before_os


# ----------------------------------------------------------------------
# Close / drain semantics
# ----------------------------------------------------------------------
class TestCloseDrain:
    def test_drain_close_resolves_every_inflight_future(self, figure1):
        measure = GilBoundNetOutMeasure(compute_seconds=0.1)
        burst = [QUERY_GRID[i % len(QUERY_GRID)] for i in range(8)]
        service = _service(
            figure1, "process", measure=measure, queue_depth=len(burst)
        )
        futures = [service.submit(query) for query in burst]
        service.close()  # drain=True: blocks until the burst resolves
        assert all(future.done() for future in futures)
        for future in futures:
            assert len(future.result(timeout=0)) > 0
        assert service.admission.in_flight == 0

    def test_nondrain_close_fails_fast_and_releases_admission(self, figure1):
        measure = GilBoundNetOutMeasure(compute_seconds=0.1)
        burst = [QUERY_GRID[i % len(QUERY_GRID)] for i in range(8)]
        service = _service(
            figure1, "process", measure=measure, queue_depth=len(burst)
        )
        futures = [service.submit(query) for query in burst]
        service.close(drain=False)
        done, not_done = wait(futures, timeout=30.0)
        assert not not_done
        for future in futures:
            # Abandoned requests surface the typed shutdown error; anything
            # already executed may legitimately carry its result.
            if not future.cancelled() and future.exception(timeout=0) is not None:
                assert isinstance(future.exception(timeout=0), ServiceClosedError)
        assert service.admission.in_flight == 0

    def test_submit_after_close_is_typed(self, figure1):
        service = _service(figure1, "process")
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(QUERY_GRID[0])


# ----------------------------------------------------------------------
# Auto-sizing and stats surface
# ----------------------------------------------------------------------
class TestAutoSizeAndStats:
    def test_workers_zero_resolves_to_physical_core_estimate(self):
        config = ServiceConfig(workers=0)
        assert config.workers == auto_worker_count()
        assert config.workers >= 1

    def test_resolved_count_drives_the_pool(self, figure1):
        config = ServiceConfig(workers=0, backend="thread")
        with QueryService.from_network(
            figure1, config, strategy="baseline"
        ) as service:
            assert service.backend.live_workers() == config.workers

    def test_process_stats_expose_per_worker_rows(self, figure1):
        with _service(figure1, "process") as service:
            service.execute(QUERY_GRID[0], timeout=30.0)
            stats = service.stats()["backend"]
            assert stats["backend"] == "process"
            assert stats["segment_bytes"] > 0
            assert len(stats["per_worker"]) == 2
            for row in stats["per_worker"]:
                assert row["alive"] and row["ready"]
                assert isinstance(row["pid"], int)
            assert sum(w["completed"] for w in stats["per_worker"]) == 1
            json.dumps(service.stats())  # whole snapshot stays JSON-safe


# ----------------------------------------------------------------------
# SIGTERM takes the drain path in `repro serve`
# ----------------------------------------------------------------------
class TestServeSignals:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_sigterm_drains_and_exits_zero(self, figure1, tmp_path, backend):
        from repro.hin.io import save_json

        corpus = tmp_path / "figure1.json"
        save_json(figure1, str(corpus))
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(src), env.get("PYTHONPATH")])
        )
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--network", str(corpus),
                "--port", "0",
                "--workers", "1",
                "--backend", backend,
            ],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            banner = server.stdout.readline()
            assert f"{backend} backend" in banner
            server.send_signal(signal.SIGTERM)
            remaining = server.communicate(timeout=60.0)[0]
        finally:
            if server.poll() is None:  # pragma: no cover - hung server
                server.kill()
                server.wait(timeout=10.0)
        assert server.returncode == 0
        assert "shut down cleanly" in remaining
