"""Concurrent batches over one shared engine match sequential execution.

The thread-safety contract of :class:`~repro.service.handle.EngineHandle` is
that everything shared is immutable after warm-up and everything mutable is
per-request.  This test drives that contract the way the service does — many
threads, one handle, one shared (locked) row cache — and requires bitwise
agreement with a sequential reference run.
"""

import threading

import pytest

from repro.datagen.workloads import generate_query_set
from repro.query.templates import TEMPLATE_Q1
from repro.service import EngineHandle


@pytest.fixture(scope="module")
def shared_handle(request):
    ego_corpus = request.getfixturevalue("ego_corpus")
    return EngineHandle(ego_corpus.network, strategy="pm", row_cache_rows=512)


@pytest.fixture(scope="module")
def workload(request):
    ego_corpus = request.getfixturevalue("ego_corpus")
    return list(generate_query_set(ego_corpus.network, TEMPLATE_Q1, 8, seed=11))


def summarize(batch):
    """The comparable core of a batch: rankings, scores, error classes."""
    return (
        [
            [(entry.vertex, entry.score, entry.rank) for entry in result]
            for result in batch.results
        ],
        [dict(result.scores) for result in batch.results],
        {index: type(error) for index, error in batch.errors.items()},
    )


class TestConcurrentBatches:
    def test_concurrent_execute_many_matches_sequential(
        self, shared_handle, workload
    ):
        reference = summarize(shared_handle.execute_many(workload))
        num_threads = 6
        outcomes = [None] * num_threads
        failures = []
        barrier = threading.Barrier(num_threads)

        def run(slot):
            barrier.wait()
            try:
                outcomes[slot] = summarize(shared_handle.execute_many(workload))
            except Exception as error:  # noqa: BLE001 - recorded for assert
                failures.append(error)

        threads = [
            threading.Thread(target=run, args=(slot,))
            for slot in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert failures == []
        for outcome in outcomes:
            assert outcome == reference

    def test_concurrent_single_queries_match_sequential(
        self, shared_handle, workload
    ):
        expected = {
            query: shared_handle.execute(query).names() for query in workload
        }
        mismatches = []
        barrier = threading.Barrier(8)

        def run(seed):
            barrier.wait()
            for step in range(len(workload) * 2):
                query = workload[(seed + step) % len(workload)]
                try:
                    names = shared_handle.execute(query).names()
                except Exception as error:  # noqa: BLE001
                    mismatches.append((query, error))
                    continue
                if names != expected[query]:
                    mismatches.append((query, names))

        threads = [threading.Thread(target=run, args=(seed,)) for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert mismatches == []
