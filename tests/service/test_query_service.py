"""Tests for :mod:`repro.service.service` — futures, caching, overload, close."""

import threading

import pytest

from repro.core.results import OutlierResult
from repro.exceptions import (
    DeadlineExceededError,
    QuerySyntaxError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.service import EngineHandle, QueryService, ServiceConfig

QUERY = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 3;"
)
OTHER_QUERY = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 2;"
)


class GatedHandle:
    """Delegates to a real handle, but blocks every execute on a gate —
    makes 'a request is mid-flight' a deterministic test state."""

    def __init__(self, inner: EngineHandle) -> None:
        self._inner = inner
        self.gate = threading.Event()
        self.started = threading.Event()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def execute(self, query, *, deadline=None):
        self.started.set()
        assert self.gate.wait(10.0), "test gate never opened"
        return self._inner.execute(query, deadline=deadline)


@pytest.fixture()
def handle(figure1):
    return EngineHandle(figure1, strategy="baseline", row_cache_rows=64)


class TestWarmUp:
    def test_warm_reaches_ladder_beneath_row_cache(self, figure1):
        """Regression: with a resilience policy the fallback ladder sits
        *under* the row-cache wrapper; warm-up must still force its rung
        build, or the first concurrent requests race on it."""
        from repro.engine.resilience import ResiliencePolicy

        warmed = EngineHandle(
            figure1,
            strategy="pm",
            resilience=ResiliencePolicy(timeout_seconds=30.0),
            row_cache_rows=64,
        )
        assert warmed.fingerprint.startswith("cached-resilient/")
        # A PM rung holds real matrices; 0 would mean the build is still
        # pending its first query.
        assert warmed.index_size_bytes() > 0


class TestSubmitAndExecute:
    def test_submit_returns_future_with_result(self, handle):
        with QueryService(handle, ServiceConfig(workers=2)) as service:
            future = service.submit(QUERY)
            result = service.result(future, timeout=10.0)
        assert isinstance(result, OutlierResult)
        assert len(result) == 3

    def test_execute_matches_direct_engine(self, handle, figure1):
        direct = handle.execute(QUERY)
        with QueryService(handle, ServiceConfig(workers=2)) as service:
            served = service.execute(QUERY, timeout=10.0)
        assert served.names() == direct.names()
        assert served.scores == direct.scores

    def test_malformed_query_raises_before_admission(self, handle):
        with QueryService(handle, ServiceConfig(workers=1)) as service:
            with pytest.raises(QuerySyntaxError):
                service.submit("FIND gibberish")
            assert service.admission.snapshot()["admitted"] == 0

    def test_from_network_convenience(self, figure1):
        with QueryService.from_network(
            figure1, ServiceConfig(workers=1), strategy="baseline"
        ) as service:
            assert len(service.execute(QUERY, timeout=10.0)) == 3


class TestResultCacheIntegration:
    def test_second_submit_is_a_resolved_future(self, handle):
        with QueryService(handle, ServiceConfig(workers=2)) as service:
            first = service.execute(QUERY, timeout=10.0)
            future = service.submit(QUERY)
            assert future.done()  # cache hit: no execution round-trip
            assert future.result() is first
            assert service.cache.hits == 1

    def test_textual_variant_hits_the_same_entry(self, handle):
        sloppy = (
            "find  outliers from author{\"Zoe\"} . paper . author\n"
            "judged by author.paper.venue top 3 ;"
        )
        with QueryService(handle, ServiceConfig(workers=2)) as service:
            service.execute(QUERY, timeout=10.0)
            assert service.submit(sloppy).done()

    def test_network_mutation_invalidates(self, handle, figure1):
        with QueryService(handle, ServiceConfig(workers=2)) as service:
            service.execute(QUERY, timeout=10.0)
            figure1.add_vertex("venue", "NEWVENUE")  # version bump
            future = service.submit(QUERY)
            assert not future.done()
            service.result(future, timeout=10.0)
            assert service.cache.invalidations == 1

    def test_invalidate_cache(self, handle):
        with QueryService(handle, ServiceConfig(workers=2)) as service:
            service.execute(QUERY, timeout=10.0)
            assert service.invalidate_cache() == 1
            assert not service.submit(QUERY).done()

    def test_disabled_cache_reexecutes(self, handle):
        config = ServiceConfig(workers=2, cache_max_entries=0)
        with QueryService(handle, config) as service:
            service.execute(QUERY, timeout=10.0)
            assert not service.submit(QUERY).done()


class TestCoalescing:
    def test_identical_inflight_queries_share_a_future(self, figure1):
        gated = GatedHandle(EngineHandle(figure1, strategy="baseline"))
        service = QueryService(gated, ServiceConfig(workers=1))
        try:
            first = service.submit(QUERY)
            assert gated.started.wait(10.0)
            second = service.submit(QUERY)
            assert second is first
            assert service.stats()["service"]["coalesced"] == 1
            # One admission slot for the pair, not two.
            assert service.admission.snapshot()["admitted"] == 1
            gated.gate.set()
            assert len(service.result(first, timeout=10.0)) == 3
        finally:
            gated.gate.set()
            service.close()


class TestOverload:
    def test_full_queue_sheds_typed(self, figure1):
        gated = GatedHandle(EngineHandle(figure1, strategy="baseline"))
        service = QueryService(gated, ServiceConfig(workers=1, queue_depth=0))
        try:
            first = service.submit(QUERY)
            assert gated.started.wait(10.0)
            with pytest.raises(ServiceOverloadedError) as excinfo:
                service.submit(OTHER_QUERY)
            assert excinfo.value.retry_after_seconds > 0
            assert service.admission.snapshot()["shed"] == 1
            # The shed did not corrupt the in-flight request.
            gated.gate.set()
            assert len(service.result(first, timeout=10.0)) == 3
            # With the slot free again, the shed query now runs fine.
            assert len(service.execute(OTHER_QUERY, timeout=10.0)) == 2
        finally:
            gated.gate.set()
            service.close()


class TestLifecycle:
    def test_submit_after_close_raises(self, handle):
        service = QueryService(handle, ServiceConfig(workers=1))
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(QUERY)

    def test_close_is_idempotent(self, handle):
        service = QueryService(handle, ServiceConfig(workers=1))
        service.close()
        service.close()
        assert service.closed

    def test_drain_close_completes_inflight_work(self, figure1):
        gated = GatedHandle(EngineHandle(figure1, strategy="baseline"))
        service = QueryService(gated, ServiceConfig(workers=1))
        future = service.submit(QUERY)
        assert gated.started.wait(10.0)
        closer = threading.Thread(target=service.close)
        closer.start()
        gated.gate.set()
        closer.join(timeout=10.0)
        assert not closer.is_alive()
        assert len(future.result(timeout=10.0)) == 3

    def test_nondrain_close_fails_queued_requests(self, figure1):
        gated = GatedHandle(EngineHandle(figure1, strategy="baseline"))
        service = QueryService(gated, ServiceConfig(workers=1, queue_depth=8))
        try:
            service.submit(QUERY)
            assert gated.started.wait(10.0)
            queued = service.submit(OTHER_QUERY)  # waits behind the gate
            service.close(drain=False)
            with pytest.raises(ServiceClosedError):
                queued.result(timeout=10.0)
        finally:
            gated.gate.set()

    def test_per_request_deadline_surfaces(self, handle):
        config = ServiceConfig(workers=1, timeout_seconds=1e-9)
        with QueryService(handle, config) as service:
            future = service.submit(QUERY)
            with pytest.raises(DeadlineExceededError):
                service.result(future, timeout=10.0)
            assert service.stats()["service"]["failed"] == 1
            # A failed request must release its admission slot.
            assert service.admission.in_flight == 0


class TestStats:
    def test_snapshot_shape_and_counts(self, handle):
        with QueryService(handle, ServiceConfig(workers=2)) as service:
            service.execute(QUERY, timeout=10.0)
            service.execute(QUERY, timeout=10.0)  # cached
            stats = service.stats()
        assert set(stats) == {
            "service",
            "admission",
            "cache",
            "engine",
            "backend",
        }
        assert stats["service"]["submitted"] == 2
        assert stats["service"]["completed"] == 1
        assert stats["service"]["failed"] == 0
        assert stats["cache"]["hits"] == 1
        assert stats["admission"]["admitted"] == 1
        assert stats["engine"]["fingerprint"].startswith("cached-baseline/")
        assert stats["engine"]["index_size_bytes"] >= 0
        assert stats["engine"]["network_version"] == handle.version

    def test_stats_are_json_safe(self, handle):
        import json

        with QueryService(handle, ServiceConfig(workers=1)) as service:
            service.execute(QUERY, timeout=10.0)
            json.dumps(service.stats())
