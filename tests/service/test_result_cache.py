"""Tests for :mod:`repro.service.cache` — canonical keys, TTL, versioning."""

import pytest

from repro.core.results import OutlierResult
from repro.exceptions import QuerySyntaxError, ServiceError
from repro.hin.network import VertexId
from repro.query.parser import parse_query
from repro.service.cache import ResultCache, canonical_query_key

QUERY = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 3;"
)


def make_result(tag: str = "r") -> OutlierResult:
    vertex = VertexId("author", 0)
    return OutlierResult.from_scores(
        {vertex: 1.0}, {vertex: tag}, top_k=1, reference_count=1
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCanonicalKey:
    def test_textual_variants_share_a_key(self):
        sloppy = (
            "find  outliers from author { \"Zoe\" } . paper.author\n"
            "JUDGED   BY author.paper.venue top 3 ;"
        )
        assert canonical_query_key(sloppy) == canonical_query_key(QUERY)

    def test_ast_and_text_share_a_key(self):
        assert canonical_query_key(parse_query(QUERY)) == canonical_query_key(
            QUERY
        )

    def test_different_queries_differ(self):
        other = QUERY.replace("TOP 3", "TOP 5")
        assert canonical_query_key(other) != canonical_query_key(QUERY)

    def test_malformed_query_raises_before_caching(self):
        with pytest.raises(QuerySyntaxError):
            canonical_query_key("FIND gibberish")


class TestLookup:
    def test_hit_after_put(self):
        cache = ResultCache()
        result = make_result()
        cache.put("k", result, version=1)
        assert cache.get("k", version=1) is result
        assert cache.hits == 1

    def test_miss_on_absent_key(self):
        cache = ResultCache()
        assert cache.get("k", version=1) is None
        assert cache.misses == 1

    def test_version_mismatch_invalidates(self):
        cache = ResultCache()
        cache.put("k", make_result(), version=1)
        assert cache.get("k", version=2) is None
        assert cache.invalidations == 1
        assert len(cache) == 0  # the stale entry is gone, not just skipped

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = ResultCache(ttl_seconds=10.0, clock=clock)
        cache.put("k", make_result(), version=1)
        clock.now = 9.999
        assert cache.get("k", version=1) is not None
        clock.now = 10.0
        assert cache.get("k", version=1) is None
        assert cache.expirations == 1

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        cache = ResultCache(ttl_seconds=None, clock=clock)
        cache.put("k", make_result(), version=1)
        clock.now = 1e9
        assert cache.get("k", version=1) is not None


class TestEvictionAndInvalidation:
    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2, ttl_seconds=None)
        cache.put("a", make_result("a"), version=1)
        cache.put("b", make_result("b"), version=1)
        cache.get("a", version=1)  # refresh a
        cache.put("c", make_result("c"), version=1)  # evicts b, not a
        assert cache.get("a", version=1) is not None
        assert cache.get("b", version=1) is None
        assert cache.evictions == 1

    def test_explicit_invalidate(self):
        cache = ResultCache()
        cache.put("a", make_result(), version=1)
        cache.put("b", make_result(), version=1)
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.get("a", version=1) is None

    def test_disabled_cache_never_stores(self):
        cache = ResultCache(max_entries=0)
        assert not cache.enabled
        cache.put("k", make_result(), version=1)
        assert cache.get("k", version=1) is None
        assert len(cache) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ServiceError):
            ResultCache(max_entries=-1)
        with pytest.raises(ServiceError):
            ResultCache(ttl_seconds=-1.0)


class TestSnapshot:
    def test_snapshot_counters(self):
        cache = ResultCache(max_entries=8, ttl_seconds=None)
        cache.put("k", make_result(), version=1)
        cache.get("k", version=1)
        cache.get("missing", version=1)
        snapshot = cache.snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["entries"] == 1
        assert snapshot["hits"] == 1
        assert snapshot["misses"] == 1
        assert snapshot["hit_rate"] == pytest.approx(0.5)
        assert cache.hit_rate == pytest.approx(0.5)
