"""Tests for :mod:`repro.service.http` — the stdlib JSON frontend."""

import http.client
import json
import threading

import pytest

from repro import faultinject
from repro.service import QueryService, ServiceConfig, make_server

QUERY = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 3;"
)


@pytest.fixture()
def served(figure1):
    """A live server on an ephemeral port; yields (host, port, service)."""
    service = QueryService.from_network(
        figure1, ServiceConfig(workers=2), strategy="baseline"
    )
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield host, port, service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)
        service.close()


def request(host, port, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection(host, port, timeout=10.0)
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        connection.request(method, path, body=payload, headers=headers or {})
        response = connection.getresponse()
        return (
            response.status,
            dict(response.getheaders()),
            json.loads(response.read()),
        )
    finally:
        connection.close()


class TestGetEndpoints:
    def test_healthz(self, served):
        host, port, service = served
        status, _, payload = request(host, port, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["engine"] == service.handle.fingerprint

    def test_healthz_draining_readiness(self, served):
        """Liveness vs readiness: once a drain begins the process still
        answers (alive) but reports 503 draining and sheds new queries —
        the router's cue to pull the replica before its socket dies."""
        host, port, service = served
        service.begin_drain()
        status, _, payload = request(host, port, "GET", "/healthz")
        assert status == 503
        assert payload["status"] == "draining"
        status, _, payload = request(
            host, port, "POST", "/query", body={"query": QUERY}
        )
        assert status == 503
        assert payload["error"]["type"] == "ServiceClosedError"

    def test_stats(self, served):
        host, port, _ = served
        status, _, payload = request(host, port, "GET", "/stats")
        assert status == 200
        assert set(payload) == {
            "service",
            "admission",
            "cache",
            "engine",
            "backend",
        }

    def test_schema(self, served):
        host, port, _ = served
        status, _, payload = request(host, port, "GET", "/schema")
        assert status == 200
        assert set(payload["vertex_types"]) == {
            "author", "paper", "venue", "term"
        }
        assert "author-paper" in payload["edge_types"]

    def test_unknown_path_404(self, served):
        host, port, _ = served
        status, _, payload = request(host, port, "GET", "/nope")
        assert status == 404
        assert payload["error"]["type"] == "NotFound"


class TestQueryEndpoint:
    def test_query_success_and_cached_flag(self, served):
        host, port, _ = served
        status, _, first = request(
            host, port, "POST", "/query", body={"query": QUERY}
        )
        assert status == 200
        assert first["cached"] is False
        assert len(first["result"]["outliers"]) == 3
        assert first["result"]["measure"] == "netout"
        status, _, second = request(
            host, port, "POST", "/query", body={"query": QUERY}
        )
        assert status == 200
        assert second["cached"] is True
        assert second["result"] == first["result"]

    def test_post_unknown_path_404(self, served):
        host, port, _ = served
        status, _, _ = request(host, port, "POST", "/nope", body={})
        assert status == 404

    def test_malformed_json_400(self, served):
        host, port, _ = served
        connection = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            connection.request("POST", "/query", body=b"{not json")
            response = connection.getresponse()
            assert response.status == 400
            response.read()
        finally:
            connection.close()

    def test_missing_query_field_400(self, served):
        host, port, _ = served
        status, _, payload = request(host, port, "POST", "/query", body={})
        assert status == 400
        assert "error" in payload

    def test_non_string_query_400(self, served):
        host, port, _ = served
        status, _, _ = request(
            host, port, "POST", "/query", body={"query": 7}
        )
        assert status == 400

    def test_syntax_error_400(self, served):
        host, port, _ = served
        status, _, payload = request(
            host, port, "POST", "/query", body={"query": "FIND gibberish"}
        )
        assert status == 400
        assert payload["error"]["type"] == "QuerySyntaxError"

    def test_unservable_query_422(self, served):
        host, port, _ = served
        ghost = QUERY.replace("Zoe", "Ghost")
        status, _, payload = request(
            host, port, "POST", "/query", body={"query": ghost}
        )
        assert status == 422
        assert payload["error"]["type"] == "VertexNotFoundError"

    def test_overload_429_with_retry_after(self, served):
        """Deterministic shed: the ``service.enqueue`` fault point stalls the
        admission queue, so the frontend must answer 429 + Retry-After."""
        host, port, _ = served
        rule = faultinject.FaultRule(point="service.enqueue")
        with faultinject.inject(rule):
            status, headers, payload = request(
                host, port, "POST", "/query", body={"query": QUERY}
            )
        assert status == 429
        assert payload["error"]["type"] == "ServiceOverloadedError"
        assert float(headers["Retry-After"]) > 0

    def test_closed_service_503(self, served):
        host, port, service = served
        service.close()
        status, _, payload = request(
            host, port, "POST", "/query", body={"query": QUERY}
        )
        assert status == 503
        assert payload["error"]["type"] == "ServiceClosedError"


class TestMaxRequests:
    def test_server_stops_after_limit(self, figure1):
        service = QueryService.from_network(
            figure1, ServiceConfig(workers=1), strategy="baseline"
        )
        server = make_server(service, max_requests=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            request(host, port, "GET", "/healthz")
            request(host, port, "GET", "/healthz")
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            assert server.served_count == 2
        finally:
            server.server_close()
            service.close()
