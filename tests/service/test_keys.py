"""Tests for :mod:`repro.service.keys` — the one canonical-key helper.

The result cache (replica side) and the consistent-hash router (fleet
side) must agree on the canonical form of a query, or routing affinity
silently stops lining up with cache locality.  This suite pins that
contract: both call sites import the *same* helper, and equivalent query
spellings collapse to one key everywhere.
"""

from __future__ import annotations

import json

import pytest

from repro.query.parser import parse_query
from repro.service import cache as cache_module
from repro.service import router as router_module
from repro.service.keys import canonical_query_key, extract_query_text

#: Distinct spellings of the same logical query: whitespace, case of
#: keywords, and pre-parsed form must all collapse to one canonical key.
EQUIVALENT_SPELLINGS = [
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 3;",
    'FIND   OUTLIERS   FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 3;",
    'find outliers from author{"Zoe"}.paper.author '
    "judged by author.paper.venue top 3;",
    '\n FIND OUTLIERS\tFROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 3 ;",
]


class TestCanonicalQueryKey:
    def test_equivalent_spellings_share_one_key(self):
        keys = {canonical_query_key(text) for text in EQUIVALENT_SPELLINGS}
        assert len(keys) == 1

    def test_accepts_parsed_queries(self):
        text = EQUIVALENT_SPELLINGS[0]
        assert canonical_query_key(parse_query(text)) == canonical_query_key(
            text
        )

    def test_distinct_queries_get_distinct_keys(self):
        base = canonical_query_key(EQUIVALENT_SPELLINGS[0])
        other = canonical_query_key(
            'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
            "JUDGED BY author.paper.venue TOP 4;"
        )
        assert base != other

    def test_cache_and_router_share_the_helper(self):
        """Regression for the pre-refactor duplicate: the replica cache and
        the router must canonicalize through the *same* function object."""
        assert cache_module.canonical_query_key is canonical_query_key
        assert router_module.canonical_query_key is canonical_query_key

    def test_cache_and_router_agree_on_every_spelling(self):
        for text in EQUIVALENT_SPELLINGS:
            assert cache_module.canonical_query_key(
                text
            ) == router_module.canonical_query_key(text)


class TestExtractQueryText:
    def test_roundtrip(self):
        text = EQUIVALENT_SPELLINGS[0]
        body = json.dumps({"query": text}).encode("utf-8")
        assert extract_query_text(body) == text

    def test_malformed_json_is_json_error(self):
        with pytest.raises(json.JSONDecodeError):
            extract_query_text(b"not json at all")

    def test_missing_query_field_is_key_error(self):
        with pytest.raises(KeyError):
            extract_query_text(b"{}")
        # An empty body reads as an empty object, not a JSON error.
        with pytest.raises(KeyError):
            extract_query_text(b"")

    def test_non_string_query_is_type_error(self):
        with pytest.raises(TypeError):
            extract_query_text(b'{"query": 42}')
        with pytest.raises(TypeError):
            extract_query_text(b'{"query": ["FIND", "OUTLIERS"]}')
