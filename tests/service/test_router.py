"""Tests for :mod:`repro.service.router` and :mod:`repro.service.probe`.

Unit layers (HashRing, breaker interplay, fault-point schedules) run
without sockets; the integration layer routes over *real* in-thread
``QueryService`` replicas so failover, affinity, draining, and shed
pass-through are exercised over actual HTTP.
"""

import http.client
import json
import threading

import pytest

from repro import faultinject
from repro.exceptions import NoReplicasAvailableError, ServiceError
from repro.service import (
    HealthProber,
    QueryService,
    Router,
    RouterConfig,
    ServiceConfig,
    make_router_server,
    make_server,
)
from repro.service.cache import canonical_query_key
from repro.service.router import HashRing

QUERY = (
    'FIND OUTLIERS FROM author{"Zoe"}.paper.author '
    "JUDGED BY author.paper.venue TOP 3;"
)


# ----------------------------------------------------------------------
# HashRing
# ----------------------------------------------------------------------
class TestHashRing:
    def test_owner_is_deterministic_across_rings(self):
        nodes = [f"replica-{i}" for i in range(5)]
        first = HashRing(nodes)
        second = HashRing(list(reversed(nodes)))
        keys = [f"key-{i}" for i in range(200)]
        assert [first.owner(k) for k in keys] == [second.owner(k) for k in keys]

    def test_candidates_start_with_owner_and_are_distinct(self):
        ring = HashRing(["replica-0", "replica-1", "replica-2"])
        candidates = ring.candidates("some-key")
        assert candidates[0] == ring.owner("some-key")
        assert sorted(candidates) == ["replica-0", "replica-1", "replica-2"]
        assert ring.candidates("some-key", count=2) == candidates[:2]

    def test_remove_only_remaps_the_removed_nodes_keys(self):
        """The consistent-hashing contract: keys owned by survivors stay put."""
        ring = HashRing([f"replica-{i}" for i in range(4)])
        keys = [f"key-{i}" for i in range(300)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove("replica-2")
        for key in keys:
            if before[key] != "replica-2":
                assert ring.owner(key) == before[key]
            else:
                assert ring.owner(key) != "replica-2"

    def test_re_adding_restores_the_exact_key_range(self):
        ring = HashRing([f"replica-{i}" for i in range(4)])
        keys = [f"key-{i}" for i in range(300)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove("replica-1")
        ring.add("replica-1")
        assert {k: ring.owner(k) for k in keys} == before

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing(["replica-0"])
        ring.add("replica-0")
        assert len(ring) == 1
        ring.remove("replica-9")
        ring.remove("replica-0")
        ring.remove("replica-0")
        assert len(ring) == 0
        assert ring.owner("anything") is None
        assert ring.candidates("anything") == []

    def test_virtual_nodes_validation(self):
        with pytest.raises(ServiceError):
            HashRing(virtual_nodes=0)

    def test_load_spreads_across_replicas(self):
        ring = HashRing([f"replica-{i}" for i in range(3)], virtual_nodes=64)
        owners = [ring.owner(f"key-{i}") for i in range(600)]
        counts = {node: owners.count(node) for node in ring.nodes}
        # With 64 vnodes the split is rough but nobody should starve.
        assert all(count > 60 for count in counts.values())


# ----------------------------------------------------------------------
# Router unit behaviour (no sockets: faults fire before any connect)
# ----------------------------------------------------------------------
def _no_sleep(_seconds):
    return None


class TestRouterUnit:
    def test_requires_replica_ids(self):
        with pytest.raises(ServiceError):
            Router([])
        with pytest.raises(ServiceError):
            Router(["replica-0", "replica-0"])

    def test_malformed_body_refused_locally(self):
        router = Router(["replica-0"], sleep=_no_sleep)
        routed = router.route_query(b"this is not json")
        assert routed.status == 400
        assert routed.replica_id is None
        assert routed.attempts == 0
        assert b"error" in routed.body

    def test_invalid_query_refused_locally(self):
        router = Router(["replica-0"], sleep=_no_sleep)
        routed = router.route_query(
            json.dumps({"query": "SELECT nope;"}).encode()
        )
        assert routed.status == 400
        assert routed.replica_id is None

    def test_no_addressed_replicas_is_unroutable(self):
        config = RouterConfig(probe_interval_seconds=0.25)
        router = Router(["replica-0"], config, sleep=_no_sleep)
        with pytest.raises(NoReplicasAvailableError) as excinfo:
            router.forward("some-key", "GET", "/schema")
        assert excinfo.value.retry_after_seconds == pytest.approx(0.25)
        assert router.stats()["router"]["unroutable"] == 1

    def test_breaker_opens_and_hints_retry_after(self):
        """Repeated connect failures open the breaker; the 503 hint is the
        soonest half-open time, and a respawn installs a fresh breaker."""
        now = [0.0]
        config = RouterConfig(
            breaker_threshold=2,
            breaker_reset_seconds=10.0,
            max_attempts=3,
            failover_backoff_seconds=0.0,
        )
        router = Router(
            ["replica-0"], config, clock=lambda: now[0], sleep=_no_sleep
        )
        router.set_replica_address("replica-0", "127.0.0.1", 1)
        rule = faultinject.FaultRule(
            point="router.connect", error=ConnectionRefusedError
        )
        with faultinject.inject(rule):
            for _ in range(2):
                with pytest.raises(NoReplicasAvailableError):
                    router.forward("some-key", "POST", "/query", body=b"{}")
            state = router.replicas["replica-0"]
            assert state.breaker.state == "open"
            assert state.failed == 2
            assert not state.healthy
            # Third call never reaches the wire: breaker-skipped.
            with pytest.raises(NoReplicasAvailableError) as excinfo:
                router.forward("some-key", "POST", "/query", body=b"{}")
        assert excinfo.value.attempted == 0
        assert 0 < excinfo.value.retry_after_seconds <= 10.0
        assert router.stats()["router"]["breaker_skips"] == 1
        # The supervisor reports a respawn: fresh closed breaker, healthy.
        router.set_replica_address("replica-0", "127.0.0.1", 2)
        state = router.replicas["replica-0"]
        assert state.breaker.state == "closed"
        assert state.healthy and state.generation == 2

    def test_probe_verdicts_steer_rotation(self):
        router = Router(["replica-0"], sleep=_no_sleep)
        router.set_replica_address("replica-0", "127.0.0.1", 1)
        router.record_probe("replica-0", "draining")
        state = router.replicas["replica-0"]
        assert state.draining and not state.healthy
        # A draining replica is skipped outright, not tried last.
        with pytest.raises(NoReplicasAvailableError) as excinfo:
            router.forward("some-key", "GET", "/schema")
        assert excinfo.value.attempted == 0
        router.record_probe("replica-0", "ok")
        assert state.healthy and not state.draining

    def test_quarantine_not_cleared_by_probe(self):
        router = Router(["replica-0"], sleep=_no_sleep)
        router.set_replica_address("replica-0", "127.0.0.1", 1)
        router.mark_replica_down("replica-0", quarantined=True)
        router.record_probe("replica-0", "ok")
        assert router.replicas["replica-0"].quarantined
        assert router.healthy_count() == 0  # probes never clear quarantine


# ----------------------------------------------------------------------
# Integration: real in-thread replicas behind the router
# ----------------------------------------------------------------------
class _Replica:
    """One in-thread QueryService + HTTP server, stoppable mid-test."""

    def __init__(self, network):
        self.service = QueryService.from_network(
            network, ServiceConfig(workers=2), strategy="baseline"
        )
        self.server = make_server(self.service)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()
        self.host, self.port = self.server.server_address[:2]
        self.stopped = False

    def stop(self):
        if self.stopped:
            return
        self.stopped = True
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10.0)

    def close(self):
        self.stop()
        self.service.close()


@pytest.fixture()
def fleet(figure1):
    """Two live replicas, a router wired to them, and the router's server."""
    replicas = {f"replica-{i}": _Replica(figure1) for i in range(2)}
    config = RouterConfig(
        probe_interval_seconds=0.1,
        probe_timeout_seconds=2.0,
        attempt_timeout_seconds=5.0,
        failover_backoff_seconds=0.0,
        breaker_threshold=3,
        breaker_reset_seconds=0.5,
    )
    router = Router(list(replicas), config)
    for replica_id, replica in replicas.items():
        router.set_replica_address(replica_id, replica.host, replica.port)
    server = make_router_server(router)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield host, port, router, replicas
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)
        for replica in replicas.values():
            replica.close()


def request(host, port, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection(host, port, timeout=10.0)
    try:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        connection.request(method, path, body=payload, headers=headers or {})
        response = connection.getresponse()
        return (
            response.status,
            dict(response.getheaders()),
            json.loads(response.read()),
        )
    finally:
        connection.close()


class TestRouterIntegration:
    def test_query_routes_and_sticks_to_the_key_owner(self, fleet):
        host, port, router, _ = fleet
        owner = router.ring.owner(canonical_query_key(QUERY))
        answered = set()
        for _ in range(4):
            status, headers, payload = request(
                host, port, "POST", "/query", body={"query": QUERY}
            )
            assert status == 200
            assert len(payload["result"]["outliers"]) <= 3
            answered.add(headers["X-Repro-Replica"])
        # Cache affinity: every repetition lands on the ring owner.
        assert answered == {owner}
        assert router.replicas[owner].completed == 4

    def test_failover_to_surviving_replica(self, fleet):
        host, port, router, replicas = fleet
        owner = router.ring.owner(canonical_query_key(QUERY))
        other = next(rid for rid in replicas if rid != owner)
        replicas[owner].stop()
        status, headers, _ = request(
            host, port, "POST", "/query", body={"query": QUERY}
        )
        assert status == 200
        assert headers["X-Repro-Replica"] == other
        stats = router.stats()["router"]
        assert stats["failovers"] >= 1
        assert not router.replicas[owner].healthy  # passive detection

    def test_all_replicas_down_is_503_with_retry_after(self, fleet):
        host, port, router, replicas = fleet
        for replica in replicas.values():
            replica.stop()
        status, headers, payload = request(
            host, port, "POST", "/query", body={"query": QUERY}
        )
        assert status == 503
        assert payload["error"]["type"] == "NoReplicasAvailableError"
        assert float(headers["Retry-After"]) > 0
        assert router.stats()["router"]["unroutable"] == 1

    def test_shed_429_passes_through_without_breaker_damage(self, fleet):
        """An admission shed is the replica *working*: the 429 and its
        Retry-After reach the client, and the breaker records a success."""
        host, port, router, _ = fleet
        owner = router.ring.owner(canonical_query_key(QUERY))
        rule = faultinject.FaultRule(point="service.enqueue", times=1)
        with faultinject.inject(rule):
            status, headers, payload = request(
                host, port, "POST", "/query", body={"query": QUERY}
            )
        assert status == 429
        assert payload["error"]["type"] == "ServiceOverloadedError"
        assert float(headers["Retry-After"]) > 0
        state = router.replicas[owner]
        assert state.breaker.state == "closed"
        assert state.failed == 0
        assert router.stats()["router"]["sheds_forwarded"] == 1

    def test_draining_replica_leaves_rotation_before_dying(self, fleet):
        host, port, router, replicas = fleet
        owner = router.ring.owner(canonical_query_key(QUERY))
        other = next(rid for rid in replicas if rid != owner)
        prober = HealthProber(router)
        replicas[owner].service.begin_drain()
        verdicts = prober.probe_once()
        assert verdicts[owner] == "draining"
        assert verdicts[other] == "ok"
        assert router.replicas[owner].draining
        # Fresh keys steer around the draining owner while its socket is
        # still up.
        status, headers, _ = request(
            host, port, "POST", "/query", body={"query": QUERY}
        )
        assert status == 200
        assert headers["X-Repro-Replica"] == other

    def test_injected_connect_fault_fails_over(self, fleet):
        host, port, router, _ = fleet
        owner = router.ring.owner(canonical_query_key(QUERY))
        other = next(
            rid for rid in router.replicas if rid != owner
        )
        rule = faultinject.FaultRule(
            point="router.connect", times=1, error=ConnectionRefusedError
        )
        with faultinject.inject(rule) as injector:
            status, headers, _ = request(
                host, port, "POST", "/query", body={"query": QUERY}
            )
        assert status == 200
        assert headers["X-Repro-Replica"] == other
        assert injector.fired["router.connect"] == 1

    def test_injected_mid_body_disconnect_fails_over(self, fleet):
        """A tear after the request was sent (router.recv) must fail over
        exactly like a refused connect."""
        host, port, router, _ = fleet
        owner = router.ring.owner(canonical_query_key(QUERY))
        rule = faultinject.FaultRule(
            point="router.recv", times=1, error=ConnectionResetError
        )
        with faultinject.inject(rule) as injector:
            status, headers, _ = request(
                host, port, "POST", "/query", body={"query": QUERY}
            )
        assert status == 200
        assert headers["X-Repro-Replica"] != owner
        assert injector.fired["router.recv"] == 1
        assert router.replicas[owner].failed == 1

    def test_injected_latency_stalls_then_succeeds(self, fleet):
        """A delay rule models a slow replica: the call stalls (via the
        injector's injectable sleep — zero wall time here) then proceeds."""
        host, port, router, _ = fleet
        owner = router.ring.owner(canonical_query_key(QUERY))
        stalls = []
        rule = faultinject.FaultRule(
            point="router.send", times=1, delay_seconds=7.5
        )
        with faultinject.inject(rule) as injector:
            injector.sleep = stalls.append
            status, headers, _ = request(
                host, port, "POST", "/query", body={"query": QUERY}
            )
        assert status == 200
        assert headers["X-Repro-Replica"] == owner  # no failover needed
        assert stalls == [7.5]

    def test_router_healthz_degrades_with_the_fleet(self, fleet):
        host, port, router, replicas = fleet
        status, _, payload = request(host, port, "GET", "/healthz")
        assert (status, payload["status"]) == (200, "ok")
        assert payload["healthy_replicas"] == 2
        # One replica down: still serving (200), but visibly degraded.
        router.mark_replica_down("replica-0")
        status, _, payload = request(host, port, "GET", "/healthz")
        assert (status, payload["status"]) == (200, "degraded")
        assert payload["healthy_replicas"] == 1
        router.mark_replica_down("replica-1")
        status, _, payload = request(host, port, "GET", "/healthz")
        assert (status, payload["status"]) == (503, "unavailable")

    def test_stats_replicas_and_schema_endpoints(self, fleet):
        host, port, _, _ = fleet
        status, _, stats = request(host, port, "GET", "/stats")
        assert status == 200
        assert stats["router"]["replicas"] == 2
        assert len(stats["per_replica"]) == 2
        status, _, payload = request(host, port, "GET", "/replicas")
        assert status == 200
        assert {row["replica_id"] for row in payload["replicas"]} == {
            "replica-0",
            "replica-1",
        }
        status, headers, schema = request(host, port, "GET", "/schema")
        assert status == 200
        assert "author" in schema["vertex_types"]
        assert "X-Repro-Replica" in headers  # proxied, not answered locally
        status, _, _ = request(host, port, "GET", "/nope")
        assert status == 404
