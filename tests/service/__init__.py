"""Tests for :mod:`repro.service` — the concurrent query service."""
