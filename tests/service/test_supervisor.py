"""Tests for :mod:`repro.service.supervisor`.

The supervisor is command-agnostic, so these tests run it over tiny fake
replicas (``python -c`` one-liners printing the serving banner) instead of
full ``repro serve`` processes — restart backoff, crash-loop quarantine,
and callback wiring are process-lifecycle concerns, not query concerns.
"""

import random
import sys
import threading
import time

import pytest

from repro.exceptions import ServiceError
from repro.service import ReplicaSupervisor, SupervisorConfig
from repro.service.supervisor import BANNER_PATTERN, restart_delay


def fake_replica(*, lifetime: float = 60.0, port: int = 4321) -> list[str]:
    """argv for a fake replica: print the banner, live ``lifetime`` seconds."""
    code = (
        "import time; "
        f"print('serving on http://127.0.0.1:{port} (fake)', flush=True); "
        f"time.sleep({lifetime})"
    )
    return [sys.executable, "-c", code]


def wait_until(predicate, *, timeout: float = 20.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class Recorder:
    """Thread-safe capture of on_up / on_down callback invocations."""

    def __init__(self):
        self.lock = threading.Lock()
        self.ups = []
        self.downs = []

    def on_up(self, replica_id, host, port, pid):
        with self.lock:
            self.ups.append((replica_id, host, port, pid))

    def on_down(self, replica_id, *, quarantined):
        with self.lock:
            self.downs.append((replica_id, quarantined))


class TestRestartDelay:
    CONFIG = SupervisorConfig(
        restart_base_delay_seconds=0.5,
        restart_multiplier=2.0,
        restart_max_delay_seconds=4.0,
        restart_jitter_fraction=0.2,
    )

    def test_exponential_growth_within_jitter_bounds(self):
        rng = random.Random(7)
        for n, nominal in [(1, 0.5), (2, 1.0), (3, 2.0), (4, 4.0), (10, 4.0)]:
            delay = restart_delay(n, self.CONFIG, rng)
            assert nominal * 0.8 <= delay <= nominal * 1.2

    def test_deterministic_under_a_seed(self):
        first = [restart_delay(n, self.CONFIG, random.Random(3)) for n in (1, 2)]
        second = [restart_delay(n, self.CONFIG, random.Random(3)) for n in (1, 2)]
        assert first == second

    def test_no_jitter_is_exact(self):
        config = SupervisorConfig(
            restart_base_delay_seconds=0.5,
            restart_multiplier=2.0,
            restart_max_delay_seconds=4.0,
            restart_jitter_fraction=0.0,
        )
        rng = random.Random(0)
        assert restart_delay(3, config, rng) == pytest.approx(2.0)

    def test_restart_number_validation(self):
        with pytest.raises(ServiceError):
            restart_delay(0, self.CONFIG, random.Random(0))


class TestServeCommands:
    def test_builds_one_argv_per_replica(self):
        commands = ReplicaSupervisor.serve_commands(
            sys.executable, "net.json", 3, serve_args=["--workers", "2"]
        )
        assert sorted(commands) == ["replica-0", "replica-1", "replica-2"]
        for argv in commands.values():
            assert argv[:4] == [sys.executable, "-m", "repro", "serve"]
            # Port 0 always: respawns must never fight over a fixed port.
            assert argv[argv.index("--port") + 1] == "0"
            assert argv[-2:] == ["--workers", "2"]

    def test_count_validation(self):
        with pytest.raises(ServiceError):
            ReplicaSupervisor.serve_commands(sys.executable, "net.json", 0)


class TestBannerPattern:
    def test_matches_the_serve_banner_shape(self):
        line = (
            "serving corpus.json on http://127.0.0.1:8080 "
            "(abc123, thread backend, 4 workers, queue depth 64)"
        )
        match = BANNER_PATTERN.search(line)
        assert match is not None
        assert (match.group(1), int(match.group(2))) == ("127.0.0.1", 8080)


class TestSupervision:
    def test_start_parses_banners_and_reports_up(self):
        recorder = Recorder()
        commands = {
            "replica-0": fake_replica(port=4321),
            "replica-1": fake_replica(port=4322),
        }
        supervisor = ReplicaSupervisor(
            commands, SupervisorConfig(), on_up=recorder.on_up
        )
        with supervisor:
            assert {
                (rid, host, port) for rid, host, port, _ in recorder.ups
            } == {
                ("replica-0", "127.0.0.1", 4321),
                ("replica-1", "127.0.0.1", 4322),
            }
            stats = supervisor.stats()["replicas"]
            assert all(row["alive"] for row in stats)
            assert all(row["restarts"] == 0 for row in stats)
        # Context exit stops the fleet.
        assert all(
            replica.process.poll() is not None
            for replica in supervisor.replicas.values()
        )

    def test_crashing_replica_restarts_then_quarantines(self):
        recorder = Recorder()
        config = SupervisorConfig(
            restart_base_delay_seconds=0.01,
            restart_multiplier=1.0,
            restart_max_delay_seconds=0.05,
            restart_jitter_fraction=0.0,
            max_restarts_in_window=2,
            restart_window_seconds=60.0,
        )
        supervisor = ReplicaSupervisor(
            {"replica-0": fake_replica(lifetime=0.0)},
            config,
            on_up=recorder.on_up,
            on_down=recorder.on_down,
        )
        supervisor.start()
        try:
            assert wait_until(
                lambda: supervisor.replicas["replica-0"].quarantined
            )
        finally:
            supervisor.stop()
        replica = supervisor.replicas["replica-0"]
        # Initial launch + 2 budgeted restarts, then the third death blows
        # the window budget.
        assert replica.restarts_total == 2
        assert len(recorder.ups) == 3
        assert recorder.downs[-1] == ("replica-0", True)
        assert [q for _, q in recorder.downs[:-1]] == [False, False]
        stats = supervisor.stats()["replicas"][0]
        assert stats["quarantined"] and not stats["alive"]
        assert stats["last_exit_code"] == 0

    def test_respawn_reports_fresh_address(self):
        """Each incarnation's banner re-fires on_up — the router's cue to
        re-admit the replica with a fresh breaker."""
        recorder = Recorder()
        config = SupervisorConfig(
            restart_base_delay_seconds=0.01,
            restart_multiplier=1.0,
            restart_jitter_fraction=0.0,
            max_restarts_in_window=10,
            restart_window_seconds=60.0,
        )
        supervisor = ReplicaSupervisor(
            {"replica-0": fake_replica(lifetime=0.3)},
            config,
            on_up=recorder.on_up,
            on_down=recorder.on_down,
        )
        supervisor.start()
        try:
            assert wait_until(lambda: len(recorder.ups) >= 2)
        finally:
            supervisor.stop()
        pids = [pid for _, _, _, pid in recorder.ups]
        assert len(set(pids)) == len(pids)  # a new process each time
        assert ("replica-0", False) in recorder.downs

    def test_start_timeout_raises_and_cleans_up(self):
        silent = [sys.executable, "-c", "import time; time.sleep(60)"]
        supervisor = ReplicaSupervisor(
            {"replica-0": silent},
            SupervisorConfig(start_timeout_seconds=0.5),
        )
        with pytest.raises(ServiceError, match="no serving banner"):
            supervisor.start()
        process = supervisor.replicas["replica-0"].process
        assert process is not None and process.poll() is not None

    def test_needs_at_least_one_replica(self):
        with pytest.raises(ServiceError):
            ReplicaSupervisor({})
