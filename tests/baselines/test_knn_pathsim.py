"""Tests for :mod:`repro.baselines.knn_outlier` and :mod:`repro.baselines.pathsim`."""

import numpy as np
import pytest

from repro.baselines.knn_outlier import knn_distance_scores, top_k_distance_outliers
from repro.baselines.pathsim import pathsim, pathsim_matrix, pathsim_top_k
from repro.exceptions import MeasureError
from repro.metapath.metapath import MetaPath

PV = MetaPath.parse("author.paper.venue")


class TestKnnOutlier:
    def test_isolated_point_has_largest_score(self):
        rng = np.random.default_rng(0)
        cluster = rng.normal(0, 0.2, size=(30, 2))
        points = np.vstack([cluster, [[9.0, 9.0]]])
        scores = knn_distance_scores(points, k=3)
        assert np.argmax(scores) == 30

    def test_top_k_selection(self):
        rng = np.random.default_rng(1)
        cluster = rng.normal(0, 0.2, size=(30, 2))
        points = np.vstack([cluster, [[9.0, 9.0]], [[-8.0, 7.0]]])
        top = top_k_distance_outliers(points, n_outliers=2, k=3)
        assert set(top) == {30, 31}

    def test_k_bounds(self):
        points = np.zeros((4, 2))
        with pytest.raises(MeasureError):
            knn_distance_scores(points, k=4)
        with pytest.raises(MeasureError):
            knn_distance_scores(points, k=0)

    def test_duplicate_points_zero_score(self):
        points = np.zeros((5, 2))
        scores = knn_distance_scores(points, k=2)
        np.testing.assert_allclose(scores, 0.0)

    def test_ties_break_by_index(self):
        points = np.array([[0.0], [0.0], [10.0], [10.0]])
        top = top_k_distance_outliers(points, n_outliers=2, k=1)
        assert top == [0, 1]


class TestPathSim:
    def test_figure2_pathsim(self, figure2):
        """PathSim(Jim, Mary) = 2·28 / (56 + 14) = 0.8."""
        jim = figure2.find_vertex("author", "Jim")
        mary = figure2.find_vertex("author", "Mary")
        assert pathsim(figure2, PV, jim, mary) == pytest.approx(0.8)

    def test_self_similarity_is_one(self, figure2):
        jim = figure2.find_vertex("author", "Jim")
        assert pathsim(figure2, PV, jim, jim) == 1.0

    def test_symmetry(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        liam = figure1.find_vertex("author", "Liam")
        assert pathsim(figure1, PV, zoe, liam) == pathsim(figure1, PV, liam, zoe)

    def test_wrong_type_rejected(self, figure1):
        kdd = figure1.find_vertex("venue", "KDD")
        zoe = figure1.find_vertex("author", "Zoe")
        with pytest.raises(MeasureError):
            pathsim(figure1, PV, kdd, zoe)

    def test_disconnected_vertices_zero(self, figure1):
        lonely = figure1.add_vertex("author", "Lonely")
        zoe = figure1.find_vertex("author", "Zoe")
        assert pathsim(figure1, PV, lonely, zoe) == 0.0

    def test_matrix_diagonal_is_one_for_visible(self, figure1):
        from repro.metapath.materialize import materialize

        phi = materialize(figure1, PV)
        matrix = pathsim_matrix(phi)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_matrix_symmetric(self, figure2):
        from repro.metapath.materialize import materialize

        matrix = pathsim_matrix(materialize(figure2, PV))
        np.testing.assert_allclose(matrix, matrix.T)

    def test_top_k_search(self, figure2):
        jim = figure2.find_vertex("author", "Jim")
        results = pathsim_top_k(figure2, PV, jim, k=1)
        name = figure2.vertex_name(results[0][0])
        assert name == "Mary"
        assert results[0][1] == pytest.approx(0.8)

    def test_top_k_excludes_self_by_default(self, figure2):
        jim = figure2.find_vertex("author", "Jim")
        results = pathsim_top_k(figure2, PV, jim, k=5)
        assert all(v != jim for v, __ in results)

    def test_top_k_include_self(self, figure2):
        jim = figure2.find_vertex("author", "Jim")
        results = pathsim_top_k(figure2, PV, jim, k=1, include_self=True)
        assert results[0][0] == jim

    def test_top_k_invalid_k(self, figure2):
        jim = figure2.find_vertex("author", "Jim")
        with pytest.raises(MeasureError):
            pathsim_top_k(figure2, PV, jim, k=0)
