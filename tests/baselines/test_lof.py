"""Tests for :mod:`repro.baselines.lof`."""

import numpy as np
import pytest

from repro.baselines.lof import local_outlier_factor
from repro.exceptions import MeasureError


class TestLocalOutlierFactor:
    def test_uniform_cluster_scores_near_one(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(size=(200, 2))
        lof = local_outlier_factor(points, min_pts=10)
        # Bulk of a uniform cloud is inlier-ish.
        assert np.median(lof) == pytest.approx(1.0, abs=0.15)

    def test_isolated_point_flagged(self):
        rng = np.random.default_rng(1)
        cluster = rng.normal(0, 0.1, size=(50, 2))
        outlier = np.array([[5.0, 5.0]])
        points = np.vstack([cluster, outlier])
        lof = local_outlier_factor(points, min_pts=5)
        assert np.argmax(lof) == 50
        assert lof[50] > 5.0

    def test_local_density_sensitivity(self):
        """A point between a dense and a sparse cluster is more outlying
        relative to the dense cluster — LOF's defining property."""
        rng = np.random.default_rng(2)
        dense = rng.normal(0, 0.05, size=(40, 2))
        sparse_cluster = rng.normal(10, 1.5, size=(40, 2))
        bridge = np.array([[0.7, 0.7]])  # just outside the dense cluster
        points = np.vstack([dense, sparse_cluster, bridge])
        lof = local_outlier_factor(points, min_pts=8)
        assert lof[80] > 2.0
        assert np.median(lof[:40]) < 1.5

    def test_duplicates_do_not_crash(self):
        points = np.vstack([np.zeros((10, 2)), np.ones((1, 2))])
        lof = local_outlier_factor(points, min_pts=3)
        assert np.isfinite(lof[-1])
        # Duplicate cluster members are inliers (LOF 1 by convention).
        np.testing.assert_allclose(lof[:10], 1.0)

    def test_min_pts_bounds(self):
        points = np.zeros((5, 2))
        with pytest.raises(MeasureError):
            local_outlier_factor(points, min_pts=0)
        with pytest.raises(MeasureError):
            local_outlier_factor(points, min_pts=5)

    def test_non_2d_rejected(self):
        with pytest.raises(MeasureError):
            local_outlier_factor(np.zeros(5), min_pts=2)

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(30, 3))
        first = local_outlier_factor(points, min_pts=4)
        second = local_outlier_factor(points, min_pts=4)
        np.testing.assert_array_equal(first, second)
