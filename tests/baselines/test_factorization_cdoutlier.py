"""Tests for :mod:`repro.baselines.factorization` and ``cdoutlier``."""

import numpy as np
import pytest

from repro.baselines.cdoutlier import community_distribution_outliers
from repro.baselines.factorization import kmeans, nmf
from repro.exceptions import MeasureError


class TestNMF:
    def test_reconstruction_quality_on_low_rank_data(self):
        rng = np.random.default_rng(0)
        true_w = rng.random((30, 3))
        true_h = rng.random((3, 20))
        data = true_w @ true_h
        w, h = nmf(data, 3, iterations=500, seed=1)
        relative_error = np.linalg.norm(data - w @ h) / np.linalg.norm(data)
        assert relative_error < 0.05

    def test_factors_nonnegative(self):
        rng = np.random.default_rng(1)
        data = rng.random((10, 8))
        w, h = nmf(data, 2, seed=0)
        assert (w >= 0).all() and (h >= 0).all()

    def test_shapes(self):
        data = np.ones((6, 4))
        w, h = nmf(data, 2, seed=0)
        assert w.shape == (6, 2)
        assert h.shape == (2, 4)

    def test_deterministic(self):
        rng = np.random.default_rng(2)
        data = rng.random((12, 9))
        first = nmf(data, 3, seed=7)
        second = nmf(data, 3, seed=7)
        np.testing.assert_array_equal(first[0], second[0])

    def test_negative_input_rejected(self):
        with pytest.raises(MeasureError, match="non-negative"):
            nmf(np.array([[-1.0, 2.0]]), 1)

    def test_bad_components(self):
        with pytest.raises(MeasureError):
            nmf(np.ones((3, 3)), 4)
        with pytest.raises(MeasureError):
            nmf(np.ones((3, 3)), 0)

    def test_non_2d_rejected(self):
        with pytest.raises(MeasureError):
            nmf(np.ones(5), 1)


class TestKMeans:
    def test_separates_obvious_clusters(self):
        rng = np.random.default_rng(3)
        left = rng.normal(0.0, 0.1, size=(40, 2))
        right = rng.normal(5.0, 0.1, size=(40, 2))
        points = np.vstack([left, right])
        __, labels = kmeans(points, 2, seed=0)
        assert len(set(labels[:40])) == 1
        assert len(set(labels[40:])) == 1
        assert labels[0] != labels[40]

    def test_centroid_count(self):
        rng = np.random.default_rng(4)
        centroids, labels = kmeans(rng.random((30, 3)), 4, seed=0)
        assert centroids.shape == (4, 3)
        assert set(labels) <= set(range(4))

    def test_single_cluster(self):
        points = np.arange(10, dtype=float).reshape(-1, 1)
        centroids, labels = kmeans(points, 1, seed=0)
        assert centroids[0, 0] == pytest.approx(points.mean())
        assert (labels == 0).all()

    def test_deterministic(self):
        rng = np.random.default_rng(5)
        points = rng.random((25, 2))
        first = kmeans(points, 3, seed=11)
        second = kmeans(points, 3, seed=11)
        np.testing.assert_array_equal(first[1], second[1])

    def test_bad_cluster_count(self):
        with pytest.raises(MeasureError):
            kmeans(np.ones((3, 2)), 4)

    def test_duplicate_points_handled(self):
        points = np.zeros((10, 2))
        centroids, labels = kmeans(points, 2, seed=0)
        assert np.isfinite(centroids).all()


class TestCommunityDistributionOutliers:
    def test_planted_distribution_outlier(self):
        """Vertices following two clean patterns plus one mixed-community
        deviant: the deviant gets the top score."""
        rng = np.random.default_rng(6)
        # Two blocks: vertices 0-19 use features 0-9; 20-39 use 10-19.
        block_a = np.hstack([rng.poisson(5, (20, 10)), np.zeros((20, 10))])
        block_b = np.hstack([np.zeros((20, 10)), rng.poisson(5, (20, 10))])
        deviant = rng.poisson(5, (1, 20))  # spread over everything
        phi = np.vstack([block_a, block_b, deviant]).astype(float)
        result = community_distribution_outliers(
            phi, communities=2, patterns=2, seed=0
        )
        assert int(np.argmax(result.scores)) == 40

    def test_memberships_are_distributions(self):
        rng = np.random.default_rng(7)
        phi = rng.poisson(2, (15, 8)).astype(float)
        result = community_distribution_outliers(phi, communities=3, patterns=2)
        sums = result.memberships.sum(axis=1)
        assert ((np.isclose(sums, 1.0)) | (sums == 0.0)).all()

    def test_pattern_assignment_shape(self):
        rng = np.random.default_rng(8)
        phi = rng.poisson(2, (12, 6)).astype(float)
        result = community_distribution_outliers(phi, communities=2, patterns=3)
        assert result.pattern_of.shape == (12,)
        assert result.patterns.shape[1] == result.memberships.shape[1]

    def test_deterministic(self):
        rng = np.random.default_rng(9)
        phi = rng.poisson(2, (10, 5)).astype(float)
        first = community_distribution_outliers(phi, seed=3)
        second = community_distribution_outliers(phi, seed=3)
        np.testing.assert_array_equal(first.scores, second.scores)

    def test_too_small_input_rejected(self):
        with pytest.raises(MeasureError):
            community_distribution_outliers(np.ones((1, 4)))

    def test_on_ego_corpus_netout_still_better(self, ego_corpus):
        """Replaying §8's claim against this related-work method too."""
        from repro.core.measures import NetOutMeasure
        from repro.engine.evaluator import SetEvaluator
        from repro.engine.strategies import PMStrategy
        from repro.metapath.metapath import MetaPath
        from repro.query.parser import parse_set_expression

        network = ego_corpus.network
        strategy = PMStrategy(network)
        __, members = SetEvaluator(strategy).evaluate(
            parse_set_expression('author{"Prof. Hub"}.paper.author')
        )
        phi = strategy.neighbor_matrix(MetaPath.parse("author.paper.venue"), members)
        names = network.vertex_names("author")
        member_names = [names[i] for i in members]
        truth = set(ego_corpus.cross_field) | set(ego_corpus.students)

        netout = NetOutMeasure().score(phi, phi)
        by_netout = [member_names[i] for i in np.argsort(netout)[:10]]
        cd = community_distribution_outliers(phi, communities=4, patterns=3, seed=0)
        by_cd = [member_names[i] for i in np.argsort(-cd.scores)[:10]]

        netout_hits = len(set(by_netout) & truth)
        cd_hits = len(set(by_cd) & truth)
        assert netout_hits >= cd_hits
