"""Tests for :mod:`repro.baselines.simrank` and :mod:`repro.baselines.ppr`."""

import numpy as np
import pytest

from repro.baselines.ppr import personalized_pagerank, ppr_similarity
from repro.baselines.simrank import simrank_scores, simrank_similarity
from repro.exceptions import MeasureError
from repro.hin.network import VertexId


class TestSimRank:
    def test_self_similarity_is_one(self, figure1):
        similarity, offsets = simrank_scores(figure1)
        np.testing.assert_allclose(np.diag(similarity), 1.0)

    def test_symmetric(self, figure1):
        similarity, __ = simrank_scores(figure1)
        np.testing.assert_allclose(similarity, similarity.T, atol=1e-12)

    def test_bounded(self, figure1):
        similarity, __ = simrank_scores(figure1)
        assert (similarity >= -1e-12).all()
        assert (similarity <= 1.0 + 1e-12).all()

    def test_coauthors_more_similar_than_strangers(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        liam = figure1.find_vertex("author", "Liam")
        lonely = figure1.add_vertex("author", "Lonely")
        close = simrank_similarity(figure1, zoe, liam)
        far = simrank_similarity(figure1, zoe, lonely)
        assert close > far == 0.0

    def test_parameter_validation(self, figure1):
        with pytest.raises(MeasureError):
            simrank_scores(figure1, decay=1.5)
        with pytest.raises(MeasureError):
            simrank_scores(figure1, iterations=0)

    def test_convergence_with_more_iterations(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        liam = figure1.find_vertex("author", "Liam")
        short = simrank_similarity(figure1, zoe, liam, iterations=6)
        long = simrank_similarity(figure1, zoe, liam, iterations=12)
        assert abs(long - short) < 0.05

    def test_paper_section52_visibility_bias(self, figure2):
        """SimRank assigns Jim~Mary higher similarity than PathSim does
        relative to equal-visibility pairs — the §5.2 contrast is that
        PathSim penalizes visibility mismatch more."""
        from repro.baselines.pathsim import pathsim
        from repro.metapath.metapath import MetaPath

        jim = figure2.find_vertex("author", "Jim")
        mary = figure2.find_vertex("author", "Mary")
        path = MetaPath.parse("author.paper.venue")
        ps = pathsim(figure2, path, jim, mary)
        sr = simrank_similarity(figure2, jim, mary)
        # Jim and Mary have identical venue *profiles* up to scale (4,2,6)
        # vs (2,1,3): SimRank (structure-normalized) should not rate them
        # lower than PathSim, which divides by the mismatched visibilities.
        assert ps < 1.0
        assert sr > 0.0


class TestPersonalizedPageRank:
    def test_distribution_sums_to_one(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        scores, __ = personalized_pagerank(figure1, zoe)
        assert scores.sum() == pytest.approx(1.0, abs=1e-8)
        assert (scores >= 0).all()

    def test_seed_has_highest_score(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        scores, offsets = personalized_pagerank(figure1, zoe)
        seed_index = offsets["author"] + zoe.index
        assert np.argmax(scores) == seed_index

    def test_proximity_ordering(self, figure1):
        """Liam (2 shared papers) outranks Ava (1 shared paper) from Zoe."""
        zoe = figure1.find_vertex("author", "Zoe")
        liam = figure1.find_vertex("author", "Liam")
        ava = figure1.find_vertex("author", "Ava")
        assert ppr_similarity(figure1, zoe, liam) > ppr_similarity(figure1, zoe, ava)

    def test_disconnected_vertex_gets_zero(self, figure1):
        lonely = figure1.add_vertex("author", "Lonely")
        zoe = figure1.find_vertex("author", "Zoe")
        assert ppr_similarity(figure1, zoe, lonely) == 0.0

    def test_dangling_mass_conserved(self, figure1):
        """A seed with no edges keeps all mass on itself."""
        lonely = figure1.add_vertex("author", "Lonely")
        scores, offsets = personalized_pagerank(figure1, lonely)
        assert scores.sum() == pytest.approx(1.0, abs=1e-8)
        assert scores[offsets["author"] + lonely.index] == pytest.approx(1.0)

    def test_parameter_validation(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        with pytest.raises(MeasureError):
            personalized_pagerank(figure1, zoe, damping=0.0)
        with pytest.raises(MeasureError):
            personalized_pagerank(figure1, zoe, iterations=0)

    def test_asymmetry(self, figure2):
        """PPR is direction-sensitive: p(Mary | Jim) != p(Jim | Mary) in
        general (different normalizations)."""
        jim = figure2.find_vertex("author", "Jim")
        mary = figure2.find_vertex("author", "Mary")
        forward = ppr_similarity(figure2, jim, mary)
        backward = ppr_similarity(figure2, mary, jim)
        assert forward > 0 and backward > 0
