"""Golden-fixture regression: the quick grid is pinned, score for score.

The committed fixture at ``tests/zoo/golden/zoo_quick.json`` is the
deterministic projection (timings stripped) of the quick evaluation grid —
every registered detector over every scenario at seed 0.  Any behavioral
change to a detector, a scenario generator, the candidate evaluation, or
the metric layer shows up here as an exact-value diff.

Scores are rounded to 9 significant digits inside the harness before
ranking and metrics, which is what makes *exact* comparison safe across
platforms.  When a change is intentional, re-pin with::

    PYTHONPATH=src python scripts/zoo_smoke.py --update

and commit the updated fixture alongside the change that moved it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.zoo import (
    ZooRunConfig,
    available_detectors,
    available_scenarios,
    run_zoo,
    strip_timings,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "zoo_quick.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def current():
    report = run_zoo(ZooRunConfig(seeds=(0,), k=5, quick=True))
    # Round-trip through JSON so tuples/lists and float formatting compare
    # apples to apples with the loaded fixture.
    return json.loads(json.dumps(strip_timings(report)))


def test_fixture_covers_the_full_registry(golden):
    """The committed fixture spans every detector and scenario — a new
    registration without a re-pin fails here, not silently."""
    assert golden["detectors"] == list(available_detectors())
    assert sorted(golden["scenarios"]) == sorted(available_scenarios())
    assert len(golden["results"]) == len(golden["detectors"]) * len(
        golden["scenarios"]
    )


def test_quick_grid_matches_golden_exactly(golden, current):
    assert current == golden


def test_fixture_metrics_are_sane(golden):
    """Defense in depth for the committed artifact itself: a hand-edited
    or truncated fixture fails before it can mask a real regression."""
    for entry in golden["results"]:
        metrics = entry["metrics"]
        assert 0.0 <= metrics["roc_auc"] <= 1.0
        assert 0.0 <= metrics["precision_at_k"] <= 1.0
        assert 0.0 <= metrics["average_precision"] <= 1.0
        assert entry["top"]
        assert "fit_seconds" not in entry
