"""Detector-zoo tests: contract laws, scenarios, harness, golden report."""
