"""Shared zoo fixtures: one built quick scenario per archetype, per session."""

from __future__ import annotations

import pytest

from repro.engine.evaluator import SetEvaluator
from repro.engine.strategies import make_strategy
from repro.query.parser import parse_set_expression
from repro.zoo import ZooQuery, available_scenarios, build_scenario


def query_for(instance, seed: int = 0) -> ZooQuery:
    """Evaluate a scenario instance's candidate set into a ``ZooQuery``.

    The same evaluation path the harness uses (the declarative set
    language through the baseline strategy), factored out so contract and
    property tests can build queries without running the whole grid.
    """
    evaluator = SetEvaluator(make_strategy(instance.network, "baseline"))
    member_type, indices = evaluator.evaluate(
        parse_set_expression(instance.candidates_expr)
    )
    names = instance.network.vertex_names(member_type)
    return ZooQuery(
        member_type=member_type,
        candidate_indices=tuple(indices),
        candidate_names=tuple(names[index] for index in indices),
        feature_path=instance.feature_path,
        candidates_expr=instance.candidates_expr,
        anchor=instance.anchor,
        seed=seed,
    )


@pytest.fixture(scope="session", params=available_scenarios())
def scenario_instance(request):
    """Each registered scenario, built at quick size with seed 0."""
    return build_scenario(request.param, 0, quick=True)


@pytest.fixture(scope="session")
def attribute_instance():
    return build_scenario("attribute-outlier", 0, quick=True)
