"""Harness tests: report structure, determinism, config validation."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import MeasureError
from repro.zoo import (
    REPORT_SCHEMA_VERSION,
    ZooRunConfig,
    render_summary,
    run_zoo,
    strip_timings,
)

METRIC_KEYS = {"roc_auc", "precision_at_k", "average_precision"}


@pytest.fixture(scope="module")
def small_report():
    """A 2-detector x 2-scenario x 2-seed quick run shared by the module."""
    return run_zoo(
        ZooRunConfig(
            scenarios=("attribute-outlier", "fraud-ring"),
            detectors=("lof", "ppr"),
            seeds=(0, 1),
            k=3,
            quick=True,
        )
    )


class TestReportStructure:
    def test_grid_is_complete(self, small_report):
        assert len(small_report["results"]) == 2 * 2 * 2
        cells = {
            (entry["detector"], entry["scenario"], entry["seed"])
            for entry in small_report["results"]
        }
        assert len(cells) == 8

    def test_header_fields(self, small_report):
        assert small_report["schema_version"] == REPORT_SCHEMA_VERSION
        assert small_report["quick"] is True
        assert small_report["k"] == 3
        assert small_report["seeds"] == [0, 1]
        assert small_report["detectors"] == ["lof", "ppr"]

    def test_scenario_metadata(self, small_report):
        for name, meta in small_report["scenarios"].items():
            assert meta["num_outliers"] == len(meta["outliers"])
            assert meta["num_candidates"] > meta["num_outliers"]
            assert meta["vertices"] > 0
            assert meta["edges"] > 0
            assert meta["feature_path"].startswith(meta["member_type"])

    def test_metrics_and_timings(self, small_report):
        for entry in small_report["results"]:
            assert set(entry["metrics"]) == METRIC_KEYS
            assert 0.0 <= entry["metrics"]["roc_auc"] <= 1.0
            assert 0.0 <= entry["metrics"]["precision_at_k"] <= 1.0
            assert 0.0 <= entry["metrics"]["average_precision"] <= 1.0
            assert len(entry["top"]) == 3
            assert entry["fit_seconds"] >= 0.0
            assert entry["score_seconds"] >= 0.0

    def test_json_serializable(self, small_report):
        json.dumps(small_report)


class TestDeterminism:
    def test_identical_runs_identical_scores(self, small_report):
        again = run_zoo(
            ZooRunConfig(
                scenarios=("attribute-outlier", "fraud-ring"),
                detectors=("lof", "ppr"),
                seeds=(0, 1),
                k=3,
                quick=True,
            )
        )
        assert strip_timings(small_report) == strip_timings(again)

    def test_strip_timings_removes_only_timings(self, small_report):
        stripped = strip_timings(small_report)
        for entry in stripped["results"]:
            assert "fit_seconds" not in entry
            assert "score_seconds" not in entry
            assert set(entry["metrics"]) == METRIC_KEYS
        # The original report is untouched (strip is a copy).
        assert "fit_seconds" in small_report["results"][0]


class TestConfigValidation:
    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            ZooRunConfig(seeds=())

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            ZooRunConfig(k=0)

    def test_unknown_scenario_fails_cleanly(self):
        with pytest.raises(MeasureError, match="unknown scenario"):
            run_zoo(ZooRunConfig(scenarios=("nope",), detectors=("lof",)))

    def test_unknown_detector_fails_cleanly(self):
        with pytest.raises(MeasureError, match="unknown detector"):
            run_zoo(
                ZooRunConfig(
                    scenarios=("fraud-ring",), detectors=("nope",), quick=True
                )
            )


class TestSummary:
    def test_renders_every_cell(self, small_report):
        text = render_summary(small_report)
        lines = text.splitlines()
        assert len(lines) == 1 + len(small_report["results"])
        assert "auc" in lines[0]
        assert any("fraud-ring" in line and "ppr" in line for line in lines)
