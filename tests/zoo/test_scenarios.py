"""Scenario-grid tests: registry coverage, ground truth, determinism."""

from __future__ import annotations

import pytest

from repro.exceptions import MeasureError
from repro.zoo import available_scenarios, build_scenario, get_scenario

from tests.zoo.conftest import query_for


class TestRegistry:
    def test_at_least_four_archetypes(self):
        names = available_scenarios()
        archetypes = {get_scenario(name).archetype for name in names}
        assert len(names) >= 4
        assert {
            "attribute",
            "structural",
            "fraud-ring",
            "compromised-host",
        } <= archetypes

    def test_unknown_scenario_rejected(self):
        with pytest.raises(MeasureError, match="unknown scenario"):
            build_scenario("no-such-scenario")


class TestInstances:
    def test_outliers_are_candidates(self, scenario_instance):
        """Every planted outlier must appear in the evaluated candidate
        set — otherwise the labels could never be recovered."""
        query = query_for(scenario_instance)
        assert scenario_instance.outliers
        assert set(scenario_instance.outliers) <= set(query.candidate_names)

    def test_outliers_are_a_minority(self, scenario_instance):
        query = query_for(scenario_instance)
        assert len(scenario_instance.outliers) < len(query.candidate_names) / 2

    def test_anchor_exists_in_network(self, scenario_instance):
        anchor = scenario_instance.anchor
        assert anchor is not None
        names = scenario_instance.network.vertex_names(anchor.type)
        assert 0 <= anchor.index < len(names)

    def test_feature_path_validates(self, scenario_instance):
        scenario_instance.feature_path.validate(
            scenario_instance.network.schema
        )

    @pytest.mark.parametrize("quick", [True, False])
    def test_same_seed_same_instance(self, scenario_instance, quick):
        """Rebuilding from the same seed reproduces the network and labels."""
        name = scenario_instance.name
        first = build_scenario(name, 7, quick=quick)
        second = build_scenario(name, 7, quick=quick)
        assert first.outliers == second.outliers
        assert first.network.num_vertices() == second.network.num_vertices()
        assert first.network.num_edges() == second.network.num_edges()

    def test_different_seeds_differ(self, scenario_instance):
        """Seeds must actually steer generation (no frozen RNG)."""
        name = scenario_instance.name
        first = build_scenario(name, 0, quick=True)
        second = build_scenario(name, 1, quick=True)
        assert first.network.num_edges() != second.network.num_edges()

    def test_quick_is_smaller(self, scenario_instance):
        name = scenario_instance.name
        quick = build_scenario(name, 0, quick=True)
        full = build_scenario(name, 0, quick=False)
        assert quick.network.num_vertices() < full.network.num_vertices()
