"""Property tests for the detector contract, over every registered detector.

Hypothesis drives the laws the contract docstring promises:

* score vectors always align with the candidate set, finite float64;
* fixed seed ⇒ bit-identical scores, on arbitrary candidate subsets;
* vertex relabeling (permuting the corpus's publication insertion order)
  permutes the scores with it — for every detector whose registry entry
  declares ``equivariant=True``.  The NMF/k-means-based detectors are
  registered non-equivariant (their seeded initialization depends on row
  order) and are exercised on the other laws only.

The shared settings profile in ``tests/conftest.py`` applies (no
deadline, bounded examples); per-test ``@settings`` only tightens
``max_examples`` where each example builds networks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.synthetic import BibliographicNetworkGenerator, GeneratorConfig
from repro.metapath.metapath import MetaPath
from repro.zoo import ZooQuery, available_detectors, get_detector_spec, make_detector

# Tiny corpus: every example builds networks and runs a detector, so the
# population stays minimal while keeping >1 community (cross-community
# structure) and enough authors for the k-based detectors.
_TINY = GeneratorConfig(
    num_communities=2,
    authors_per_community=8,
    venues_per_community=2,
    terms_per_community=6,
    common_terms=3,
    papers_per_community=18,
    missing_venue_prob=0.0,
    missing_author_prob=0.0,
)

FEATURE_PATH = MetaPath.parse("author.paper.venue")


def _corpus(corpus_seed: int, permutation_seed: int | None = None):
    """A tiny network; optionally with publication insertion order shuffled.

    Permuting the publication list relabels paper indices and changes the
    discovery order (hence indices) of authors/venues/terms — exactly the
    vertex relabeling the equivariance law quantifies over — while leaving
    the underlying graph isomorphic.
    """
    generator = BibliographicNetworkGenerator(_TINY, seed=corpus_seed)
    publications = generator.generate_publications()
    if permutation_seed is not None:
        order = np.random.default_rng(permutation_seed).permutation(
            len(publications)
        )
        publications = [publications[index] for index in order]
    return generator.build_network(publications)


def _query(network, author_names, seed: int) -> ZooQuery:
    """A ZooQuery over the given authors, in the given (name) order."""
    indices = tuple(
        network.find_vertex("author", name).index for name in author_names
    )
    return ZooQuery(
        member_type="author",
        candidate_indices=indices,
        candidate_names=tuple(author_names),
        feature_path=FEATURE_PATH,
        candidates_expr="author",
        anchor=network.find_vertex("author", author_names[0]),
        seed=seed,
    )


@pytest.mark.parametrize("detector_name", available_detectors())
class TestContractLaws:
    @given(
        corpus_seed=st.integers(0, 3),
        query_seed=st.integers(0, 5),
        subset_seed=st.integers(0, 100),
    )
    @settings(max_examples=8)
    def test_alignment_finiteness_determinism(
        self, detector_name, corpus_seed, query_seed, subset_seed
    ):
        network = _corpus(corpus_seed)
        names = network.vertex_names("author")
        # An arbitrary candidate subset (at least 3 so LOF/kNN have peers),
        # in arbitrary order.
        rng = np.random.default_rng(subset_seed)
        size = int(rng.integers(3, len(names) + 1))
        chosen = [names[i] for i in rng.permutation(len(names))[:size]]
        query = _query(network, chosen, query_seed)

        detector = make_detector(detector_name).fit(network)
        scores = detector.decision_scores(query)
        assert scores.dtype == np.float64
        assert scores.shape == (len(chosen),)
        assert np.isfinite(scores).all()

        again = (
            make_detector(detector_name).fit(network).decision_scores(query)
        )
        np.testing.assert_array_equal(scores, again)

    @given(corpus_seed=st.integers(0, 2), permutation_seed=st.integers(0, 50))
    @settings(max_examples=6)
    def test_permutation_equivariance(
        self, detector_name, corpus_seed, permutation_seed
    ):
        """Relabeled networks score candidates identically *by name*.

        Both networks contain the same graph with different vertex indices;
        querying the same author names in the same order must produce the
        same scores (up to float summation order, hence allclose rather
        than exact).  Detectors registered ``equivariant=False`` are
        skipped: their seeded random initialization is index-dependent by
        construction.
        """
        if not get_detector_spec(detector_name).equivariant:
            pytest.skip(f"{detector_name} is registered non-equivariant")
        original = _corpus(corpus_seed)
        relabeled = _corpus(corpus_seed, permutation_seed=permutation_seed)
        names = sorted(original.vertex_names("author"))
        assert sorted(relabeled.vertex_names("author")) == names

        scores_original = (
            make_detector(detector_name)
            .fit(original)
            .decision_scores(_query(original, names, seed=0))
        )
        scores_relabeled = (
            make_detector(detector_name)
            .fit(relabeled)
            .decision_scores(_query(relabeled, names, seed=0))
        )
        np.testing.assert_allclose(
            scores_original, scores_relabeled, rtol=1e-9, atol=1e-12
        )
