"""Cross-detector contract tests, parametrized over every registry entry.

Every registered detector must honor the same laws on every scenario:
aligned float64 score vectors, finiteness, seeded determinism, lifecycle
errors before ``fit``, and the typed ``UnsupportedSchemaError`` when the
fitted network's schema cannot serve the query.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.security import SecurityNetworkGenerator
from repro.exceptions import (
    ExecutionError,
    MeasureError,
    UnsupportedSchemaError,
)
from repro.metapath.metapath import MetaPath
from repro.zoo import (
    ZooQuery,
    available_detectors,
    get_detector_spec,
    make_detector,
)

from tests.zoo.conftest import query_for

pytestmark = pytest.mark.parametrize(
    "detector_name", available_detectors()
)


class TestScoreVector:
    def test_aligned_finite_float64(self, detector_name, scenario_instance):
        detector = make_detector(detector_name).fit(scenario_instance.network)
        query = query_for(scenario_instance)
        scores = detector.decision_scores(query)
        assert isinstance(scores, np.ndarray)
        assert scores.dtype == np.float64
        assert scores.shape == (len(query.candidate_indices),)
        assert np.isfinite(scores).all()

    def test_deterministic_under_fixed_seed(
        self, detector_name, scenario_instance
    ):
        """Same network, same query, same seed: bit-identical scores —
        across repeated calls on one instance and across fresh instances."""
        query = query_for(scenario_instance, seed=3)
        detector = make_detector(detector_name).fit(scenario_instance.network)
        first = detector.decision_scores(query)
        second = detector.decision_scores(query)
        fresh = (
            make_detector(detector_name)
            .fit(scenario_instance.network)
            .decision_scores(query)
        )
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, fresh)


class TestLifecycle:
    def test_unfitted_detector_raises(self, detector_name, attribute_instance):
        detector = make_detector(detector_name)
        with pytest.raises(ExecutionError, match="must be fit"):
            detector.decision_scores(query_for(attribute_instance))

    def test_fit_returns_self(self, detector_name, attribute_instance):
        detector = make_detector(detector_name)
        assert detector.fit(attribute_instance.network) is detector

    def test_fit_rejects_missing_network(self, detector_name):
        with pytest.raises(MeasureError):
            make_detector(detector_name).fit(None)


class TestSchemaRejection:
    @pytest.fixture(scope="class")
    def security_network(self):
        return (
            SecurityNetworkGenerator(
                num_users=4,
                num_hosts=5,
                logins_per_user=3,
                alerts_per_host=2,
                num_compromised=0,
                seed=0,
            )
            .generate()
            .network
        )

    def test_unknown_member_type(self, detector_name, security_network):
        """A query for a vertex type the fitted network lacks fails with
        the typed error, naming the detector, before any scoring runs."""
        detector = make_detector(detector_name).fit(security_network)
        query = ZooQuery(
            member_type="author",
            candidate_indices=(0, 1),
            candidate_names=("A", "B"),
            feature_path=MetaPath.parse("author.paper.venue"),
            candidates_expr="author",
        )
        with pytest.raises(UnsupportedSchemaError) as excinfo:
            detector.decision_scores(query)
        assert excinfo.value.detector == detector_name
        assert isinstance(excinfo.value, MeasureError)

    def test_invalid_feature_path(self, detector_name, security_network):
        """A feature meta-path with no schema edge (user.category) is
        rejected with the meta-path detail attached."""
        detector = make_detector(detector_name).fit(security_network)
        query = ZooQuery(
            member_type="user",
            candidate_indices=(0, 1),
            candidate_names=("analyst-0", "analyst-1"),
            feature_path=MetaPath.parse("user.category"),
            candidates_expr="user",
        )
        with pytest.raises(UnsupportedSchemaError) as excinfo:
            detector.decision_scores(query)
        assert excinfo.value.schema_detail


class TestRegistry:
    def test_spec_consistency(self, detector_name):
        spec = get_detector_spec(detector_name)
        assert spec.name == detector_name
        assert spec.factory().name == detector_name
        assert spec.summary

    def test_unknown_name_rejected(self, detector_name):
        with pytest.raises(MeasureError, match="unknown detector"):
            make_detector(detector_name + "-nope")
