"""The paper's Section 4.3 example queries, end to end.

The three examples are run verbatim in structure (anchor/venue names are
the synthetic corpus' own) against the ego corpus, exercising exactly the
language features each example introduces: bare coauthor queries, reference
sets, WHERE COUNT filters, and weighted multi-path judgments.
"""

import pytest

from repro.engine.detector import OutlierDetector


@pytest.fixture(scope="module")
def detector(ego_corpus):
    return OutlierDetector(ego_corpus.network, strategy="pm")


class TestExample1:
    """Top-10 outliers among a hub's coauthors, judged by venue."""

    def test_runs_and_ranks(self, ego_corpus, detector):
        result = detector.detect(
            f"""
            FIND OUTLIERS
            FROM author{{"{ego_corpus.hub}"}}.paper.author
            JUDGED BY author.paper.venue
            TOP 10;
            """
        )
        assert len(result) == 10
        assert result.reference_count == result.candidate_count


class TestExample2:
    """The same candidates, referenced against a venue's community and
    judged by venues and coauthors together."""

    def test_runs_with_reference_set(self, ego_corpus, detector):
        result = detector.detect(
            f"""
            FIND OUTLIERS
            FROM author{{"{ego_corpus.hub}"}}.paper.author
            COMPARED TO venue{{"C0-Venue-0"}}.paper.author
            JUDGED BY author.paper.venue, author.paper.author
            TOP 10;
            """
        )
        assert len(result) == 10
        assert result.reference_count != result.candidate_count

    def test_reference_set_changes_scores(self, ego_corpus, detector):
        base = detector.detect(
            f'FIND OUTLIERS FROM author{{"{ego_corpus.hub}"}}.paper.author '
            "JUDGED BY author.paper.venue TOP 10;"
        )
        referenced = detector.detect(
            f'FIND OUTLIERS FROM author{{"{ego_corpus.hub}"}}.paper.author '
            'COMPARED TO venue{"C0-Venue-0"}.paper.author '
            "JUDGED BY author.paper.venue TOP 10;"
        )
        shared = set(base.scores) & set(referenced.scores)
        assert any(
            base.scores[v] != pytest.approx(referenced.scores[v]) for v in shared
        )


class TestExample3:
    """Filtered candidates (WHERE COUNT >= 5) with weighted features."""

    def test_runs_with_filter_and_weights(self, detector, ego_corpus):
        result = detector.detect(
            """
            FIND OUTLIERS
            FROM venue{"C0-Venue-0"}.paper.author AS A
                 WHERE COUNT(A.paper) >= 5
            JUDGED BY
                author.paper.author,
                author.paper.term : 3.0
            TOP 50;
            """
        )
        assert 0 < len(result) <= 50
        # Every candidate satisfied the filter.
        network = ego_corpus.network
        for vertex in result.scores:
            assert network.degree(vertex, "paper") >= 5

    def test_filter_tightens_candidate_set(self, detector):
        loose = detector.detect(
            'FIND OUTLIERS FROM venue{"C0-Venue-0"}.paper.author '
            "JUDGED BY author.paper.author TOP 50;"
        )
        tight = detector.detect(
            'FIND OUTLIERS FROM venue{"C0-Venue-0"}.paper.author AS A '
            "WHERE COUNT(A.paper) >= 5 "
            "JUDGED BY author.paper.author TOP 50;"
        )
        assert tight.candidate_count < loose.candidate_count
