"""Smoke tests: every example script must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stdout[-2000:]}\n"
        f"{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} produced no output"
