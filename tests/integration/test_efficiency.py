"""Integration tests for the efficiency claims (paper Section 7.3 shape).

Absolute times are environment-dependent; these tests assert the *relative*
claims: indexed strategies beat the baseline, SPM trades index size for
speed, and the SPM threshold sweep is monotone in index size.
"""

import pytest

from repro.datagen.workloads import generate_query_set
from repro.engine.detector import OutlierDetector
from repro.engine.index import build_pm_index, build_spm_index
from repro.engine.optimizer import WorkloadAnalyzer
from repro.query.templates import QUERY_TEMPLATES, TEMPLATE_Q1


@pytest.fixture(scope="module")
def workload(ego_corpus):
    return generate_query_set(ego_corpus.network, TEMPLATE_Q1, 40, seed=17)


class TestFigure3Shape:
    """Strategy comparisons use ``materialization_seconds``: batched
    execution collapsed end-to-end times on test-sized corpora to within
    timer noise, and parsing/scoring are identical across strategies —
    the materialization phases are what Figure 3 varies."""

    def test_pm_faster_than_baseline(self, ego_corpus, workload):
        network = ego_corpus.network
        baseline = OutlierDetector(network, strategy="baseline")
        pm = OutlierDetector(network, strategy="pm")
        __, baseline_stats = baseline.detect_many(workload, skip_failures=True)
        __, pm_stats = pm.detect_many(workload, skip_failures=True)
        assert (
            pm_stats.materialization_seconds
            < baseline_stats.materialization_seconds
        )

    def test_spm_faster_than_baseline(self, ego_corpus, workload):
        network = ego_corpus.network
        baseline = OutlierDetector(network, strategy="baseline")
        spm = OutlierDetector(
            network, strategy="spm", spm_workload=workload, spm_threshold=0.01
        )
        __, baseline_stats = baseline.detect_many(workload, skip_failures=True)
        __, spm_stats = spm.detect_many(workload, skip_failures=True)
        assert (
            spm_stats.materialization_seconds
            < baseline_stats.materialization_seconds
        )


class TestIndexSizeTradeoffs:
    def test_spm_index_smaller_than_pm(self, ego_corpus, workload):
        network = ego_corpus.network
        analyzer = WorkloadAnalyzer(network)
        analyzer.analyze_many(workload)
        spm_index = analyzer.build_index(0.05)
        pm_index = build_pm_index(network)
        assert 0 < spm_index.size_bytes() < pm_index.size_bytes()

    def test_figure5b_threshold_monotonicity(self, ego_corpus, workload):
        """Index size is non-increasing in the frequency threshold."""
        network = ego_corpus.network
        analyzer = WorkloadAnalyzer(network)
        analyzer.analyze_many(workload)
        sizes = [
            analyzer.build_index(threshold).size_bytes()
            for threshold in (0.001, 0.01, 0.05, 0.1)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_lower_threshold_indexes_more_vertices(self, ego_corpus, workload):
        network = ego_corpus.network
        analyzer = WorkloadAnalyzer(network)
        analyzer.analyze_many(workload)
        low = set(analyzer.frequent_vertices(0.01))
        high = set(analyzer.frequent_vertices(0.2))
        assert high <= low


class TestFigure4PhaseShape:
    def test_spm_records_both_materialization_phases(self, ego_corpus, workload):
        """With a selective index, some vectors hit and some traverse."""
        network = ego_corpus.network
        detector = OutlierDetector(
            network, strategy="spm", spm_workload=workload[:10], spm_threshold=0.2
        )
        __, stats = detector.detect_many(workload, skip_failures=True)
        assert stats.indexed_vectors > 0
        assert stats.traversed_vectors > 0
        assert stats.not_indexed_seconds > 0
        assert stats.indexed_seconds > 0

    def test_not_indexed_dominates_indexed(self, ego_corpus, workload):
        """With most vectors uncovered, the not-indexed phase dominates
        total materialization time — the Figure 4 shape.  Block-granular
        accounting attributes time by element counts rather than per-row
        timers, so the aggregate dominance (not a per-vector marginal-cost
        comparison) is the invariant that survives batching."""
        network = ego_corpus.network
        detector = OutlierDetector(
            network, strategy="spm", spm_workload=workload[:10], spm_threshold=0.2
        )
        __, stats = detector.detect_many(workload, skip_failures=True)
        assert stats.traversed_vectors > stats.indexed_vectors
        assert stats.not_indexed_seconds > stats.indexed_seconds


class TestAllTemplatesRun:
    @pytest.mark.parametrize("template", QUERY_TEMPLATES, ids=lambda t: t.name)
    def test_template_workloads_execute(self, ego_corpus, template):
        network = ego_corpus.network
        queries = generate_query_set(network, template, 10, seed=23)
        detector = OutlierDetector(network, strategy="pm")
        results, stats = detector.detect_many(queries, skip_failures=True)
        assert results, f"no query of template {template.name} produced results"
        for result in results:
            assert len(result) <= 10
