"""Integration tests reproducing the paper's case studies (Tables 3 and 5).

These run full queries over the planted hub ego corpus and assert the
*shape* of the paper's findings:

* Table 3 — NetOut's top outliers are established cross-field authors;
  PathSim and CosSim are biased toward authors with almost no papers.
* Table 5, query 1 vs query 2 — judging by venues vs by coauthors yields
  substantially different rankings (outlier semantics are query-relative).
* Table 5, query 3 — the ``NULL`` missing-data artifact surfaces as a top
  outlier among a venue's authors.
"""

import pytest

from repro.engine.detector import OutlierDetector

VENUE_QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.venue TOP 10;"
)
COAUTHOR_QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.author TOP 10;"
)


@pytest.fixture(scope="module")
def detectors(ego_corpus):
    return {
        name: OutlierDetector(ego_corpus.network, strategy="pm", measure=name)
        for name in ("netout", "pathsim", "cossim")
    }


class TestTable3MeasureComparison:
    def test_netout_top5_are_established_cross_field(self, ego_corpus, detectors):
        top5 = detectors["netout"].detect(VENUE_QUERY).names()[:5]
        assert set(top5) == set(ego_corpus.cross_field)

    def test_pathsim_top5_are_low_visibility(self, ego_corpus, detectors):
        top5 = detectors["pathsim"].detect(VENUE_QUERY).names()[:5]
        assert set(top5) == set(ego_corpus.students)

    def test_cossim_top5_are_low_visibility(self, ego_corpus, detectors):
        top5 = detectors["cossim"].detect(VENUE_QUERY).names()[:5]
        assert set(top5) == set(ego_corpus.students)

    def test_netout_does_not_exclude_students_entirely(self, ego_corpus, detectors):
        """Tseng's lesson: NetOut doesn't discriminate by visibility —
        the single-paper students still appear in the top-10."""
        top10 = detectors["netout"].detect(VENUE_QUERY).names()
        assert set(ego_corpus.students) & set(top10)

    def test_netout_outliers_have_wide_visibility_range(self, ego_corpus, detectors):
        """Paper: NetOut's outliers range from ~30 to ~300 papers."""
        network = ego_corpus.network
        top5 = detectors["netout"].detect(VENUE_QUERY).names()[:5]
        degrees = [
            network.degree(network.find_vertex("author", name), "paper")
            for name in top5
        ]
        assert max(degrees) / max(min(degrees), 1) > 1.5

    def test_pathsim_outliers_have_tiny_records(self, ego_corpus, detectors):
        """Paper: all top-5 PathSim outliers have fewer than ~2 papers."""
        network = ego_corpus.network
        top5 = detectors["pathsim"].detect(VENUE_QUERY).names()[:5]
        for name in top5:
            assert network.degree(network.find_vertex("author", name), "paper") <= 2


class TestTable5QuerySensitivity:
    def test_venue_and_coauthor_judgments_differ(self, detectors):
        """Table 5: two judgments over the same candidates barely overlap."""
        by_venue = detectors["netout"].detect(VENUE_QUERY).names()
        by_coauthor = detectors["netout"].detect(COAUTHOR_QUERY).names()
        overlap = set(by_venue) & set(by_coauthor)
        assert len(overlap) <= 5
        assert by_venue != by_coauthor

    def test_normal_coauthors_are_not_venue_outliers(self, ego_corpus, detectors):
        top5 = detectors["netout"].detect(VENUE_QUERY).names()[:5]
        assert not set(top5) & set(ego_corpus.normal_coauthors)


class TestTable5NullArtifact:
    def test_null_author_surfaces_for_its_venue(self):
        """A venue whose author roster includes the NULL missing-data marker
        ranks NULL among the top outliers by publishing venues."""
        from repro.datagen.synthetic import (
            BibliographicNetworkGenerator,
            GeneratorConfig,
        )

        # The paper's corpus is ~1000x larger, so even a tiny missing-author
        # rate gives NULL an enormous scattered record; at our scale the rate
        # must be higher for NULL to accumulate the same kind of profile
        # (its visibility grows quadratically with records per venue, which
        # is what drives its Ω toward 1).
        config = GeneratorConfig(
            num_communities=5,
            authors_per_community=40,
            venues_per_community=6,
            papers_per_community=400,
            missing_author_prob=0.05,
        )
        generator = BibliographicNetworkGenerator(config, seed=11)
        network = generator.build_network()
        assert network.has_vertex("author", "NULL")
        # Pick the biggest venue NULL has published in.
        null_author = network.find_vertex("author", "NULL")
        venues = network.neighbor_counts(null_author, "paper")
        assert venues, "NULL must have papers"
        # Query a venue the NULL marker actually published in.
        from repro.metapath.counting import neighborhood
        from repro.metapath.metapath import MetaPath

        null_venues = {
            network.vertex_name(v)
            for v in neighborhood(
                network, MetaPath.parse("author.paper.venue"), null_author
            )
        }
        central_venue = next(
            name
            for name in (generator.venue_name(0, r) for r in range(6))
            if name in null_venues
        )
        detector = OutlierDetector(network, strategy="pm")
        result = detector.detect(
            f'FIND OUTLIERS FROM venue{{"{central_venue}"}}.paper.author '
            "JUDGED BY author.paper.venue TOP 10;"
        )
        # The NULL marker has papers scattered over every community's venues,
        # so relative to this venue's regulars it is a strong outlier.
        assert "NULL" in result.names()


class TestCrossStrategyConsistency:
    def test_all_strategies_agree_on_case_study(self, ego_corpus):
        from repro.datagen.workloads import generate_query_set
        from repro.query.templates import TEMPLATE_Q1

        network = ego_corpus.network
        workload = generate_query_set(network, TEMPLATE_Q1, 20, seed=3)
        rankings = {}
        for strategy in ("baseline", "pm", "spm"):
            kwargs = {}
            if strategy == "spm":
                kwargs = {"spm_workload": workload, "spm_threshold": 0.05}
            detector = OutlierDetector(network, strategy=strategy, **kwargs)
            results, __ = detector.detect_many(workload, skip_failures=True)
            rankings[strategy] = [tuple(r.names()) for r in results]
        assert rankings["baseline"] == rankings["pm"] == rankings["spm"]
