"""Moderate-scale integration: correctness and sanity at ~10x test size.

Runs a ~20k-paper corpus through index build, query execution under all
strategies, and the progressive executor — asserting cross-strategy
agreement and basic performance sanity (PM beats baseline).  Kept to a few
seconds of wall time so the suite stays fast.
"""

import time

import pytest

from repro.datagen.synthetic import (
    BibliographicNetworkGenerator,
    EgoNetworkSpec,
    GeneratorConfig,
    hub_ego_corpus,
)
from repro.datagen.workloads import generate_query_set
from repro.engine.detector import OutlierDetector
from repro.query.templates import TEMPLATE_Q1


@pytest.fixture(scope="module")
def large_corpus():
    config = GeneratorConfig(
        num_communities=6,
        authors_per_community=400,
        venues_per_community=12,
        terms_per_community=300,
        common_terms=60,
        papers_per_community=3200,
    )
    return hub_ego_corpus(
        config=config,
        spec=EgoNetworkSpec(
            hub_papers=100,
            cross_field_papers=(250, 400),
            cross_field_home_papers=4,
            seed=99,
        ),
    )


class TestScale:
    def test_corpus_scale(self, large_corpus):
        network = large_corpus.network
        assert network.num_vertices("paper") > 19_000
        assert network.num_vertices("author") > 2_000

    def test_strategies_agree_at_scale(self, large_corpus):
        network = large_corpus.network
        workload = generate_query_set(network, TEMPLATE_Q1, 12, seed=1)
        rankings = {}
        timings = {}
        for strategy in ("baseline", "pm"):
            detector = OutlierDetector(network, strategy=strategy)
            start = time.perf_counter()
            results, __ = detector.detect_many(workload, skip_failures=True)
            timings[strategy] = time.perf_counter() - start
            rankings[strategy] = [tuple(r.names()) for r in results]
        assert rankings["baseline"] == rankings["pm"]
        # Index build happens inside the PM constructor, not the timing
        # window — queries themselves must be faster.
        assert timings["pm"] < timings["baseline"]

    def test_case_study_shape_survives_scale(self, large_corpus):
        network = large_corpus.network
        detector = OutlierDetector(network, strategy="pm")
        result = detector.detect(
            f'FIND OUTLIERS FROM author{{"{large_corpus.hub}"}}.paper.author '
            "JUDGED BY author.paper.venue TOP 5;"
        )
        assert set(result.names()) == set(large_corpus.cross_field)

    def test_progressive_matches_exact_at_scale(self, large_corpus):
        from repro.engine.progressive import ProgressiveQueryExecutor
        from repro.engine.strategies import PMStrategy

        network = large_corpus.network
        query = (
            f'FIND OUTLIERS FROM author{{"{large_corpus.hub}"}}.paper.author '
            "JUDGED BY author.paper.venue TOP 5;"
        )
        strategy = PMStrategy(network)
        exact = OutlierDetector(network, strategy=strategy).detect(query)
        progressive = ProgressiveQueryExecutor(strategy, chunk_size=32, seed=0)
        result, snapshot = progressive.execute(query, early_stop=False)
        assert snapshot.complete
        assert result.names() == exact.names()
