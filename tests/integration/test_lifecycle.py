"""Full-lifecycle integration: generate → persist → reload → index → query.

Exercises the complete operational story a downstream user follows: build a
corpus, save it, reload it in a "new process", build and persist an index,
reload the index, run queries under every strategy, and export results —
asserting bit-identical behaviour across the persistence boundary.
"""

import io
import json

import pytest

from repro.datagen.synthetic import GeneratorConfig, hub_ego_corpus
from repro.engine.detector import OutlierDetector
from repro.engine.index import build_pm_index
from repro.engine.index_io import load_index, save_index
from repro.engine.optimizer import WorkloadAnalyzer
from repro.engine.strategies import PMStrategy, SPMStrategy
from repro.datagen.workloads import generate_query_set
from repro.hin.io import load_json, save_json
from repro.query.templates import TEMPLATE_Q1

QUERY = (
    'FIND OUTLIERS FROM author{"Prof. Hub"}.paper.author '
    "JUDGED BY author.paper.venue TOP 5;"
)


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("lifecycle")


@pytest.fixture(scope="module")
def original_corpus():
    config = GeneratorConfig(
        num_communities=3,
        authors_per_community=80,
        venues_per_community=6,
        papers_per_community=300,
    )
    return hub_ego_corpus(config=config)


class TestLifecycle:
    def test_full_cycle(self, workdir, original_corpus):
        network = original_corpus.network
        network_path = workdir / "corpus.json"
        index_path = workdir / "pm-index"

        # 1. Persist the network and the PM index.
        save_json(network, network_path)
        save_index(build_pm_index(network), index_path)

        # 2. "New process": reload both.
        reloaded = load_json(network_path)
        index = load_index(index_path)

        # 3. Queries over the reloaded artifacts match the originals.
        expected = OutlierDetector(network, strategy="pm").detect(QUERY)
        actual = OutlierDetector(
            reloaded, strategy=PMStrategy(reloaded, index=index)
        ).detect(QUERY)
        assert actual.names() == expected.names()
        for entry_a, entry_b in zip(actual.outliers, expected.outliers):
            assert entry_a.score == pytest.approx(entry_b.score)

    def test_spm_lifecycle_with_workload(self, workdir, original_corpus):
        network = original_corpus.network
        workload = generate_query_set(network, TEMPLATE_Q1, 20, seed=3)
        analyzer = WorkloadAnalyzer(network)
        analyzer.analyze_many(workload)
        index = analyzer.build_index(0.05)
        spm_path = workdir / "spm-index"
        save_index(index, spm_path)

        reloaded_net = load_json(workdir / "corpus.json")
        reloaded_index = load_index(spm_path)
        detector = OutlierDetector(
            reloaded_net, strategy=SPMStrategy(reloaded_net, index=reloaded_index)
        )
        results, stats = detector.detect_many(workload, skip_failures=True)
        assert results
        assert stats.indexed_vectors > 0

        baseline = OutlierDetector(network)
        baseline_results, __ = baseline.detect_many(workload, skip_failures=True)
        assert [r.names() for r in results] == [r.names() for r in baseline_results]

    def test_result_export_round_trip(self, original_corpus):
        result = OutlierDetector(original_corpus.network, strategy="pm").detect(QUERY)
        payload = json.loads(result.to_json())
        assert [o["name"] for o in payload["outliers"]] == result.names()
        buffer = io.StringIO()
        assert result.to_csv(buffer) == len(result)

    def test_networkx_round_trip_preserves_query_results(self, original_corpus):
        from repro.hin.interop import from_networkx, to_networkx

        network = original_corpus.network
        round_tripped = from_networkx(to_networkx(network))
        expected = OutlierDetector(network, strategy="pm").detect(QUERY)
        actual = OutlierDetector(round_tripped, strategy="pm").detect(QUERY)
        assert actual.names() == expected.names()
