"""Tests for :mod:`repro.metapath.counting` against the paper's Section 3 examples."""

import numpy as np
import pytest

from repro.exceptions import MetaPathError
from repro.hin.network import VertexId
from repro.metapath.counting import (
    count_path_instances,
    enumerate_path_instances,
    neighbor_counts,
    neighbor_vector_dense,
    neighborhood,
)
from repro.metapath.metapath import MetaPath

PCA = MetaPath.parse("author.paper.author")
PV = MetaPath.parse("author.paper.venue")


class TestPaperSection3Examples:
    """The exact numbers quoted around Definitions 5-7."""

    def test_ava_liam_coauthor_count(self, figure1):
        ava = figure1.find_vertex("author", "Ava")
        liam = figure1.find_vertex("author", "Liam")
        assert count_path_instances(figure1, PCA, ava, liam) == 1.0

    def test_liam_zoe_coauthor_count(self, figure1):
        liam = figure1.find_vertex("author", "Liam")
        zoe = figure1.find_vertex("author", "Zoe")
        assert count_path_instances(figure1, PCA, liam, zoe) == 2.0

    def test_zoe_neighborhood(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        names = {
            figure1.vertex_name(v) for v in neighborhood(figure1, PCA, zoe)
        }
        # N_Pca(Zoe) = {Ava, Liam} plus Zoe herself (self-coauthor paths).
        assert names == {"Ava", "Liam", "Zoe"}

    def test_zoe_coauthor_vector(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        counts = neighbor_counts(figure1, PCA, zoe)
        by_name = {
            figure1.vertex_name(VertexId("author", i)): c for i, c in counts.items()
        }
        assert by_name == {"Ava": 1.0, "Liam": 2.0, "Zoe": 5.0}

    def test_zoe_venue_vector(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        counts = neighbor_counts(figure1, PV, zoe)
        by_name = {
            figure1.vertex_name(VertexId("venue", i)): c for i, c in counts.items()
        }
        assert by_name == {"ICDE": 2.0, "KDD": 3.0}


class TestNeighborCounts:
    def test_wrong_start_type_rejected(self, figure1):
        venue = figure1.find_vertex("venue", "KDD")
        with pytest.raises(MetaPathError, match="expected type"):
            neighbor_counts(figure1, PCA, venue)

    def test_single_type_path_is_identity(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        counts = neighbor_counts(figure1, MetaPath(("author",)), zoe)
        assert counts == {zoe.index: 1.0}

    def test_disconnected_vertex_has_empty_counts(self, figure1):
        lonely = figure1.add_vertex("author", "Lonely")
        assert neighbor_counts(figure1, PCA, lonely) == {}

    def test_long_path(self, figure1):
        """φ along (A P V P A): Zoe reaches Ava via ICDE (2x1 papers)."""
        zoe = figure1.find_vertex("author", "Zoe")
        long_path = MetaPath.parse("author.paper.venue.paper.author")
        counts = neighbor_counts(figure1, long_path, zoe)
        ava = figure1.find_vertex("author", "Ava")
        # Zoe has 2 ICDE papers, Ava 1 ICDE paper: 2 instances.
        assert counts[ava.index] == 2.0

    def test_dense_vector_matches_sparse_counts(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        dense = neighbor_vector_dense(figure1, PV, zoe)
        assert dense.shape == (figure1.num_vertices("venue"),)
        counts = neighbor_counts(figure1, PV, zoe)
        for index, value in enumerate(dense):
            assert counts.get(index, 0.0) == value


class TestCountPathInstances:
    def test_zero_when_disconnected(self, figure1):
        ava = figure1.find_vertex("author", "Ava")
        kdd = figure1.find_vertex("venue", "KDD")
        assert count_path_instances(figure1, PV, ava, kdd) == 0.0

    def test_wrong_end_type_rejected(self, figure1):
        ava = figure1.find_vertex("author", "Ava")
        with pytest.raises(MetaPathError, match="expected type"):
            count_path_instances(figure1, PV, ava, ava)


class TestEnumeratePathInstances:
    def test_instances_match_counts(self, figure1):
        liam = figure1.find_vertex("author", "Liam")
        zoe = figure1.find_vertex("author", "Zoe")
        instances = list(enumerate_path_instances(figure1, PCA, liam, zoe))
        assert len(instances) == 2
        for instance in instances:
            assert instance[0] == liam
            assert instance[-1] == zoe
            assert instance[1].type == "paper"

    def test_total_enumeration_matches_vector_sum(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        instances = list(enumerate_path_instances(figure1, PCA, zoe))
        total = sum(neighbor_counts(figure1, PCA, zoe).values())
        assert len(instances) == int(total)

    def test_limit(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        limited = list(enumerate_path_instances(figure1, PCA, zoe, limit=3))
        assert len(limited) == 3

    def test_wrong_types_rejected(self, figure1):
        kdd = figure1.find_vertex("venue", "KDD")
        zoe = figure1.find_vertex("author", "Zoe")
        with pytest.raises(MetaPathError):
            list(enumerate_path_instances(figure1, PCA, kdd))
        with pytest.raises(MetaPathError):
            list(enumerate_path_instances(figure1, PV, zoe, end=zoe))
