"""Tests for :mod:`repro.metapath.metapath` (Definitions 2-4 and §5.1)."""

import pytest

from repro.exceptions import MetaPathError
from repro.hin.schema import bibliographic_schema
from repro.metapath.metapath import MetaPath, WeightedMetaPath, normalize_paths


class TestConstruction:
    def test_basic(self):
        path = MetaPath(("author", "paper", "venue"))
        assert path.source == "author"
        assert path.target == "venue"
        assert path.length == 2
        assert len(path) == 3

    def test_parse_dotted(self):
        assert MetaPath.parse("author.paper.venue") == MetaPath(
            ("author", "paper", "venue")
        )

    def test_parse_strips_whitespace(self):
        assert MetaPath.parse(" author . paper ") == MetaPath(("author", "paper"))

    def test_parse_empty_component_rejected(self):
        with pytest.raises(MetaPathError):
            MetaPath.parse("author..venue")

    def test_empty_rejected(self):
        with pytest.raises(MetaPathError):
            MetaPath(())

    def test_non_string_type_rejected(self):
        with pytest.raises(MetaPathError):
            MetaPath(("author", 3))

    def test_list_input_normalized_to_tuple(self):
        path = MetaPath(["author", "paper"])
        assert path.types == ("author", "paper")
        assert hash(path) == hash(MetaPath(("author", "paper")))

    def test_str(self):
        assert str(MetaPath(("a", "p", "v"))) == "a.p.v"

    def test_iteration(self):
        assert list(MetaPath(("a", "p"))) == ["a", "p"]


class TestAlgebra:
    """Reversal / concatenation / symmetric closure (Definitions 3-4)."""

    def test_reversal_definition3(self):
        # Paper example: P = (APV) reverses to (VPA).
        assert MetaPath.parse("author.paper.venue").reversed() == MetaPath.parse(
            "venue.paper.author"
        )

    def test_reversal_is_involution(self):
        path = MetaPath.parse("a.p.v.p.t")
        assert path.reversed().reversed() == path

    def test_concat_definition4(self):
        # Paper example: (APV) concat (VPT) = (APVPT).
        joined = MetaPath.parse("author.paper.venue").concat(
            MetaPath.parse("venue.paper.term")
        )
        assert joined == MetaPath.parse("author.paper.venue.paper.term")

    def test_concat_junction_mismatch(self):
        with pytest.raises(MetaPathError, match="junction"):
            MetaPath.parse("author.paper").concat(MetaPath.parse("venue.paper"))

    def test_symmetric_section51(self):
        # Psym = P · P⁻¹ links the source type to itself.
        sym = MetaPath.parse("author.paper.venue").symmetric()
        assert sym == MetaPath.parse("author.paper.venue.paper.author")
        assert sym.is_symmetric

    def test_is_symmetric_detects_palindromes(self):
        assert MetaPath.parse("author.paper.author").is_symmetric
        assert not MetaPath.parse("author.paper.venue").is_symmetric

    def test_single_type_symmetric(self):
        single = MetaPath(("author",))
        assert single.symmetric() == single

    def test_prefix(self):
        path = MetaPath.parse("a.p.v.p.t")
        assert path.prefix(3) == MetaPath.parse("a.p.v")
        assert path.prefix(1) == MetaPath(("a",))

    def test_prefix_out_of_range(self):
        with pytest.raises(MetaPathError):
            MetaPath.parse("a.p").prefix(3)
        with pytest.raises(MetaPathError):
            MetaPath.parse("a.p").prefix(0)


class TestSchemaValidation:
    def test_valid_path(self):
        MetaPath.parse("author.paper.venue").validate(bibliographic_schema())

    def test_invalid_step(self):
        with pytest.raises(MetaPathError):
            MetaPath.parse("author.venue").validate(bibliographic_schema())


class TestWeightedMetaPath:
    def test_default_weight(self):
        weighted = WeightedMetaPath(MetaPath.parse("a.p"))
        assert weighted.weight == 1.0

    def test_parse_with_weight(self):
        weighted = WeightedMetaPath.parse("author.paper.venue: 2.0")
        assert weighted.weight == 2.0
        assert weighted.path == MetaPath.parse("author.paper.venue")

    def test_parse_without_weight(self):
        assert WeightedMetaPath.parse("a.p").weight == 1.0

    def test_parse_malformed_weight(self):
        with pytest.raises(MetaPathError, match="weight"):
            WeightedMetaPath.parse("a.p: heavy")

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(MetaPathError):
            WeightedMetaPath(MetaPath.parse("a.p"), 0.0)

    def test_str_hides_unit_weight(self):
        assert str(WeightedMetaPath.parse("a.p")) == "a.p"
        assert str(WeightedMetaPath.parse("a.p: 3")) == "a.p: 3"


class TestNormalizePaths:
    def test_mixed_inputs(self):
        paths = normalize_paths(
            [
                "a.p.v",
                "a.p.t: 2.5",
                MetaPath.parse("a.p.a"),
                WeightedMetaPath(MetaPath.parse("a.p"), 4.0),
            ]
        )
        assert [w.weight for w in paths] == [1.0, 2.5, 1.0, 4.0]

    def test_empty_rejected(self):
        with pytest.raises(MetaPathError):
            normalize_paths([])

    def test_bad_item_rejected(self):
        with pytest.raises(MetaPathError):
            normalize_paths([42])
