"""Tests for :mod:`repro.metapath.materialize`."""

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import MetaPathError
from repro.metapath.counting import neighbor_vector_dense
from repro.metapath.materialize import decompose_length2, materialize, materialize_row
from repro.metapath.metapath import MetaPath

PCA = MetaPath.parse("author.paper.author")
PV = MetaPath.parse("author.paper.venue")


class TestMaterialize:
    def test_matrix_matches_traversal(self, figure1):
        matrix = materialize(figure1, PCA)
        for vertex in figure1.vertices("author"):
            dense_row = np.asarray(matrix.getrow(vertex.index).todense()).ravel()
            expected = neighbor_vector_dense(figure1, PCA, vertex)
            np.testing.assert_allclose(dense_row, expected)

    def test_shape(self, figure1):
        matrix = materialize(figure1, PV)
        assert matrix.shape == (
            figure1.num_vertices("author"),
            figure1.num_vertices("venue"),
        )

    def test_length0_is_identity(self, figure1):
        matrix = materialize(figure1, MetaPath(("author",)))
        count = figure1.num_vertices("author")
        assert (matrix != sparse.identity(count, format="csr")).nnz == 0

    def test_symmetric_path_matrix_is_symmetric(self, figure1):
        matrix = materialize(figure1, PV.symmetric())
        assert (matrix != matrix.T).nnz == 0

    def test_invalid_path_rejected(self, figure1):
        with pytest.raises(MetaPathError):
            materialize(figure1, MetaPath.parse("author.venue"))

    def test_longer_path_composition(self, figure1):
        """M_(APVPA) == M_(APV) @ M_(APV).T (symmetric closure identity)."""
        direct = materialize(figure1, MetaPath.parse("author.paper.venue.paper.author"))
        via = materialize(figure1, PV)
        composed = (via @ via.T).tocsr()
        assert (direct != composed).nnz == 0


class TestMaterializeRow:
    def test_row_matches_full_matrix(self, figure1):
        matrix = materialize(figure1, PCA)
        for vertex in figure1.vertices("author"):
            row = materialize_row(figure1, PCA, vertex)
            assert (row != matrix.getrow(vertex.index)).nnz == 0

    def test_wrong_start_type_rejected(self, figure1):
        kdd = figure1.find_vertex("venue", "KDD")
        with pytest.raises(MetaPathError):
            materialize_row(figure1, PCA, kdd)

    def test_row_shape(self, figure1):
        zoe = figure1.find_vertex("author", "Zoe")
        row = materialize_row(figure1, PV, zoe)
        assert row.shape == (1, figure1.num_vertices("venue"))


class TestDecomposeLength2:
    def test_even_length(self):
        segments, tail = decompose_length2(MetaPath.parse("a.p.v.p.t"))
        assert [str(s) for s in segments] == ["a.p.v", "v.p.t"]
        assert tail is None

    def test_odd_length(self):
        segments, tail = decompose_length2(MetaPath.parse("a.p.v.p"))
        assert [str(s) for s in segments] == ["a.p.v"]
        assert str(tail) == "v.p"

    def test_single_hop(self):
        segments, tail = decompose_length2(MetaPath.parse("a.p"))
        assert segments == []
        assert str(tail) == "a.p"

    def test_length0(self):
        segments, tail = decompose_length2(MetaPath(("a",)))
        assert segments == []
        assert tail is None

    def test_recomposition_reproduces_path(self):
        path = MetaPath.parse("a.p.v.p.t.p.a")
        segments, tail = decompose_length2(path)
        pieces = segments + ([tail] if tail is not None else [])
        recomposed = pieces[0]
        for piece in pieces[1:]:
            recomposed = recomposed.concat(piece)
        assert recomposed == path
