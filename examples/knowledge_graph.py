"""Outlier queries over an open-schema knowledge graph (paper §8).

Run with::

    python examples/knowledge_graph.py

Section 8 notes the query language "can be applied to open-schema networks
such as a knowledge graph".  This example ingests (subject, predicate,
object) triples, infers entity types from ``type`` statements, reifies
predicates into the type system (so meta-paths read
``person.acted_in.movie``), and finds the planted genre-hopping actor.
It also shows the progressive (anytime) executor streaming provisional
answers with confidence — another §8 idea.
"""

from repro.engine.detector import OutlierDetector
from repro.engine.progressive import ProgressiveQueryExecutor
from repro.engine.strategies import PMStrategy
from repro.kg import KnowledgeGraph, movie_knowledge_graph


def main():
    # Triples can come from text (tab-separated) ...
    kg = KnowledgeGraph.from_text(
        "Tom Hanks\ttype\tperson\n"
        "Big\ttype\tmovie\n"
        "Tom Hanks\tacted in\tBig\n"
    )
    print(f"hand-built graph: {kg.triple_count} data triple(s), "
          f"predicates = {sorted(kg.predicates())}")

    # ... or from a generator.  The demo corpus plants one actor whose
    # filmography sits in the wrong genre cluster.
    corpus = movie_knowledge_graph(seed=1)
    network = corpus.graph.to_hin()
    print(f"movie knowledge graph as a HIN: {network}")
    print(f"planted outlier: {corpus.outlier_actor}\n")

    detector = OutlierDetector(network, strategy="pm")

    query = (
        'FIND OUTLIERS FROM movie{"Drama Movie 00"}.acted_in.person '
        "JUDGED BY person.acted_in.movie.has_genre.genre "
        "TOP 3;"
    )
    print("query (predicates appear inside the meta-path):")
    print(query)
    result = detector.detect(query)
    print(result.to_table(), "\n")

    # Anytime execution: provisional top-k with confidence, chunk by chunk.
    progressive = ProgressiveQueryExecutor(
        PMStrategy(network), chunk_size=4, confidence=0.95, seed=0
    )
    print("progressive execution (fraction processed -> provisional top-3):")
    for snapshot in progressive.stream(query):
        names = [network.vertex_name(v) for v in snapshot.top_k]
        marker = "stable" if snapshot.stable else ""
        print(f"  {snapshot.fraction:>5.0%}  {names}  {marker}")
        if snapshot.stable:
            break

    assert result.names()[0] == corpus.outlier_actor
    print("\nthe genre-hopping actor surfaces from raw triples. ✔")


if __name__ == "__main__":
    main()
