"""Case study on a synthetic DBLP-like corpus (paper Section 7.2, Table 5).

Run with::

    python examples/bibliographic_case_study.py

Generates a community-structured bibliographic network with planted outlier
archetypes (a prolific hub, established cross-field coauthors, one-paper
students, and NULL missing-data markers), then replays the paper's three
case-study queries and shows how the choice of feature meta-path — and of
outlierness measure — changes who counts as an outlier.
"""

from repro import OutlierDetector
from repro.datagen.synthetic import EgoNetworkSpec, GeneratorConfig, hub_ego_corpus


def main():
    config = GeneratorConfig(
        num_communities=5,
        authors_per_community=150,
        venues_per_community=10,
        papers_per_community=700,
        missing_author_prob=0.05,
    )
    corpus = hub_ego_corpus(config=config, spec=EgoNetworkSpec(seed=42))
    network = corpus.network
    print(f"corpus: {network}")
    print(f"hub: {corpus.hub}")
    print(f"planted cross-field authors: {corpus.cross_field}")
    print(f"planted students: {corpus.students}\n")

    detector = OutlierDetector(network, strategy="pm")

    # Query 1 — judge the hub's coauthors by their publishing venues.
    by_venue = detector.detect(
        f'FIND OUTLIERS FROM author{{"{corpus.hub}"}}.paper.author '
        "JUDGED BY author.paper.venue TOP 10;"
    )
    print("Q1 — coauthors judged by venues (cross-field authors surface):")
    print(by_venue.to_table(), "\n")

    # Query 2 — same candidates, judged by their coauthor networks.
    by_coauthor = detector.detect(
        f'FIND OUTLIERS FROM author{{"{corpus.hub}"}}.paper.author '
        "JUDGED BY author.paper.author TOP 10;"
    )
    print("Q2 — the same candidates judged by coauthors (a different story):")
    print(by_coauthor.to_table(), "\n")
    overlap = set(by_venue.names()) & set(by_coauthor.names())
    print(
        f"the two rankings share only {len(overlap)}/10 names — outlier "
        "semantics are relative to the query, the paper's core point.\n"
    )

    # Query 3 — outliers among a flagship venue's authors; the NULL
    # missing-data marker shows up, as in the paper's Table 5.
    flagship = "C0-Venue-0"
    venue_authors = detector.detect(
        f'FIND OUTLIERS FROM venue{{"{flagship}"}}.paper.author '
        "JUDGED BY author.paper.venue TOP 10;"
    )
    print(f"Q3 — outliers among {flagship}'s authors (note the NULL artifact):")
    print(venue_authors.to_table(), "\n")

    # Measure comparison — the paper's Table 3 bias demonstration.
    print("measure comparison on Q1 (top-5 each):")
    for measure in ("netout", "pathsim", "cossim"):
        comparison = OutlierDetector(network, strategy="pm", measure=measure)
        names = comparison.detect(
            f'FIND OUTLIERS FROM author{{"{corpus.hub}"}}.paper.author '
            "JUDGED BY author.paper.venue TOP 5;"
        ).names()
        papers = [
            f"{n} ({network.degree(network.find_vertex('author', n), 'paper'):.0f}p)"
            for n in names
        ]
        print(f"  {measure:>8}: {papers}")
    print(
        "\nPathSim/CosSim surface single-paper students (low-visibility "
        "bias); NetOut surfaces the established cross-field authors."
    )

    # Richer language features: reference sets, WHERE, weights.
    advanced = detector.detect(
        f"""
        FIND OUTLIERS
        FROM author{{"{corpus.hub}"}}.paper.author AS A
             WHERE COUNT(A.paper) >= 2
        COMPARED TO venue{{"{flagship}"}}.paper.author
        JUDGED BY author.paper.venue: 2.0, author.paper.term
        TOP 5;
        """
    )
    print("\nadvanced query (WHERE filter, reference set, weighted paths):")
    print(advanced.to_table())

    # Per-feature explanations: which aspect made the top result an outlier?
    top = advanced.outliers[0]
    print(f"\nper-feature Ω breakdown for {top.name}:")
    for path_text, score in advanced.explain_vertex(top.vertex).items():
        print(f"  {path_text:<24} Ω = {score:.3f}")

    # Visual explanations (paper §8: "visualize outliers").
    from repro.engine.evaluator import SetEvaluator
    from repro.metapath import MetaPath
    from repro.query import parse_set_expression
    from repro.viz import profile_comparison, score_distribution

    print("\nscore distribution of Q1 (top outliers marked with *):")
    print(score_distribution(by_venue, bins=10, width=30))

    evaluator = SetEvaluator(detector.strategy)
    __, coauthors = evaluator.evaluate(
        parse_set_expression(f'author{{"{corpus.hub}"}}.paper.author')
    )
    top_outlier = by_venue.outliers[0]
    print(f"\nwhy is {top_outlier.name} an outlier? venue profile vs the group:")
    print(
        profile_comparison(
            detector.strategy,
            MetaPath.parse("author.paper.venue"),
            top_outlier.vertex,
            coauthors,
            top_dimensions=6,
        )
    )


if __name__ == "__main__":
    main()
