"""Outlier queries over a relational database (paper §8).

Run with::

    python examples/relational_database.py

Section 8 suggests applying query-based outlier detection to traditional
relational databases.  This example builds a small retail database
(customers, products, purchases, support tickets), converts it to a
heterogeneous information network — tables become vertex types, foreign
keys become edges, the purchases junction collapses into direct edges, and
the ``city`` column expands into vertices — then asks relational-flavoured
outlier questions in the meta-path language.
"""

from repro import OutlierDetector
from repro.relational import (
    Column,
    ForeignKey,
    RelationalDatabase,
    Table,
    database_to_hin,
)


def build_database() -> RelationalDatabase:
    db = RelationalDatabase()

    customers = Table(
        "customer",
        [Column("id", int), Column("name"), Column("city")],
        "id",
    )
    cities = ["Boston", "Boston", "Boston", "Denver", "Denver", "Reno"]
    for i, city in enumerate(cities, start=1):
        customers.insert({"id": i, "name": f"customer-{i}", "city": city})
    db.add_table(customers)

    products = Table(
        "product", [Column("id", int), Column("name"), Column("category")], "id"
    )
    catalogue = [
        ("laptop", "electronics"),
        ("monitor", "electronics"),
        ("keyboard", "electronics"),
        ("desk", "furniture"),
        ("chair", "furniture"),
        ("tractor", "agriculture"),
        ("plough", "agriculture"),
    ]
    for i, (name, category) in enumerate(catalogue, start=1):
        products.insert({"id": i, "name": name, "category": category})
    db.add_table(products)

    purchases = Table(
        "purchase",
        [Column("id", int), Column("customer_id", int), Column("product_id", int)],
        "id",
        [
            ForeignKey("customer_id", "customer", "id"),
            ForeignKey("product_id", "product", "id"),
        ],
    )
    # Customers 1-5 buy office gear; customer 6 runs a farm.
    office_products = [1, 2, 3, 4, 5]
    rows = []
    order = 0
    for customer in range(1, 6):
        for product in office_products:
            order += 1
            rows.append(
                {"id": order, "customer_id": customer, "product_id": product}
            )
    for product in (6, 7, 6):
        order += 1
        rows.append({"id": order, "customer_id": 6, "product_id": product})
    purchases.insert_many(rows)
    db.add_table(purchases)
    return db


def main():
    db = build_database()
    print(f"database: {db.table_names}")
    db.check_integrity()
    print("referential integrity: OK")

    network = database_to_hin(
        db,
        name_columns={"customer": "name", "product": "name"},
        expand_columns={"customer": ["city"], "product": ["category"]},
    )
    print(f"converted network: {network}\n")

    detector = OutlierDetector(network)

    # "Which customer buys unlike everyone else?" — the junction collapsed
    # into customer--product edges, so this is a one-hop meta-path.
    by_products = detector.detect(
        "FIND OUTLIERS FROM customer JUDGED BY customer.product TOP 3;"
    )
    print("customers judged by the products they buy:")
    print(by_products.to_table(), "\n")

    # Judge by product *category* instead — a two-hop meta-path through the
    # expanded column, the relational analogue of the paper's venue path.
    by_category = detector.detect(
        "FIND OUTLIERS FROM customer "
        "JUDGED BY customer.product.category TOP 3;"
    )
    print("customers judged by product categories:")
    print(by_category.to_table(), "\n")

    # Restrict candidates with SQL-style set syntax: Boston customers
    # compared to everyone.
    scoped = detector.detect(
        'FIND OUTLIERS FROM city{"Boston"}.customer '
        "COMPARED TO customer "
        "JUDGED BY customer.product.category TOP 2;"
    )
    print("Boston customers referenced against all customers:")
    print(scoped.to_table())

    assert by_products.names()[0] == "customer-6"
    print("\nthe farm-supply buyer surfaces through plain relational data. ✔")


if __name__ == "__main__":
    main()
