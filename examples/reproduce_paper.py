"""One-shot reproduction driver: every paper table/figure, in one run.

Run with::

    python examples/reproduce_paper.py

Walks the paper's evaluation end to end using only the public API — the
exact Table 2 values, the Table 3 measure comparison, the Table 5 case
study, and the Figure 3-5 efficiency study — printing paper-vs-measured as
it goes.  (The benchmark suite under ``benchmarks/`` does the same with
assertions and persisted artifacts; this script is the readable tour.)
"""

import time

import numpy as np

from repro import OutlierDetector
from repro.core import get_measure
from repro.datagen import generate_query_set, hub_ego_corpus
from repro.datagen.fixtures import TABLE1_CANDIDATES, table1_network
from repro.engine import BaselineStrategy, WorkloadAnalyzer
from repro.engine.strategies import SPMStrategy
from repro.engine.executor import QueryExecutor
from repro.metapath import MetaPath
from repro.query import QUERY_TEMPLATES


def banner(title):
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}")


def reproduce_table2():
    banner("Table 2 — toy Ω values (EXACT reproduction)")
    network, candidates, reference = table1_network()
    strategy = BaselineStrategy(network)
    path = MetaPath.parse("author.paper.venue")
    phi_c = strategy.neighbor_matrix(
        path, [network.find_vertex("author", n).index for n in candidates]
    )
    phi_r = strategy.neighbor_matrix(
        path, [network.find_vertex("author", n).index for n in reference]
    )
    paper = {
        "netout": [100, 6.24, 31.11, 50, 3.33],
        "pathsim": [100, 9.97, 32.79, 1.94, 5.44],
        "cossim": [100, 12.43, 32.83, 7.04, 7.04],
    }
    print(f"{'':8s}" + "".join(f"{m:>22s}" for m in paper))
    for row, name in enumerate(TABLE1_CANDIDATES):
        cells = []
        for measure_name in paper:
            value = get_measure(measure_name).score(phi_c, phi_r)[row]
            cells.append(f"{value:8.2f} (paper {paper[measure_name][row]:g})")
        print(f"{name:8s}" + "".join(f"{c:>22s}" for c in cells))


def reproduce_tables_3_and_5(corpus):
    network = corpus.network
    banner("Table 3 — top-5 outliers per measure (shape)")
    query = (
        f'FIND OUTLIERS FROM author{{"{corpus.hub}"}}.paper.author '
        "JUDGED BY author.paper.venue TOP 5;"
    )
    for measure in ("netout", "pathsim", "cossim"):
        names = OutlierDetector(network, strategy="pm", measure=measure).detect(query).names()
        print(f"  {measure:>8}: {names}")
    print("  paper: NetOut -> established cross-field authors; "
          "PathSim/CosSim -> sub-2-paper authors")

    banner("Table 5 — case study (shape)")
    detector = OutlierDetector(network, strategy="pm")
    by_venue = detector.detect(query).names()
    by_coauthor = detector.detect(
        f'FIND OUTLIERS FROM author{{"{corpus.hub}"}}.paper.author '
        "JUDGED BY author.paper.author TOP 5;"
    ).names()
    print(f"  judged by venues    : {by_venue}")
    print(f"  judged by coauthors : {by_coauthor}")
    print("  paper: different judgments, substantially different outliers")


def reproduce_figures(corpus):
    network = corpus.network
    banner("Figure 3 — execution time per strategy (shape)")
    workloads = {
        t.name: generate_query_set(network, t, 60, seed=7) for t in QUERY_TEMPLATES
    }
    print(f"  {'set':>4} {'Baseline ms':>12} {'PM ms':>8} {'SPM ms':>8}")
    for name, workload in workloads.items():
        timings = {}
        for strategy_name in ("baseline", "pm", "spm"):
            kwargs = {}
            if strategy_name == "spm":
                kwargs = {"spm_workload": workload, "spm_threshold": 0.01}
            detector = OutlierDetector(network, strategy=strategy_name, **kwargs)
            start = time.perf_counter()
            detector.detect_many(workload, skip_failures=True)
            timings[strategy_name] = (time.perf_counter() - start) * 1e3
        print(
            f"  {name:>4} {timings['baseline']:>12.1f} {timings['pm']:>8.1f} "
            f"{timings['spm']:>8.1f}"
        )
    print("  paper: PM/SPM 5-100x faster than Baseline")

    banner("Figure 4 — SPM phase breakdown (shape)")
    # A tighter threshold than the paper's 0.01: with only 60 queries at
    # this scale nearly every touched vertex clears 0.01, which would leave
    # no traversal misses to observe.
    workload = workloads["Q1"]
    detector = OutlierDetector(
        network, strategy="spm", spm_workload=workload, spm_threshold=0.05,
    )
    __, stats = detector.detect_many(workload, skip_failures=True)
    for phase, seconds in stats.breakdown().items():
        print(f"  {phase:<26s} {seconds * 1e3:8.1f} ms")
    print("  paper: materializing non-indexed vectors dominates")

    banner("Figure 5 — SPM threshold sweep (shape)")
    analyzer = WorkloadAnalyzer(network)
    for queries in workloads.values():
        analyzer.analyze_many(queries)
    all_queries = [q for qs in workloads.values() for q in qs]
    print(f"  {'threshold':>10} {'index MB':>9} {'avg ms':>8}")
    for threshold in (0.001, 0.01, 0.05, 0.1):
        index = analyzer.build_index(threshold)
        executor = QueryExecutor(SPMStrategy(network, index=index))
        start = time.perf_counter()
        results, __ = executor.execute_many(list(all_queries), skip_failures=True)
        average = (time.perf_counter() - start) * 1e3 / max(len(results), 1)
        print(
            f"  {threshold:>10g} {index.size_bytes() / 1e6:>9.2f} {average:>8.3f}"
        )
    print("  paper: size falls and time rises with the threshold; "
          "sweet spot 0.01-0.05")


def main():
    np.set_printoptions(precision=2)
    print("Reproducing: Kuck et al., 'Query-Based Outlier Detection in "
          "Heterogeneous Information Networks' (EDBT 2015)")
    reproduce_table2()
    corpus = hub_ego_corpus()
    reproduce_tables_3_and_5(corpus)
    reproduce_figures(corpus)
    print("\ndone — see benchmarks/ for the asserted versions and "
          "EXPERIMENTS.md for the recorded numbers.")


if __name__ == "__main__":
    main()
