"""Quickstart: build a heterogeneous network, write a query, find outliers.

Run with::

    python examples/quickstart.py

This walks the full pipeline of the paper on a tiny hand-built
bibliographic network:

1. assemble a network from publication records,
2. write a ``FIND OUTLIERS`` query in the paper's query language,
3. execute it with NetOut and inspect the ranked result.
"""

from repro import OutlierDetector
from repro.hin import BibliographicNetworkBuilder, Publication


def build_network():
    """Five data-mining authors — and one who keeps publishing in graphics."""
    builder = BibliographicNetworkBuilder()
    publications = [
        # A tight data-mining community around Alice.
        Publication("p01", ["Alice", "Bob"], "KDD", title="Mining large graphs"),
        Publication("p02", ["Alice", "Carol"], "KDD", title="Outlier detection"),
        Publication("p03", ["Alice", "Bob", "Carol"], "ICDM", title="Pattern mining"),
        Publication("p04", ["Bob"], "KDD", title="Frequent itemsets"),
        Publication("p05", ["Carol"], "ICDM", title="Stream mining"),
        Publication("p06", ["Alice", "Dave"], "KDD", title="Graph clustering"),
        Publication("p07", ["Dave"], "ICDM", title="Dense subgraphs"),
        # Erin coauthored once with Alice, but her home field is graphics.
        Publication("p08", ["Alice", "Erin"], "KDD", title="Visual graph mining"),
        Publication("p09", ["Erin"], "SIGGRAPH", title="Realtime rendering"),
        Publication("p10", ["Erin"], "SIGGRAPH", title="Shading models"),
        Publication("p11", ["Erin"], "SIGGRAPH", title="Inverse kinematics"),
        Publication("p12", ["Erin"], "EUROGRAPHICS", title="Mesh deformation"),
    ]
    builder.add_publications(publications)
    return builder.build()


def main():
    network = build_network()
    print(f"network: {network}")

    # "Find the 3 most outlying coauthors of Alice, judged by where they
    # publish" — the paper's motivating query, on our toy data.
    query = """
        FIND OUTLIERS
        FROM author{"Alice"}.paper.author
        JUDGED BY author.paper.venue
        TOP 3;
    """

    detector = OutlierDetector(network, strategy="pm", measure="netout")

    print("\nquery:")
    print(query)
    print("execution plan:")
    print(detector.explain(query).describe())

    result = detector.detect(query)
    print("\ntop outliers (lower Ω = more outlying):")
    print(result.to_table())

    # Erin is the planted outlier: most of her venues are graphics venues
    # the rest of Alice's coauthors never touch.
    assert result.names()[0] == "Erin"
    print("\nErin's publishing profile is the odd one out, as planted. ✔")


if __name__ == "__main__":
    main()
