"""Temporal outlier analysis with subnetwork slicing.

Run with::

    python examples/temporal_analysis.py

Outlierness is relative to the data in scope.  This example builds a
bibliographic corpus with publication years, slices it into time windows
with :func:`repro.hin.slice_by_attribute`, and tracks how an author's
NetOut score among her coauthors changes as her publishing behaviour
drifts: a classic "field switcher" looks perfectly normal early on and
becomes a strong outlier once her late-career venues diverge.
"""

from repro import OutlierDetector
from repro.hin import BibliographicNetworkBuilder, Publication, slice_by_attribute
from repro.viz import sparkline


def build_corpus():
    """Three eras of a small community; Dana switches fields around 2010."""
    builder = BibliographicNetworkBuilder()
    publications = []
    counter = 0

    def publish(author, venue, year, coauthors=()):
        nonlocal counter
        counter += 1
        publications.append(
            Publication(
                f"p{counter:04d}",
                [author, *coauthors],
                venue,
                terms=["work"],
                year=year,
            )
        )

    community = ["Alice", "Bob", "Carol", "Dana"]
    hub = "Alice"
    for year in range(2000, 2020):
        for author in community:
            # Everyone keeps a steady data-mining record with the hub.
            if author != hub and year % 2 == 0:
                publish(hub, "KDD", year, coauthors=[author])
            publish(author, "KDD" if year % 3 else "ICDM", year)
        # Dana drifts into graphics from 2010 on (and keeps only a token
        # presence in the old community).
        if year >= 2010:
            publish("Dana", "SIGGRAPH", year)
            publish("Dana", "SIGGRAPH", year)
    return builder, publications


def main():
    builder, publications = build_corpus()
    builder.add_publications(publications)
    network = builder.build()
    print(f"full corpus: {network}\n")

    query = (
        'FIND OUTLIERS FROM author{"Alice"}.paper.author '
        "JUDGED BY author.paper.venue TOP 4;"
    )

    windows = [(2000, 2006), (2005, 2011), (2010, 2016), (2014, 2020)]
    dana_scores = []
    print(f"{'window':>12} {'Dana rank':>10} {'Dana Ω':>8}   top outlier")
    for start, stop in windows:
        window = slice_by_attribute(
            network, "paper", "year", minimum=start, maximum=stop - 1
        )
        result = OutlierDetector(window, strategy="pm").detect(query)
        names = result.names()
        dana_vertex = window.find_vertex("author", "Dana")
        dana_score = result.scores.get(dana_vertex)
        dana_scores.append(dana_score)
        rank = names.index("Dana") + 1 if "Dana" in names else ">4"
        print(
            f"{f'{start}-{stop - 1}':>12} {rank!s:>10} {dana_score:>8.2f}   "
            f"{names[0]}"
        )

    print(f"\nDana's Ω across windows: {sparkline(dana_scores)} "
          "(falling Ω = increasingly outlying)")
    assert dana_scores[-1] < dana_scores[0]
    print("Dana's late-career field switch surfaces only in the later "
          "windows — outlierness is scope-relative. ✔")


if __name__ == "__main__":
    main()
