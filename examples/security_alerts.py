"""Query-based outlier detection beyond bibliography: security operations.

Run with::

    python examples/security_alerts.py

The paper (supported by the Army Research Lab) motivates query-based
outlier detection for security analytics.  This example builds a
heterogeneous network of users, hosts, alerts, and alert categories, plants
compromised hosts with unusual alert-category profiles, and finds them with
the same query language and NetOut measure used for bibliographic data —
no code changes, just a different schema.
"""

from repro import OutlierDetector
from repro.datagen.security import SecurityNetworkGenerator


def main():
    corpus = SecurityNetworkGenerator(
        num_users=80, num_hosts=120, num_compromised=3, seed=7
    ).generate()
    network = corpus.network
    print(f"network: {network}")
    print(f"planted compromised hosts: {sorted(corpus.compromised_hosts)}\n")

    detector = OutlierDetector(network, strategy="pm")

    # Fleet-wide triage: which hosts have the weirdest alert profiles?
    fleet = detector.detect(
        "FIND OUTLIERS FROM host "
        "JUDGED BY host.alert.category "
        "TOP 5;"
    )
    print("fleet-wide outlier hosts by alert category profile:")
    print(fleet.to_table())
    found = set(fleet.names()) & set(corpus.compromised_hosts)
    print(f"\nplanted hosts in the top-5: {sorted(found)}\n")

    # Analyst-scoped query: outliers among the hosts one analyst touches,
    # compared against the whole fleet.
    analyst = corpus.analyst_users[0]
    scoped = detector.detect(
        f'FIND OUTLIERS FROM user{{"{analyst}"}}.host '
        "COMPARED TO host "
        "JUDGED BY host.alert.category "
        "TOP 5;"
    )
    print(f"outliers among {analyst}'s hosts, referenced to the fleet:")
    print(scoped.to_table())

    # Two-hop meta-path: judge users by the alert categories raised on the
    # hosts they log into — finds users whose working set looks compromised.
    users = detector.detect(
        "FIND OUTLIERS FROM user "
        "JUDGED BY user.host.alert.category "
        "TOP 5;"
    )
    print("\noutlier users by the alert profile of their hosts:")
    print(users.to_table())

    assert found, "the planted compromise should surface in the fleet triage"
    print("\nthe planted compromise surfaces through the generic query API. ✔")


if __name__ == "__main__":
    main()
