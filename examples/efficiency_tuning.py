"""Tuning query execution: Baseline vs PM vs SPM (paper Section 6, Figures 3-5).

Run with::

    python examples/efficiency_tuning.py

Shows how to pick a materialization strategy for a workload:

* the unindexed baseline needs no memory but traverses the network per query;
* PM pre-materializes every length-2 meta-path (fastest, biggest index);
* SPM analyzes a query log and indexes only frequently touched vertices,
  trading a little speed for a much smaller index — with the threshold
  sweep of the paper's Figure 5 to pick the operating point.
"""

import time

from repro import OutlierDetector
from repro.datagen.synthetic import GeneratorConfig, hub_ego_corpus
from repro.datagen.workloads import generate_query_set
from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import WorkloadAnalyzer
from repro.engine.strategies import SPMStrategy
from repro.query.templates import TEMPLATE_Q1


def run_workload(detector, workload):
    start = time.perf_counter()
    results, stats = detector.detect_many(workload, skip_failures=True)
    elapsed = time.perf_counter() - start
    return len(results), elapsed, stats


def main():
    corpus = hub_ego_corpus(
        config=GeneratorConfig(
            num_communities=4,
            authors_per_community=200,
            venues_per_community=8,
            papers_per_community=900,
        )
    )
    network = corpus.network
    print(f"corpus: {network}")

    # A query log: the paper's Q1 template over random authors.
    workload = generate_query_set(network, TEMPLATE_Q1, 80, seed=5)
    print(f"workload: {len(workload)} queries from template Q1\n")

    print(f"{'strategy':>9} {'queries':>8} {'total s':>9} {'index MB':>9}")
    for name in ("baseline", "pm", "spm"):
        kwargs = {}
        if name == "spm":
            kwargs = {"spm_workload": workload, "spm_threshold": 0.01}
        detector = OutlierDetector(network, strategy=name, **kwargs)
        executed, elapsed, __ = run_workload(detector, workload)
        print(
            f"{name:>9} {executed:>8d} {elapsed:>9.3f} "
            f"{detector.index_size_bytes() / 1e6:>9.2f}"
        )

    # The SPM threshold sweep (paper Figure 5): pick your trade-off.
    print("\nSPM threshold sweep:")
    analyzer = WorkloadAnalyzer(network)
    analyzer.analyze_many(workload)
    print(f"{'threshold':>10} {'#indexed':>9} {'index MB':>9} {'total s':>9}")
    for threshold in (0.001, 0.01, 0.05, 0.1):
        index = analyzer.build_index(threshold)
        executor = QueryExecutor(SPMStrategy(network, index=index))
        start = time.perf_counter()
        executor.execute_many(list(workload), skip_failures=True)
        elapsed = time.perf_counter() - start
        print(
            f"{threshold:>10g} {len(analyzer.frequent_vertices(threshold)):>9d} "
            f"{index.size_bytes() / 1e6:>9.2f} {elapsed:>9.3f}"
        )

    # Inspect what the planner would do for one query under SPM.
    detector = OutlierDetector(
        network, strategy="spm", spm_workload=workload, spm_threshold=0.01
    )
    print("\nexecution plan for one workload query under SPM:")
    print(detector.explain(workload[0]).describe())


if __name__ == "__main__":
    main()
