"""Extending the framework: plugging in a custom outlierness measure.

Run with::

    python examples/custom_measure.py

Section 8 of the paper notes that other outlier detection algorithms can be
substituted into the query-based framework "as long as they support the
input specified by our queries".  The measure registry makes that a
three-step exercise:

1. subclass :class:`repro.core.Measure` (score candidates against a
   reference over neighbor-vector matrices; lower = more outlying),
2. register it under a name,
3. select it when constructing the detector.

The example wraps the from-scratch LOF baseline as a query measure and
compares its ranking with NetOut's on the planted ego corpus.
"""

import numpy as np
from scipy import sparse

from repro import Measure, OutlierDetector, register_measure
from repro.baselines.lof import local_outlier_factor
from repro.datagen.synthetic import hub_ego_corpus


class LOFMeasure(Measure):
    """LOF over neighbor vectors, adapted to the query framework.

    LOF scores the candidate set against the *union* of candidates and
    reference (it is a local-density method with no native notion of a
    reference population), and its polarity is inverted (high LOF = outlier)
    so we negate it to match the framework's lower-is-more-outlying
    convention.
    """

    name = "lof"

    def __init__(self, min_pts: int = 10) -> None:
        self.min_pts = min_pts

    def score(self, phi_candidates, phi_reference):
        candidates = sparse.csr_matrix(phi_candidates)
        reference = sparse.csr_matrix(phi_reference)
        stacked = sparse.vstack([candidates, reference]).toarray()
        min_pts = min(self.min_pts, stacked.shape[0] - 1)
        lof = local_outlier_factor(stacked, min_pts=min_pts)
        return -lof[: candidates.shape[0]]


def main():
    register_measure("lof", LOFMeasure)

    corpus = hub_ego_corpus()
    network = corpus.network
    print(f"corpus: {network}")
    print(f"planted cross-field authors: {corpus.cross_field}")
    print(f"planted students: {corpus.students}\n")

    query = (
        f'FIND OUTLIERS FROM author{{"{corpus.hub}"}}.paper.author '
        "JUDGED BY author.paper.venue TOP 10;"
    )

    for measure in ("netout", "lof"):
        detector = OutlierDetector(network, strategy="pm", measure=measure)
        result = detector.detect(query)
        print(f"top-10 under {measure}:")
        print(result.to_table(), "\n")

    netout_top = OutlierDetector(network, strategy="pm").detect(query).names()
    planted = set(corpus.cross_field) | set(corpus.students)
    recovered = len(set(netout_top) & planted)
    print(
        f"NetOut recovers {recovered}/10 planted outliers in its top-10; "
        "try the same with your own measure."
    )


if __name__ == "__main__":
    main()
