"""Ranking-quality metrics for outlier-detection evaluation.

Planted-outlier experiments (the Table 3 shape checks, the detector
ablation) judge a ranking against known ground truth.  These are the
standard retrieval metrics over ranked lists, shared by the benchmarks and
available to downstream users evaluating their own measures.

All functions take the ranked list *most-outlying first* and a collection
of relevant (ground-truth) items.
"""

from __future__ import annotations

from typing import Collection, Sequence

from repro.exceptions import MeasureError

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "average_precision",
    "reciprocal_rank",
    "rank_of",
]


def _check_k(k: int) -> None:
    if k < 1:
        raise MeasureError(f"k must be >= 1, got {k}")


def precision_at_k(ranked: Sequence, relevant: Collection, k: int) -> float:
    """Fraction of the first ``k`` ranked items that are relevant.

    The denominator is ``k`` even when fewer items are available (standard
    retrieval convention: a short ranking cannot earn full precision).
    """
    _check_k(k)
    relevant_set = set(relevant)
    hits = sum(1 for item in ranked[:k] if item in relevant_set)
    return hits / k


def recall_at_k(ranked: Sequence, relevant: Collection, k: int) -> float:
    """Fraction of the relevant items found within the first ``k``.

    Returns 0.0 for an empty relevant set (nothing to recall).
    """
    _check_k(k)
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    hits = sum(1 for item in ranked[:k] if item in relevant_set)
    return hits / len(relevant_set)


def average_precision(ranked: Sequence, relevant: Collection) -> float:
    """Mean of precision@rank over the ranks where relevant items appear.

    The canonical AP with the relevant-set size as the normalizer, so
    relevant items missing from the ranking count as misses.  Returns 0.0
    for an empty relevant set.
    """
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for position, item in enumerate(ranked, start=1):
        if item in relevant_set:
            hits += 1
            precision_sum += hits / position
    return precision_sum / len(relevant_set)


def reciprocal_rank(ranked: Sequence, relevant: Collection) -> float:
    """1 / rank of the first relevant item (0.0 when none appears)."""
    relevant_set = set(relevant)
    for position, item in enumerate(ranked, start=1):
        if item in relevant_set:
            return 1.0 / position
    return 0.0


def rank_of(item, ranked: Sequence) -> int | None:
    """1-based rank of ``item`` in the list, or ``None`` when absent."""
    for position, candidate in enumerate(ranked, start=1):
        if candidate == item:
            return position
    return None
