"""Ranking-quality metrics for outlier-detection evaluation.

Planted-outlier experiments (the Table 3 shape checks, the detector
ablation) judge a ranking against known ground truth.  These are the
standard retrieval metrics over ranked lists, shared by the benchmarks and
available to downstream users evaluating their own measures.

All ranked-list functions take the ranking *most-outlying first* and a
collection of relevant (ground-truth) items; :func:`roc_auc` instead takes
per-item binary labels and raw scores (higher = more outlying), the form
the detector-zoo harness produces.
"""

from __future__ import annotations

from typing import Collection, Sequence

import numpy as np

from repro.exceptions import MeasureError

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "average_precision",
    "reciprocal_rank",
    "rank_of",
    "roc_auc",
]


def _check_k(k: int) -> None:
    if k < 1:
        raise MeasureError(f"k must be >= 1, got {k}")


def precision_at_k(ranked: Sequence, relevant: Collection, k: int) -> float:
    """Fraction of the first ``k`` ranked items that are relevant.

    The denominator is ``k`` even when fewer items are available (standard
    retrieval convention: a short ranking cannot earn full precision).
    """
    _check_k(k)
    relevant_set = set(relevant)
    hits = sum(1 for item in ranked[:k] if item in relevant_set)
    return hits / k


def recall_at_k(ranked: Sequence, relevant: Collection, k: int) -> float:
    """Fraction of the relevant items found within the first ``k``.

    Returns 0.0 for an empty relevant set (nothing to recall).
    """
    _check_k(k)
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    hits = sum(1 for item in ranked[:k] if item in relevant_set)
    return hits / len(relevant_set)


def average_precision(ranked: Sequence, relevant: Collection) -> float:
    """Mean of precision@rank over the ranks where relevant items appear.

    The canonical AP with the relevant-set size as the normalizer, so
    relevant items missing from the ranking count as misses.  Returns 0.0
    for an empty relevant set.
    """
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for position, item in enumerate(ranked, start=1):
        if item in relevant_set:
            hits += 1
            precision_sum += hits / position
    return precision_sum / len(relevant_set)


def reciprocal_rank(ranked: Sequence, relevant: Collection) -> float:
    """1 / rank of the first relevant item (0.0 when none appears)."""
    relevant_set = set(relevant)
    for position, item in enumerate(ranked, start=1):
        if item in relevant_set:
            return 1.0 / position
    return 0.0


def roc_auc(labels: Sequence, scores: Sequence[float]) -> float:
    """Area under the ROC curve of ``scores`` against binary ``labels``.

    ``labels`` are truthy for positives (planted outliers) and falsy for
    negatives; ``scores`` are detector decision scores where **higher means
    more outlying**.  Computed via the rank-statistic identity

        AUC = (R⁺ - n⁺(n⁺ + 1)/2) / (n⁺ n⁻)

    where ``R⁺`` is the sum of the positives' ranks under *tie-averaged*
    ranking (mid-ranks), which makes the estimate exact in the presence of
    tied scores: a tie between a positive and a negative contributes 1/2,
    matching the trapezoidal ROC sweep.

    Raises
    ------
    MeasureError
        On length mismatch, non-finite scores, or degenerate labels (all
        positive or all negative — the ROC curve is undefined there).
    """
    y = np.asarray([bool(label) for label in labels])
    s = np.asarray(scores, dtype=float)
    if y.shape != s.shape or y.ndim != 1:
        raise MeasureError(
            f"labels and scores must be equal-length 1-D sequences, got "
            f"shapes {y.shape} and {s.shape}"
        )
    if not np.isfinite(s).all():
        raise MeasureError("scores must be finite to compute an AUC")
    num_pos = int(y.sum())
    num_neg = int(y.size - num_pos)
    if num_pos == 0 or num_neg == 0:
        raise MeasureError(
            f"AUC needs both classes present, got {num_pos} positives and "
            f"{num_neg} negatives"
        )
    # Tie-averaged (mid) ranks, 1-based: for each group of equal scores the
    # rank is the mean of the positions the group spans.
    order = np.argsort(s, kind="mergesort")
    sorted_scores = s[order]
    # Boundaries of tied groups in the sorted order.
    boundaries = np.flatnonzero(np.diff(sorted_scores) != 0.0) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [s.size]))
    ranks = np.empty(s.size, dtype=float)
    for start, stop in zip(starts, stops):
        ranks[order[start:stop]] = 0.5 * (start + stop - 1) + 1.0
    positive_rank_sum = float(ranks[y].sum())
    return (positive_rank_sum - num_pos * (num_pos + 1) / 2.0) / (
        num_pos * num_neg
    )


def rank_of(item, ranked: Sequence) -> int | None:
    """1-based rank of ``item`` in the list, or ``None`` when absent."""
    for position, candidate in enumerate(ranked, start=1):
        if candidate == item:
            return position
    return None
