"""Helpers for working with ``scipy.sparse`` CSR matrices.

The engine stores one CSR matrix per edge type and per materialized
meta-path.  These helpers centralize the two operations the engine repeats
everywhere — extracting a row as a sparse vector and accounting for index
storage in bytes (paper Figure 5b reports index size in bytes).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = [
    "row_vector",
    "csr_row_nnz",
    "sparse_row_bytes",
    "csr_storage_bytes",
    "VALUE_BYTES",
    "INDEX_BYTES",
    "POINTER_BYTES",
]

# Storage model used for index-size accounting: 8-byte float values,
# 4-byte int32 column indices, 8-byte row pointers.  This mirrors a
# conventional CSR layout and is what Figure 5(b) style numbers report.
VALUE_BYTES = 8
INDEX_BYTES = 4
POINTER_BYTES = 8


def row_vector(matrix: sparse.csr_matrix, row: int) -> sparse.csr_matrix:
    """Return row ``row`` of ``matrix`` as a 1 x n CSR matrix.

    Raises :class:`IndexError` for out-of-range rows rather than wrapping,
    to keep indexing bugs loud.
    """
    n_rows = matrix.shape[0]
    if not 0 <= row < n_rows:
        raise IndexError(f"row {row} out of range for matrix with {n_rows} rows")
    return matrix.getrow(row)


def csr_row_nnz(matrix: sparse.csr_matrix, row: int) -> int:
    """Number of stored non-zeros in row ``row`` without materializing it."""
    n_rows = matrix.shape[0]
    if not 0 <= row < n_rows:
        raise IndexError(f"row {row} out of range for matrix with {n_rows} rows")
    indptr = matrix.indptr
    return int(indptr[row + 1] - indptr[row])


def sparse_row_bytes(nnz: int) -> int:
    """Bytes needed to store one CSR row with ``nnz`` non-zeros.

    Counts values, column indices, and one row-pointer slot.
    """
    if nnz < 0:
        raise ValueError(f"nnz must be non-negative, got {nnz}")
    return nnz * (VALUE_BYTES + INDEX_BYTES) + POINTER_BYTES


def csr_storage_bytes(matrix: sparse.spmatrix) -> int:
    """Total bytes to store ``matrix`` in the CSR accounting model."""
    csr = matrix.tocsr()
    return int(csr.nnz) * (VALUE_BYTES + INDEX_BYTES) + (csr.shape[0] + 1) * POINTER_BYTES


def as_dense_1d(vector: sparse.spmatrix | np.ndarray) -> np.ndarray:
    """Coerce a 1 x n sparse row (or ndarray) into a dense 1-D float array."""
    if sparse.issparse(vector):
        return np.asarray(vector.todense()).ravel().astype(float)
    return np.asarray(vector, dtype=float).ravel()
