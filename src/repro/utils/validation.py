"""Small argument-validation helpers used across the library.

These exist to keep error messages uniform and constructors short; they
raise plain :class:`ValueError` / :class:`TypeError` because they guard
programming errors rather than domain errors (domain errors use the
:mod:`repro.exceptions` hierarchy).
"""

from __future__ import annotations

from typing import Any

__all__ = ["require", "require_positive", "require_probability", "require_type"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def require_type(value: Any, expected: type | tuple[type, ...], name: str) -> None:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = ", ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise TypeError(f"{name} must be of type {names}, got {type(value).__name__}")
