"""Timing instrumentation for the query engine.

The paper's efficiency study (Figures 3-5) reports both total query time and
a per-phase breakdown (meta-path materialization for non-indexed vertices,
index lookups for indexed vertices, and outlierness calculation).
:class:`PhaseTimer` accumulates wall-clock time per named phase so the
executor can report exactly those series.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Stopwatch", "PhaseTimer"]


class Stopwatch:
    """A simple start/stop wall-clock stopwatch based on ``perf_counter``."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("Stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop and return the elapsed seconds accumulated so far."""
        if self._start is None:
            raise RuntimeError("Stopwatch is not running")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None


@dataclass
class PhaseTimer:
    """Accumulates elapsed wall-clock seconds per named phase.

    Phases may be entered repeatedly; times accumulate.  Nested phases are
    allowed and each level accounts its own wall time independently (the
    engine never nests the same phase).
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager accumulating the block's wall time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Manually accumulate ``seconds`` under ``name``."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Accumulated seconds for ``name`` (0.0 if the phase never ran)."""
        return self.totals.get(name, 0.0)

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's accumulations into this one."""
        for name, seconds in other.totals.items():
            self.totals[name] = self.totals.get(name, 0.0) + seconds
        for name, count in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + count

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    @property
    def grand_total(self) -> float:
        return sum(self.totals.values())
