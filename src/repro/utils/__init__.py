"""Shared utilities: deterministic RNG plumbing, timers, sparse helpers."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timers import PhaseTimer, Stopwatch
from repro.utils.sparsetools import (
    csr_row_nnz,
    csr_storage_bytes,
    row_vector,
    sparse_row_bytes,
)
from repro.utils.validation import (
    require,
    require_positive,
    require_probability,
    require_type,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "PhaseTimer",
    "Stopwatch",
    "csr_row_nnz",
    "csr_storage_bytes",
    "row_vector",
    "sparse_row_bytes",
    "require",
    "require_positive",
    "require_probability",
    "require_type",
]
