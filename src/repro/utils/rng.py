"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed or
a :class:`numpy.random.Generator`.  Centralizing the coercion here keeps
the convention uniform and makes experiments reproducible by construction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rng"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged so callers can share a stream).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are statistically independent of each other and of the parent's
    future output, which lets parallel components draw without coupling.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]
