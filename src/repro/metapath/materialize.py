"""Sparse-matrix materialization of meta-paths.

The count matrix of meta-path ``P = (T0 T1 ... Tl)`` is the product of the
per-edge-type adjacency matrices:

    M_P = A[T0,T1] @ A[T1,T2] @ ... @ A[T(l-1),Tl]

so that ``M_P[i, j] = |π_P(vi, vj)|`` and ``φ_P(vi)`` is row ``i`` of
``M_P``.  Section 6.2 of the paper observes that any meta-path decomposes
into a chain of length-2 meta-paths (plus one single hop when the length is
odd), which is what lets the PM/SPM indexes cover arbitrary paths while only
storing length-2 products.
"""

from __future__ import annotations

from scipy import sparse

from repro.exceptions import MetaPathError
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.metapath.metapath import MetaPath

__all__ = [
    "materialize",
    "materialize_row",
    "materialize_segment",
    "decompose_length2",
]


def materialize(
    network: HeterogeneousInformationNetwork,
    path: MetaPath,
) -> sparse.csr_matrix:
    """The full count matrix ``M_P`` of ``path`` over ``network``.

    A length-0 path (single type) materializes to the identity: the only
    instance of ``(T)`` starting at ``v`` is ``v`` itself.

    Raises
    ------
    MetaPathError
        If any step of ``path`` is not a registered edge type.
    """
    path.validate(network.schema)
    size = network.num_vertices(path.source)
    if path.length == 0:
        return sparse.identity(size, dtype=float, format="csr")
    product: sparse.csr_matrix | None = None
    for left, right in zip(path.types, path.types[1:]):
        step = network.adjacency(left, right)
        product = step if product is None else product @ step
    return product.tocsr()


def materialize_segment(
    network: HeterogeneousInformationNetwork,
    segment: MetaPath,
) -> sparse.csr_matrix:
    """The full count matrix of one **length-2** segment (``A₁ @ A₂``).

    The unit the PM/SPM indexes and the serving layer's shared sub-path
    cache store: any meta-path decomposes into these segments
    (:func:`decompose_length2`), so one cached segment product serves every
    query whose path contains the segment.  Because path counts are
    non-negative integers well below 2⁵³, the float64 product is exact —
    multiplying a selection block by this matrix yields byte-identical
    rows to chaining the two hops directly.

    Raises
    ------
    MetaPathError
        If ``segment`` does not have exactly two hops (or fails schema
        validation).
    """
    if segment.length != 2:
        raise MetaPathError(
            f"materialize_segment expects a 2-hop segment, got {segment} "
            f"(length {segment.length})"
        )
    return materialize(network, segment)


def materialize_row(
    network: HeterogeneousInformationNetwork,
    path: MetaPath,
    start: VertexId,
) -> sparse.csr_matrix:
    """``φ_P(start)`` as a 1 x n sparse row, computed by vector-matrix chain.

    Unlike :func:`materialize`, this never forms intermediate full products:
    it starts from the indicator row of ``start`` and multiplies through the
    edge matrices, which is how the engine computes single neighbor vectors
    when a whole-matrix product is not cached.
    """
    if start.type != path.source:
        raise MetaPathError(
            f"vertex {start} cannot start meta-path {path}: expected type "
            f"{path.source!r}"
        )
    size = network.num_vertices(path.source)
    row = sparse.csr_matrix(
        ([1.0], ([0], [start.index])), shape=(1, size), dtype=float
    )
    for left, right in zip(path.types, path.types[1:]):
        row = row @ network.adjacency(left, right)
    return row.tocsr()


def decompose_length2(path: MetaPath) -> tuple[list[MetaPath], MetaPath | None]:
    """Split ``path`` into length-2 segments plus an optional length-1 tail.

    Returns ``(segments, tail)`` where each segment has exactly two hops and
    ``tail`` is a single-hop meta-path when ``path`` has odd length, else
    ``None``.  Concatenating ``segments + [tail]`` reproduces ``path``.
    This mirrors the decomposition in Section 6.2 that PM/SPM indexes use.

    >>> segments, tail = decompose_length2(MetaPath.parse("a.p.v.p.t"))
    >>> [str(s) for s in segments]
    ['a.p.v', 'v.p.t']
    >>> tail is None
    True
    """
    if path.length == 0:
        return [], None
    segments: list[MetaPath] = []
    position = 0
    while path.length - position >= 2:
        segments.append(MetaPath(path.types[position:position + 3]))
        position += 2
    tail: MetaPath | None = None
    if position < path.length:
        tail = MetaPath(path.types[position:position + 2])
    return segments, tail
