"""The :class:`MetaPath` value type and its algebra.

Paper Definitions 2-4: a meta-path is an ordered sequence of vertex types
``(T0 T1 ... Tl)``; it can be *reversed* (``P⁻¹ = (Tl ... T0)``) and two
paths can be *concatenated* when the junction types match.  Section 5.1
additionally builds the *symmetric* meta-path ``Psym = P · P⁻¹`` that links
the candidate type to itself — the backbone of normalized connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.exceptions import MetaPathError
from repro.hin.schema import NetworkSchema

__all__ = ["MetaPath", "WeightedMetaPath"]


@dataclass(frozen=True)
class MetaPath:
    """An ordered, immutable sequence of vertex types.

    Examples
    --------
    >>> coauthor = MetaPath(("author", "paper", "author"))
    >>> str(coauthor)
    'author.paper.author'
    >>> venue = MetaPath.parse("author.paper.venue")
    >>> venue.reversed()
    MetaPath(types=('venue', 'paper', 'author'))
    >>> str(venue.symmetric())
    'author.paper.venue.paper.author'
    """

    types: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.types:
            raise MetaPathError("a meta-path needs at least one vertex type")
        for vertex_type in self.types:
            if not isinstance(vertex_type, str) or not vertex_type:
                raise MetaPathError(
                    f"meta-path types must be non-empty strings, got {vertex_type!r}"
                )
        # Normalize lists/iterables passed positionally into a tuple.
        object.__setattr__(self, "types", tuple(self.types))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "MetaPath":
        """Parse the dotted form used by the query language, e.g. ``"a.p.v"``."""
        parts = [part.strip() for part in text.split(".")]
        if any(not part for part in parts):
            raise MetaPathError(f"malformed meta-path text: {text!r}")
        return cls(tuple(parts))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def source(self) -> str:
        """First vertex type — the type being characterized."""
        return self.types[0]

    @property
    def target(self) -> str:
        """Last vertex type — the feature dimension type."""
        return self.types[-1]

    @property
    def length(self) -> int:
        """Number of edges (hops), i.e. ``len(types) - 1``."""
        return len(self.types) - 1

    @property
    def is_symmetric(self) -> bool:
        """True when the path reads the same forwards and backwards."""
        return self.types == tuple(reversed(self.types))

    # ------------------------------------------------------------------
    # Algebra (paper Definitions 3-4, Section 5.1)
    # ------------------------------------------------------------------
    def reversed(self) -> "MetaPath":
        """``P⁻¹``: the path with its type sequence reversed (Definition 3)."""
        return MetaPath(tuple(reversed(self.types)))

    def concat(self, other: "MetaPath") -> "MetaPath":
        """``P · other``: concatenation at a shared junction type (Definition 4).

        Raises
        ------
        MetaPathError
            If ``self.target != other.source``.
        """
        if self.target != other.source:
            raise MetaPathError(
                f"cannot concatenate {self} with {other}: junction types differ "
                f"({self.target!r} vs {other.source!r})"
            )
        return MetaPath(self.types + other.types[1:])

    def symmetric(self) -> "MetaPath":
        """``Psym = P · P⁻¹``: links the source type to itself (Section 5.1)."""
        return self.concat(self.reversed())

    def prefix(self, num_types: int) -> "MetaPath":
        """The meta-path over the first ``num_types`` types."""
        if not 1 <= num_types <= len(self.types):
            raise MetaPathError(
                f"prefix length {num_types} out of range for {self}"
            )
        return MetaPath(self.types[:num_types])

    def validate(self, schema: NetworkSchema) -> None:
        """Raise :class:`~repro.exceptions.MetaPathError` if illegal in ``schema``."""
        try:
            schema.validate_type_sequence(self.types)
        except Exception as error:
            raise MetaPathError(str(error)) from error

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[str]:
        return iter(self.types)

    def __len__(self) -> int:
        return len(self.types)

    def __str__(self) -> str:
        return ".".join(self.types)


@dataclass(frozen=True)
class WeightedMetaPath:
    """A feature meta-path with a user-assigned weight (paper §4.2).

    The query language defaults unweighted paths to weight 1.0.
    """

    path: MetaPath
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise MetaPathError(
                f"meta-path weight must be positive, got {self.weight}"
            )

    @classmethod
    def parse(cls, text: str) -> "WeightedMetaPath":
        """Parse ``"a.p.v"`` or ``"a.p.v: 2.0"`` into a weighted path."""
        if ":" in text:
            path_text, _, weight_text = text.partition(":")
            try:
                weight = float(weight_text.strip())
            except ValueError as error:
                raise MetaPathError(
                    f"malformed meta-path weight in {text!r}"
                ) from error
            return cls(MetaPath.parse(path_text.strip()), weight)
        return cls(MetaPath.parse(text.strip()))

    def __str__(self) -> str:
        if self.weight == 1.0:
            return str(self.path)
        return f"{self.path}: {self.weight:g}"


def normalize_paths(
    paths: Sequence[MetaPath | WeightedMetaPath | str],
) -> list[WeightedMetaPath]:
    """Coerce a mixed sequence into :class:`WeightedMetaPath` objects.

    Accepts dotted strings (optionally ``": weight"`` suffixed), bare
    :class:`MetaPath` objects (weight defaults to 1.0), and pre-weighted
    paths (passed through).
    """
    normalized: list[WeightedMetaPath] = []
    for item in paths:
        if isinstance(item, WeightedMetaPath):
            normalized.append(item)
        elif isinstance(item, MetaPath):
            normalized.append(WeightedMetaPath(item))
        elif isinstance(item, str):
            normalized.append(WeightedMetaPath.parse(item))
        else:
            raise MetaPathError(
                f"cannot interpret {item!r} as a (weighted) meta-path"
            )
    if not normalized:
        raise MetaPathError("at least one feature meta-path is required")
    return normalized
