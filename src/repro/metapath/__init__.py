"""Meta-path algebra, path counting, and sparse materialization.

A meta-path (paper Definition 2) is an ordered sequence of vertex types.
This package provides:

* :class:`~repro.metapath.metapath.MetaPath` — the value type, with reversal,
  concatenation, and symmetric-closure operators (Definitions 3-4, §5.1).
* :mod:`~repro.metapath.counting` — per-vertex traversal-based path-instance
  counting and neighbor vectors (Definitions 5-7).  This is the engine's
  *Baseline* code path.
* :mod:`~repro.metapath.materialize` — whole-matrix materialization by
  sparse matrix products and the length-2 decomposition the PM/SPM indexes
  rely on (§6.2).
"""

from repro.metapath.metapath import MetaPath, WeightedMetaPath
from repro.metapath.counting import (
    count_path_instances,
    enumerate_path_instances,
    neighbor_counts,
    neighbor_vector_dense,
    neighborhood,
)
from repro.metapath.materialize import (
    decompose_length2,
    materialize,
    materialize_row,
)

__all__ = [
    "MetaPath",
    "WeightedMetaPath",
    "count_path_instances",
    "enumerate_path_instances",
    "neighbor_counts",
    "neighbor_vector_dense",
    "neighborhood",
    "decompose_length2",
    "materialize",
    "materialize_row",
]
