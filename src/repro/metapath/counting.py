"""Traversal-based path-instance counting and neighbor vectors.

These functions implement Definitions 5-7 of the paper by walking the
network hop by hop, accumulating path counts in dictionaries.  This is the
*unindexed* code path: it is what the engine's Baseline strategy uses, and
it also serves as the ground truth that the sparse-matrix materialization
in :mod:`repro.metapath.materialize` is tested against.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import MetaPathError
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.metapath.metapath import MetaPath

__all__ = [
    "neighbor_counts",
    "neighbor_vector_dense",
    "neighborhood",
    "count_path_instances",
    "enumerate_path_instances",
]


def _check_start(path: MetaPath, start: VertexId) -> None:
    if start.type != path.source:
        raise MetaPathError(
            f"vertex {start} cannot start meta-path {path}: expected type "
            f"{path.source!r}"
        )


def neighbor_counts(
    network: HeterogeneousInformationNetwork,
    path: MetaPath,
    start: VertexId,
) -> dict[int, float]:
    """Sparse neighbor vector of ``start`` along ``path`` as ``{index: count}``.

    This is ``φ_P(start)`` (Definition 7) restricted to its non-zero entries:
    the map from target-type vertex index to the number of path instances of
    ``path`` connecting ``start`` to that vertex.

    The walk is a frontier expansion: the frontier maps vertex index to the
    number of partial paths reaching it; one hop multiplies by parallel-edge
    counts and sums over incoming partial paths.
    """
    _check_start(path, start)
    frontier: dict[int, float] = {start.index: 1.0}
    current_type = path.source
    for next_type in path.types[1:]:
        matrix = network.adjacency(current_type, next_type)
        next_frontier: dict[int, float] = {}
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        for vertex_index, path_count in frontier.items():
            start_ptr, stop_ptr = indptr[vertex_index], indptr[vertex_index + 1]
            for neighbor, edge_count in zip(
                indices[start_ptr:stop_ptr], data[start_ptr:stop_ptr]
            ):
                key = int(neighbor)
                next_frontier[key] = next_frontier.get(key, 0.0) + path_count * edge_count
        frontier = next_frontier
        current_type = next_type
        if not frontier:
            break
    return frontier


def neighbor_vector_dense(
    network: HeterogeneousInformationNetwork,
    path: MetaPath,
    start: VertexId,
) -> np.ndarray:
    """Dense ``φ_P(start)`` over all vertices of the path's target type."""
    counts = neighbor_counts(network, path, start)
    vector = np.zeros(network.num_vertices(path.target), dtype=float)
    for index, count in counts.items():
        vector[index] = count
    return vector


def neighborhood(
    network: HeterogeneousInformationNetwork,
    path: MetaPath,
    start: VertexId,
) -> set[VertexId]:
    """``N_P(start)``: vertices connected to ``start`` by ≥1 instance (Def. 6)."""
    counts = neighbor_counts(network, path, start)
    return {VertexId(path.target, index) for index in counts}


def count_path_instances(
    network: HeterogeneousInformationNetwork,
    path: MetaPath,
    start: VertexId,
    end: VertexId,
) -> float:
    """``|π_P(start, end)|``: number of instances of ``path`` between two vertices."""
    if end.type != path.target:
        raise MetaPathError(
            f"vertex {end} cannot end meta-path {path}: expected type "
            f"{path.target!r}"
        )
    counts = neighbor_counts(network, path, start)
    return counts.get(end.index, 0.0)


def enumerate_path_instances(
    network: HeterogeneousInformationNetwork,
    path: MetaPath,
    start: VertexId,
    end: VertexId | None = None,
    *,
    limit: int | None = None,
) -> Iterator[tuple[VertexId, ...]]:
    """Yield concrete path instances (tuples of vertex ids) of ``path``.

    Parallel edges contribute distinct instances only through their counts in
    :func:`count_path_instances`; here each distinct *vertex sequence* is
    yielded once per unit of multiplicity (so the number of yielded tuples
    matches the path-instance count for integer edge weights).

    Parameters
    ----------
    end:
        When given, only instances terminating at ``end`` are yielded.
    limit:
        Stop after yielding this many instances (safety valve: instance
        counts grow exponentially with path length).
    """
    _check_start(path, start)
    if end is not None and end.type != path.target:
        raise MetaPathError(
            f"vertex {end} cannot end meta-path {path}: expected type "
            f"{path.target!r}"
        )
    yielded = 0

    def walk(position: int, prefix: tuple[VertexId, ...]) -> Iterator[tuple[VertexId, ...]]:
        nonlocal yielded
        if position == len(path.types) - 1:
            if end is None or prefix[-1] == end:
                yield prefix
            return
        current = prefix[-1]
        next_type = path.types[position + 1]
        for neighbor_index, count in sorted(
            network.neighbor_counts(current, next_type).items()
        ):
            multiplicity = int(round(count))
            neighbor = VertexId(next_type, neighbor_index)
            for _ in range(max(multiplicity, 1)):
                yield from walk(position + 1, prefix + (neighbor,))

    for instance in walk(0, (start,)):
        yield instance
        yielded += 1
        if limit is not None and yielded >= limit:
            return
