"""Core outlierness machinery (paper Section 5).

* :mod:`~repro.core.connectivity` — connectivity, visibility, and the
  normalized connectivity ``κ`` of Definition 9.
* :mod:`~repro.core.measures` — the NetOut measure (Definition 10) and the
  comparison measures ΩPathSim and ΩCosSim, all over neighbor-vector
  matrices, with both the O(|Sr|+|Sc|) vectorized path (paper Eq. 1) and a
  naive pairwise path for ablation.
* :mod:`~repro.core.aggregation` — sum/mean/min/max aggregation variants
  discussed in Section 5.2.
* :mod:`~repro.core.results` — ranked result containers.

The user-facing detector facade lives in :mod:`repro.engine.detector` (it
needs the execution engine); it is re-exported from the top-level package.
"""

from repro.core.connectivity import (
    connectivity,
    connectivity_matrix,
    normalized_connectivity,
    visibility,
    visibilities,
)
from repro.core.measures import (
    CosineMeasure,
    Measure,
    NetOutMeasure,
    PathSimMeasure,
    available_measures,
    get_measure,
    register_measure,
)
from repro.core.aggregation import AGGREGATIONS, aggregate_normalized_connectivity
from repro.core.results import OutlierResult, ScoredVertex

__all__ = [
    "connectivity",
    "connectivity_matrix",
    "normalized_connectivity",
    "visibility",
    "visibilities",
    "Measure",
    "NetOutMeasure",
    "PathSimMeasure",
    "CosineMeasure",
    "get_measure",
    "register_measure",
    "available_measures",
    "AGGREGATIONS",
    "aggregate_normalized_connectivity",
    "OutlierResult",
    "ScoredVertex",
]
