"""Aggregation of per-reference similarities into one score (paper §5.2).

The paper defines NetOut as the **sum** of normalized connectivities over
the reference set and argues against min (degenerate: most candidates are
disconnected from at least one reference vertex) and max (rewards a single
moderate connection over uniform weak connections).  The alternatives are
kept here for the ablation benchmark that replays that argument.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AGGREGATIONS", "aggregate_normalized_connectivity"]

AGGREGATIONS = ("sum", "mean", "min", "max")


def aggregate_normalized_connectivity(matrix: np.ndarray, aggregation: str) -> np.ndarray:
    """Collapse a (candidates x reference) similarity matrix row-wise.

    Parameters
    ----------
    matrix:
        Dense pairwise similarities, one row per candidate.
    aggregation:
        One of :data:`AGGREGATIONS`.

    Returns
    -------
    numpy.ndarray
        One score per candidate.  With an empty reference set every
        aggregation returns zeros (there is nothing to compare against).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D similarity matrix, got shape {matrix.shape}")
    if matrix.shape[1] == 0:
        return np.zeros(matrix.shape[0], dtype=float)
    if aggregation == "sum":
        return matrix.sum(axis=1)
    if aggregation == "mean":
        return matrix.mean(axis=1)
    if aggregation == "min":
        return matrix.min(axis=1)
    if aggregation == "max":
        return matrix.max(axis=1)
    raise ValueError(
        f"unknown aggregation {aggregation!r}; expected one of {AGGREGATIONS}"
    )
