"""Outlierness measures over neighbor-vector matrices (paper Section 5).

Each measure scores every candidate vertex against a reference set; **lower
scores mean stronger outliers** for all measures here, matching the paper's
Ω convention.

Inputs are stacked neighbor-vector matrices: ``phi_candidates`` has one row
``φ_P(v)`` per candidate and ``phi_reference`` one row per reference vertex,
both over the same feature dimension (the target type of ``P``).

Measures
--------
* :class:`NetOutMeasure` — Definition 10:
  ``Ω(v) = Σ_{r∈Sr} κ(v, r) = φ(v)·(Σ_r φ(r)) / ‖φ(v)‖²`` — the right-hand
  form is paper Equation 1, computable in O(|Sr| + |Sc|) row operations.
* :class:`PathSimMeasure` — ΩPathSim: the same sum with PathSim
  (Sun et al., VLDB 2011) in place of κ.  Inherently pairwise.
* :class:`CosineMeasure` — ΩCosSim: cosine similarity in place of κ; also
  reducible to a sum-vector form after row normalization.

A registry maps measure names (``"netout"``, ``"pathsim"``, ``"cossim"``) to
factory callables so engines and benchmarks can select measures by name and
users can plug their own (paper §8, "alternative outlierness measure").
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np
from scipy import sparse

from repro.core.aggregation import aggregate_normalized_connectivity
from repro.core.connectivity import connectivity_matrix, visibilities
from repro.exceptions import MeasureError

__all__ = [
    "Measure",
    "NetOutMeasure",
    "PathSimMeasure",
    "CosineMeasure",
    "register_measure",
    "get_measure",
    "available_measures",
]


def _to_csr(matrix: sparse.spmatrix | np.ndarray) -> sparse.csr_matrix:
    if sparse.issparse(matrix):
        return matrix.tocsr()
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2:
        raise MeasureError(f"expected a 2-D matrix of neighbor vectors, got shape {array.shape}")
    return sparse.csr_matrix(array)


def _check_shapes(phi_candidates: sparse.csr_matrix, phi_reference: sparse.csr_matrix) -> None:
    if phi_candidates.shape[1] != phi_reference.shape[1]:
        raise MeasureError(
            "candidate and reference neighbor vectors have different feature "
            f"dimensions: {phi_candidates.shape[1]} vs {phi_reference.shape[1]}"
        )


class Measure(abc.ABC):
    """Scores candidates against a reference set; lower = more outlying."""

    #: Registry name; subclasses set this.
    name: str = ""

    @abc.abstractmethod
    def score(
        self,
        phi_candidates: sparse.spmatrix | np.ndarray,
        phi_reference: sparse.spmatrix | np.ndarray,
    ) -> np.ndarray:
        """Ω score per candidate row, as a 1-D float array."""

    def score_pairwise(
        self,
        phi_candidates: sparse.spmatrix | np.ndarray,
        phi_reference: sparse.spmatrix | np.ndarray,
    ) -> np.ndarray:
        """Naive O(|Sc|·|Sr|) scoring, used as ground truth in tests/ablation.

        Default delegates to :meth:`score`; measures with a faster
        vectorized path override :meth:`score` and keep the pairwise form
        here.
        """
        return self.score(phi_candidates, phi_reference)

    @property
    def is_additive(self) -> bool:
        """True when Ω is a plain sum of per-reference contributions.

        Additive measures support progressive evaluation (paper §8): the
        executor can process the reference set in chunks and project the
        final score from a sample.  Sum-aggregated NetOut, ΩPathSim, and
        ΩCosSim are additive; min/max aggregations are not.
        """
        return False

    def contribution_matrix(
        self,
        phi_candidates: sparse.spmatrix | np.ndarray,
        phi_reference: sparse.spmatrix | np.ndarray,
    ) -> np.ndarray:
        """Per-pair contributions: entry ``(i, j)`` is reference ``j``'s
        additive contribution to candidate ``i``'s Ω.

        Only meaningful for additive measures; rows sum to
        :meth:`score_pairwise`.

        Raises
        ------
        MeasureError
            When the measure is not additive.
        """
        raise MeasureError(
            f"measure {self.name!r} is not additive; progressive evaluation "
            "is unavailable"
        )


class NetOutMeasure(Measure):
    """NetOut (Definition 10) with the Equation 1 vectorized evaluation.

    Parameters
    ----------
    aggregation:
        How per-reference normalized connectivities combine: ``"sum"``
        (the paper's definition), or ``"mean"`` / ``"min"`` / ``"max"`` for
        the Section 5.2 ablation.  Only ``"sum"`` and ``"mean"`` admit the
        O(|Sr|+|Sc|) evaluation; ``"min"``/``"max"`` fall back to pairwise.
    """

    name = "netout"

    def __init__(self, aggregation: str = "sum") -> None:
        if aggregation not in ("sum", "mean", "min", "max"):
            raise MeasureError(
                f"unknown aggregation {aggregation!r}; expected sum/mean/min/max"
            )
        self.aggregation = aggregation

    def score(self, phi_candidates, phi_reference) -> np.ndarray:
        candidates = _to_csr(phi_candidates)
        reference = _to_csr(phi_reference)
        _check_shapes(candidates, reference)
        if self.aggregation in ("min", "max"):
            return self.score_pairwise(candidates, reference)
        # Paper Equation 1: Ω(v) = φ(v)·(Σ_r φ(r)) / ‖φ(v)‖².
        reference_sum = np.asarray(reference.sum(axis=0)).ravel()
        numerators = candidates @ reference_sum
        denominators = visibilities(candidates)
        scores = np.zeros(candidates.shape[0], dtype=float)
        nonzero = denominators > 0
        scores[nonzero] = numerators[nonzero] / denominators[nonzero]
        if self.aggregation == "mean" and reference.shape[0] > 0:
            scores /= reference.shape[0]
        return scores

    def score_pairwise(self, phi_candidates, phi_reference) -> np.ndarray:
        return aggregate_normalized_connectivity(
            self._kappa_matrix(phi_candidates, phi_reference), self.aggregation
        )

    def _kappa_matrix(self, phi_candidates, phi_reference) -> np.ndarray:
        candidates = _to_csr(phi_candidates)
        reference = _to_csr(phi_reference)
        _check_shapes(candidates, reference)
        chi = connectivity_matrix(candidates, reference)
        vis = visibilities(candidates)
        kappa = np.zeros_like(chi)
        nonzero = vis > 0
        kappa[nonzero] = chi[nonzero] / vis[nonzero, None]
        return kappa

    @property
    def is_additive(self) -> bool:
        return self.aggregation == "sum"

    def contribution_matrix(self, phi_candidates, phi_reference) -> np.ndarray:
        if not self.is_additive:
            return super().contribution_matrix(phi_candidates, phi_reference)
        return self._kappa_matrix(phi_candidates, phi_reference)


class PathSimMeasure(Measure):
    """ΩPathSim: NetOut's sum with PathSim in place of κ (paper §5.2).

    ``PathSim(a, b) = 2·χ(a, b) / (χ(a, a) + χ(b, b))`` — symmetric, and
    biased toward low-visibility candidates (the bias Tables 2-3
    demonstrate).  Pairwise by nature: the per-pair denominator prevents the
    sum-vector factorization.
    """

    name = "pathsim"

    def __init__(self, aggregation: str = "sum") -> None:
        if aggregation not in ("sum", "mean", "min", "max"):
            raise MeasureError(
                f"unknown aggregation {aggregation!r}; expected sum/mean/min/max"
            )
        self.aggregation = aggregation

    def score(self, phi_candidates, phi_reference) -> np.ndarray:
        return aggregate_normalized_connectivity(
            self._similarity_matrix(phi_candidates, phi_reference),
            self.aggregation,
        )

    def _similarity_matrix(self, phi_candidates, phi_reference) -> np.ndarray:
        candidates = _to_csr(phi_candidates)
        reference = _to_csr(phi_reference)
        _check_shapes(candidates, reference)
        chi = connectivity_matrix(candidates, reference)
        vis_candidates = visibilities(candidates)
        vis_reference = visibilities(reference)
        denominators = (vis_candidates[:, None] + vis_reference[None, :]) / 2.0
        similarity = np.zeros_like(chi)
        nonzero = denominators > 0
        similarity[nonzero] = chi[nonzero] / denominators[nonzero]
        return similarity

    @property
    def is_additive(self) -> bool:
        return self.aggregation == "sum"

    def contribution_matrix(self, phi_candidates, phi_reference) -> np.ndarray:
        if not self.is_additive:
            return super().contribution_matrix(phi_candidates, phi_reference)
        return self._similarity_matrix(phi_candidates, phi_reference)


class CosineMeasure(Measure):
    """ΩCosSim: NetOut's sum with cosine similarity in place of κ (§5.2).

    After normalizing every row to unit L2 norm, the sum over the reference
    set factorizes exactly like Equation 1, so the vectorized path is
    O(|Sr| + |Sc|) as well.  Zero rows stay zero (cosine with a zero vector
    is taken as 0).
    """

    name = "cossim"

    def __init__(self, aggregation: str = "sum") -> None:
        if aggregation not in ("sum", "mean", "min", "max"):
            raise MeasureError(
                f"unknown aggregation {aggregation!r}; expected sum/mean/min/max"
            )
        self.aggregation = aggregation

    @staticmethod
    def _normalize_rows(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
        norms = np.sqrt(visibilities(matrix))
        inverse = np.zeros_like(norms)
        nonzero = norms > 0
        inverse[nonzero] = 1.0 / norms[nonzero]
        scaler = sparse.diags(inverse)
        return (scaler @ matrix).tocsr()

    def score(self, phi_candidates, phi_reference) -> np.ndarray:
        candidates = self._normalize_rows(_to_csr(phi_candidates))
        reference = self._normalize_rows(_to_csr(phi_reference))
        _check_shapes(candidates, reference)
        if self.aggregation in ("min", "max"):
            similarity = connectivity_matrix(candidates, reference)
            return aggregate_normalized_connectivity(similarity, self.aggregation)
        reference_sum = np.asarray(reference.sum(axis=0)).ravel()
        scores = candidates @ reference_sum
        if self.aggregation == "mean" and reference.shape[0] > 0:
            scores = scores / reference.shape[0]
        return np.asarray(scores, dtype=float)

    def score_pairwise(self, phi_candidates, phi_reference) -> np.ndarray:
        candidates = self._normalize_rows(_to_csr(phi_candidates))
        reference = self._normalize_rows(_to_csr(phi_reference))
        _check_shapes(candidates, reference)
        similarity = connectivity_matrix(candidates, reference)
        return aggregate_normalized_connectivity(similarity, self.aggregation)

    @property
    def is_additive(self) -> bool:
        return self.aggregation == "sum"

    def contribution_matrix(self, phi_candidates, phi_reference) -> np.ndarray:
        if not self.is_additive:
            return super().contribution_matrix(phi_candidates, phi_reference)
        candidates = self._normalize_rows(_to_csr(phi_candidates))
        reference = self._normalize_rows(_to_csr(phi_reference))
        _check_shapes(candidates, reference)
        return connectivity_matrix(candidates, reference)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[[], Measure]] = {}


def register_measure(name: str, factory: Callable[[], Measure]) -> None:
    """Register a measure factory under ``name`` (case-insensitive).

    Re-registering a name overwrites the previous factory, which lets tests
    and applications shadow built-ins.
    """
    if not name:
        raise MeasureError("measure name must be non-empty")
    _REGISTRY[name.lower()] = factory


def get_measure(name: str) -> Measure:
    """Instantiate the measure registered under ``name``.

    Raises
    ------
    MeasureError
        For unknown names; the message lists what is available.
    """
    factory = _REGISTRY.get(name.lower())
    if factory is None:
        raise MeasureError(
            f"unknown measure {name!r}; available: {', '.join(available_measures())}"
        )
    return factory()


def available_measures() -> list[str]:
    """Sorted registered measure names."""
    return sorted(_REGISTRY)


register_measure("netout", NetOutMeasure)
register_measure("pathsim", PathSimMeasure)
register_measure("cossim", CosineMeasure)
