"""Connectivity, visibility, and normalized connectivity (paper §5.1).

All functions operate on *neighbor vectors* ``φ_P(v)`` (Definition 7).  For
feature meta-path ``P`` and its symmetric closure ``Psym = P·P⁻¹``:

* connectivity  ``χ(a, b) = |π_Psym(a, b)| = φ(a) · φ(b)``
* visibility    ``χ(a, a) = ‖φ(a)‖²`` — a vertex's potential connectivity
* normalized connectivity (Definition 9)
  ``κ(a, b) = χ(a, b) / χ(a, a)``

``κ`` is deliberately asymmetric: it is the random-walk probability of
reaching ``b`` from ``a`` along ``Psym``, normalized by the probability of
returning to ``a``.  The paper's Figure 2 example (χ = 28, κ = 0.5 vs 2.0)
is reproduced in the test suite.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.exceptions import MeasureError

__all__ = [
    "connectivity",
    "visibility",
    "visibilities",
    "normalized_connectivity",
    "connectivity_matrix",
]

ArrayLike = "np.ndarray | sparse.spmatrix"


def _as_row(vector: np.ndarray | sparse.spmatrix) -> sparse.csr_matrix:
    """Coerce a 1-D dense array or 1 x n sparse matrix into a CSR row."""
    if sparse.issparse(vector):
        row = vector.tocsr()
        if row.shape[0] != 1:
            raise MeasureError(
                f"expected a single row vector, got shape {row.shape}"
            )
        return row
    array = np.asarray(vector, dtype=float)
    if array.ndim != 1:
        raise MeasureError(f"expected a 1-D vector, got shape {array.shape}")
    return sparse.csr_matrix(array)


def connectivity(
    phi_a: np.ndarray | sparse.spmatrix,
    phi_b: np.ndarray | sparse.spmatrix,
) -> float:
    """``χ(a, b)``: path-instance count of ``Psym`` between ``a`` and ``b``.

    Computed as the inner product of the two neighbor vectors.
    """
    row_a = _as_row(phi_a)
    row_b = _as_row(phi_b)
    if row_a.shape[1] != row_b.shape[1]:
        raise MeasureError(
            f"neighbor vectors have different dimensions: {row_a.shape[1]} "
            f"vs {row_b.shape[1]}"
        )
    return float((row_a @ row_b.T)[0, 0])


def visibility(phi: np.ndarray | sparse.spmatrix) -> float:
    """``χ(a, a) = ‖φ(a)‖²``: the vertex's potential connectivity."""
    row = _as_row(phi)
    return float(row.multiply(row).sum())


def visibilities(phi_matrix: sparse.spmatrix | np.ndarray) -> np.ndarray:
    """Row-wise visibilities of a stacked neighbor-vector matrix."""
    if sparse.issparse(phi_matrix):
        squared = phi_matrix.multiply(phi_matrix)
        return np.asarray(squared.sum(axis=1)).ravel()
    dense = np.asarray(phi_matrix, dtype=float)
    return np.einsum("ij,ij->i", dense, dense)


def normalized_connectivity(
    phi_a: np.ndarray | sparse.spmatrix,
    phi_b: np.ndarray | sparse.spmatrix,
) -> float:
    """``κ(a, b) = χ(a, b) / χ(a, a)`` (Definition 9).

    A vertex with zero visibility has no ``Psym`` instances at all; the
    random-walk interpretation degenerates, and we return 0.0 (maximally
    disconnected), which keeps such vertices at the outlying end of the
    NetOut ranking.
    """
    denominator = visibility(phi_a)
    if denominator == 0.0:
        return 0.0
    return connectivity(phi_a, phi_b) / denominator


def connectivity_matrix(
    phi_candidates: sparse.spmatrix | np.ndarray,
    phi_reference: sparse.spmatrix | np.ndarray,
) -> np.ndarray:
    """Dense ``χ`` matrix: entry ``(i, j)`` is χ(candidate_i, reference_j).

    This is the naive pairwise building block (O(|Sc|·|Sr|) output); the
    vectorized measures avoid forming it.
    """
    if sparse.issparse(phi_candidates) or sparse.issparse(phi_reference):
        left = sparse.csr_matrix(phi_candidates)
        right = sparse.csr_matrix(phi_reference)
        return np.asarray((left @ right.T).todense(), dtype=float)
    return np.asarray(phi_candidates, dtype=float) @ np.asarray(phi_reference, dtype=float).T
