"""Ranked outlier-detection results.

The executor returns an :class:`OutlierResult`: the top-k candidates sorted
by ascending Ω (lower = more outlying, the paper's convention), along with
the full score map and the execution statistics used by the efficiency
benchmarks.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping

from repro.hin.network import VertexId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.stats import ExecutionStats

__all__ = ["ScoredVertex", "OutlierResult"]


@dataclass(frozen=True)
class ScoredVertex:
    """One ranked outlier: vertex identity, display name, Ω score, 1-based rank."""

    vertex: VertexId
    name: str
    score: float
    rank: int


@dataclass
class OutlierResult:
    """Result of one outlier query.

    Attributes
    ----------
    outliers:
        Top-k candidates by ascending Ω.  Ties break by vertex name so
        results are deterministic.
    scores:
        Ω for *every* candidate vertex (not only the top-k).
    candidate_count, reference_count:
        Sizes of the evaluated candidate and reference sets.
    measure:
        Name of the measure that produced the scores.
    stats:
        Per-phase execution statistics (``None`` unless the executor was
        asked to collect them).
    """

    outliers: list[ScoredVertex]
    scores: dict[VertexId, float]
    candidate_count: int
    reference_count: int
    measure: str = "netout"
    stats: "ExecutionStats | None" = None
    #: Per-feature-meta-path Ω breakdown (meta-path text -> vertex -> Ω),
    #: populated for multi-feature queries so users can see *which* aspect
    #: made a candidate an outlier.  ``None`` for single-feature queries.
    feature_scores: dict[str, dict[VertexId, float]] | None = None
    #: True when the result was produced on a degraded path: a fallback
    #: materialization rung (PM → SPM → on-the-fly), or a partial scoring
    #: pass cut short by the query deadline.  The ranking is still valid —
    #: it was just computed more cheaply (or from fewer feature meta-paths)
    #: than requested.
    degraded: bool = False
    #: Human-readable explanation of *why* the result is degraded
    #: (``None`` when ``degraded`` is false).
    degradation_reason: str | None = None

    def __iter__(self) -> Iterator[ScoredVertex]:
        return iter(self.outliers)

    def __len__(self) -> int:
        return len(self.outliers)

    def names(self) -> list[str]:
        """Outlier display names in rank order."""
        return [entry.name for entry in self.outliers]

    def score_of(self, vertex: VertexId) -> float:
        """Ω of a specific candidate vertex (KeyError if not a candidate)."""
        return self.scores[vertex]

    def to_records(self) -> list[dict]:
        """The ranking as plain dictionaries (JSON-ready)."""
        return [
            {
                "rank": entry.rank,
                "name": entry.name,
                "vertex_type": entry.vertex.type,
                "vertex_index": entry.vertex.index,
                "score": entry.score,
            }
            for entry in self.outliers
        ]

    def to_dict(self) -> dict:
        """The full result as one JSON-safe dictionary (lossless).

        Unlike :meth:`to_records`/:meth:`to_json` — which keep only the
        display payload — this captures everything needed to reconstruct
        the result with :meth:`from_dict`: the complete score map, the
        per-feature breakdown, and the degradation flags.  ``stats`` is the
        one exception: execution timings describe the machine that ran the
        query, not the answer, so they do not serialize.

        The wire form for a score map is a list of ``[type, index, score]``
        triples (JSON objects cannot key on vertex identity).
        """

        def pack(scores: Mapping[VertexId, float]) -> list[list]:
            return [
                [vertex.type, vertex.index, score]
                for vertex, score in scores.items()
            ]

        payload: dict = {
            "measure": self.measure,
            "candidate_count": self.candidate_count,
            "reference_count": self.reference_count,
            "degraded": self.degraded,
            "degradation_reason": self.degradation_reason,
            "outliers": self.to_records(),
            "scores": pack(self.scores),
        }
        if self.feature_scores is not None:
            payload["feature_scores"] = {
                path_text: pack(per_path)
                for path_text, per_path in self.feature_scores.items()
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "OutlierResult":
        """Reconstruct a result from :meth:`to_dict` output.

        Round-trips scores, ranks, names, degradation flags, and the
        per-feature breakdown exactly (``stats`` comes back ``None``).
        """

        def unpack(triples) -> dict[VertexId, float]:
            return {
                VertexId(str(vertex_type), int(index)): float(score)
                for vertex_type, index, score in triples
            }

        outliers = [
            ScoredVertex(
                vertex=VertexId(
                    str(record["vertex_type"]), int(record["vertex_index"])
                ),
                name=str(record["name"]),
                score=float(record["score"]),
                rank=int(record["rank"]),
            )
            for record in payload["outliers"]
        ]
        feature_scores = None
        if payload.get("feature_scores") is not None:
            feature_scores = {
                str(path_text): unpack(triples)
                for path_text, triples in payload["feature_scores"].items()
            }
        return cls(
            outliers=outliers,
            scores=unpack(payload["scores"]),
            candidate_count=int(payload["candidate_count"]),
            reference_count=int(payload["reference_count"]),
            measure=str(payload["measure"]),
            feature_scores=feature_scores,
            degraded=bool(payload.get("degraded", False)),
            degradation_reason=payload.get("degradation_reason"),
        )

    def to_json(self) -> str:
        """The full result (ranking + metadata) as a JSON document."""
        payload = {
            "measure": self.measure,
            "candidate_count": self.candidate_count,
            "reference_count": self.reference_count,
            "outliers": self.to_records(),
        }
        if self.degraded:
            payload["degraded"] = True
            payload["degradation_reason"] = self.degradation_reason
        return json.dumps(payload)

    def to_csv(self, handle) -> int:
        """Write the ranking as CSV to an open text handle; returns rows written."""
        writer = csv.writer(handle)
        writer.writerow(["rank", "name", "vertex_type", "vertex_index", "score"])
        for record in self.to_records():
            writer.writerow(
                [
                    record["rank"],
                    record["name"],
                    record["vertex_type"],
                    record["vertex_index"],
                    record["score"],
                ]
            )
        return len(self.outliers)

    def to_table(self, *, max_rows: int | None = None) -> str:
        """Render the ranking as an aligned text table (paper Table 5 style)."""
        rows = self.outliers if max_rows is None else self.outliers[:max_rows]
        if not rows:
            return "(no outliers)"
        name_width = max(len("Name"), max(len(r.name) for r in rows))
        lines = [f"{'Rank':>4}  {'Name':<{name_width}}  {'Ω-value':>10}"]
        for entry in rows:
            lines.append(
                f"{entry.rank:>4}  {entry.name:<{name_width}}  {entry.score:>10.4g}"
            )
        return "\n".join(lines)

    def explain_vertex(self, vertex: VertexId) -> dict[str, float]:
        """Per-feature Ω of one candidate (empty for single-feature queries)."""
        if self.feature_scores is None:
            return {}
        return {
            path_text: per_path[vertex]
            for path_text, per_path in self.feature_scores.items()
            if vertex in per_path
        }

    @classmethod
    def from_scores(
        cls,
        scores: Mapping[VertexId, float],
        names: Mapping[VertexId, str],
        *,
        top_k: int,
        reference_count: int,
        measure: str = "netout",
        stats: "ExecutionStats | None" = None,
        feature_scores: "dict[str, dict[VertexId, float]] | None" = None,
        degraded: bool = False,
        degradation_reason: str | None = None,
    ) -> "OutlierResult":
        """Rank ``scores`` ascending and keep the ``top_k`` head.

        Ties break by display name, then vertex id, for determinism.
        """
        ordered = sorted(
            scores.items(), key=lambda item: (item[1], names[item[0]], item[0])
        )
        outliers = [
            ScoredVertex(vertex=vertex, name=names[vertex], score=score, rank=rank)
            for rank, (vertex, score) in enumerate(ordered[:top_k], start=1)
        ]
        return cls(
            outliers=outliers,
            scores=dict(scores),
            candidate_count=len(scores),
            reference_count=reference_count,
            measure=measure,
            stats=stats,
            feature_scores=feature_scores,
            degraded=degraded,
            degradation_reason=degradation_reason,
        )
