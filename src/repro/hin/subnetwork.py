"""Induced subnetworks: slice a HIN by per-type vertex predicates.

Analysts rarely query a whole corpus: "DBLP since 2010", "only the hosts in
this enclave".  :func:`induced_subnetwork` keeps the vertices selected by
per-type predicates (or an explicit vertex set) and every edge whose two
endpoints survive, preserving parallel-edge counts and attributes.

Combined with WHERE attribute predicates this gives two slicing levels:
subnetworks re-scope *the data* (all path counting changes), while WHERE
re-scopes *candidate/reference sets* against the full data.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.exceptions import NetworkError
from repro.hin.edges import canonical_edges
from repro.hin.network import HeterogeneousInformationNetwork, Vertex, VertexId

__all__ = ["induced_subnetwork", "slice_by_attribute"]


def induced_subnetwork(
    network: HeterogeneousInformationNetwork,
    keep: Mapping[str, Callable[[Vertex], bool]] | None = None,
    *,
    vertices: Iterable[VertexId] | None = None,
) -> HeterogeneousInformationNetwork:
    """The subnetwork induced by the selected vertices.

    Parameters
    ----------
    keep:
        Per-vertex-type predicates over full :class:`Vertex` records.
        Types not mentioned keep all their vertices.  Mutually exclusive
        with ``vertices``.
    vertices:
        An explicit vertex set to keep (types not represented keep nothing
        — an explicit set is exhaustive).

    Returns
    -------
    A new network over the same schema; vertex indices are renumbered but
    names and attributes are preserved.
    """
    if (keep is None) == (vertices is None):
        raise NetworkError("provide exactly one of `keep` or `vertices`")

    schema = network.schema
    kept: dict[str, list[VertexId]] = {t: [] for t in schema.vertex_types}
    if vertices is not None:
        for vertex_id in vertices:
            if not schema.has_vertex_type(vertex_id.type):
                raise NetworkError(
                    f"vertex type {vertex_id.type!r} is not in the schema"
                )
            kept[vertex_id.type].append(vertex_id)
        for vertex_type in kept:
            kept[vertex_type] = sorted(set(kept[vertex_type]))
    else:
        for vertex_type in schema.vertex_types:
            predicate = keep.get(vertex_type)
            for vertex_id in network.vertices(vertex_type):
                if predicate is None or predicate(network.vertex(vertex_id)):
                    kept[vertex_type].append(vertex_id)

    result = HeterogeneousInformationNetwork(schema)
    index_map: dict[VertexId, VertexId] = {}
    for vertex_type in sorted(schema.vertex_types):
        for vertex_id in kept[vertex_type]:
            vertex = network.vertex(vertex_id)
            index_map[vertex_id] = result.add_vertex(
                vertex_type, vertex.name, vertex.attributes
            )

    for original_u, original_v, count in canonical_edges(network):
        u = index_map.get(original_u)
        v = index_map.get(original_v)
        if u is not None and v is not None:
            result.add_edge(u, v, count)
    return result


def slice_by_attribute(
    network: HeterogeneousInformationNetwork,
    vertex_type: str,
    attribute: str,
    *,
    minimum: float | None = None,
    maximum: float | None = None,
    drop_missing: bool = True,
) -> HeterogeneousInformationNetwork:
    """Convenience: keep ``vertex_type`` vertices whose numeric ``attribute``
    lies in ``[minimum, maximum]`` (either bound optional).

    ``drop_missing`` controls vertices without the attribute.  The common
    call is temporal slicing::

        recent = slice_by_attribute(net, "paper", "year", minimum=2010)
    """
    if minimum is None and maximum is None:
        raise NetworkError("provide at least one of minimum/maximum")

    def predicate(vertex: Vertex) -> bool:
        value = vertex.attributes.get(attribute)
        if value is None or isinstance(value, bool) or not isinstance(value, (int, float)):
            return not drop_missing
        if minimum is not None and value < minimum:
            return False
        if maximum is not None and value > maximum:
            return False
        return True

    return induced_subnetwork(network, {vertex_type: predicate})
