"""Record-oriented network construction.

:class:`NetworkBuilder` lets callers assemble a network from edge records
identified by vertex names instead of :class:`~repro.hin.network.VertexId`
handles, creating vertices on demand.  This is the natural interface for
loading edge lists and for data generators.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.hin.schema import NetworkSchema

__all__ = ["NetworkBuilder"]


class NetworkBuilder:
    """Incrementally builds a :class:`HeterogeneousInformationNetwork`.

    Parameters
    ----------
    schema:
        Schema the network instantiates.

    Examples
    --------
    >>> from repro.hin import bibliographic_schema
    >>> builder = NetworkBuilder(bibliographic_schema())
    >>> builder.add_edge("paper", "p1", "author", "Ava")
    >>> builder.add_edge("paper", "p1", "venue", "KDD")
    >>> net = builder.build()
    >>> net.num_edges()
    2
    """

    def __init__(self, schema: NetworkSchema) -> None:
        self._network = HeterogeneousInformationNetwork(schema)

    def add_vertex(
        self,
        vertex_type: str,
        name: str,
        attributes: Mapping[str, Any] | None = None,
    ) -> VertexId:
        """Add (or fetch) a vertex by type and name."""
        return self._network.add_vertex(vertex_type, name, attributes)

    def add_edge(
        self,
        source_type: str,
        source_name: str,
        target_type: str,
        target_name: str,
        count: float = 1.0,
    ) -> None:
        """Add an edge between two named vertices, creating them if needed."""
        u = self._network.add_vertex(source_type, source_name)
        v = self._network.add_vertex(target_type, target_name)
        self._network.add_edge(u, v, count)

    def add_edges(
        self,
        source_type: str,
        target_type: str,
        pairs: Iterable[tuple[str, str]],
    ) -> None:
        """Bulk-add edges given ``(source_name, target_name)`` pairs."""
        for source_name, target_name in pairs:
            self.add_edge(source_type, source_name, target_type, target_name)

    def build(self) -> HeterogeneousInformationNetwork:
        """Return the assembled network.

        The builder stays usable afterwards; the same underlying network is
        returned (no copy), matching the incremental-loading use case.
        """
        return self._network
