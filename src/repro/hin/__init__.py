"""Heterogeneous information network (HIN) substrate.

This package provides the typed graph store everything else builds on:

* :class:`~repro.hin.schema.NetworkSchema` — declares vertex types and the
  edge types (ordered type pairs) that may connect them.
* :class:`~repro.hin.network.HeterogeneousInformationNetwork` — the graph
  itself: per-type vertex registries plus one sparse adjacency matrix per
  edge type.
* :class:`~repro.hin.builder.NetworkBuilder` — a convenience layer for
  assembling networks from records.
* :mod:`~repro.hin.bibliographic` — DBLP-style constructors matching the
  paper's running example (authors, papers, venues, terms).
* :mod:`~repro.hin.io` — JSON and TSV persistence.
* :mod:`~repro.hin.storage` — the ``storage={ram,mmap}`` array tiers
  (np.memmap-backed CSR buffers for networks larger than comfortable RAM).
"""

from repro.hin.schema import EdgeType, NetworkSchema, bibliographic_schema
from repro.hin.network import HeterogeneousInformationNetwork, Vertex, VertexId
from repro.hin.storage import (
    STORAGE_MODES,
    ArrayStore,
    MmapArrayStore,
    RamArrayStore,
    make_store,
)
from repro.hin.builder import NetworkBuilder
from repro.hin.interop import from_networkx, infer_schema_from_networkx, to_networkx
from repro.hin.subnetwork import induced_subnetwork, slice_by_attribute
from repro.hin.bibliographic import (
    AUTHOR,
    PAPER,
    TERM,
    VENUE,
    BibliographicNetworkBuilder,
    Publication,
)

HIN = HeterogeneousInformationNetwork

__all__ = [
    "EdgeType",
    "NetworkSchema",
    "bibliographic_schema",
    "HeterogeneousInformationNetwork",
    "HIN",
    "Vertex",
    "VertexId",
    "NetworkBuilder",
    "STORAGE_MODES",
    "ArrayStore",
    "RamArrayStore",
    "MmapArrayStore",
    "make_store",
    "BibliographicNetworkBuilder",
    "Publication",
    "AUTHOR",
    "PAPER",
    "VENUE",
    "TERM",
    "to_networkx",
    "from_networkx",
    "infer_schema_from_networkx",
    "induced_subnetwork",
    "slice_by_attribute",
]
