"""Canonical edge iteration for serialization and copying.

Replaying :meth:`HeterogeneousInformationNetwork.add_edge` mirrors
symmetric relations automatically, so a serializer must emit each logical
edge exactly once — in a form whose replay reproduces every adjacency
matrix bit for bit.  The rules, per relation:

* **directed** (``symmetric=False``): every stored entry is its own logical
  edge; emit all of them (both same-type and cross-type directed relations);
* **symmetric, different types**: the reverse matrix is the mirror; emit
  the canonical direction only;
* **symmetric, same type**: the single matrix holds both mirror entries;
  emit the upper triangle (``i < j``), and halve diagonal entries
  (``add_edge(u, u, c)`` stores ``2c`` because the mirror lands in the same
  cell).

:func:`canonical_edges` is the single implementation used by JSON/TSV
persistence, subnetwork induction, and networkx export.
"""

from __future__ import annotations

from typing import Iterator

from repro.hin.network import HeterogeneousInformationNetwork, VertexId

__all__ = ["canonical_edges"]


def canonical_edges(
    network: HeterogeneousInformationNetwork,
) -> Iterator[tuple[VertexId, VertexId, float]]:
    """Yield ``(u, v, count)`` triples whose replay reproduces the network.

    Replaying means calling ``add_edge(u, v, count)`` for every triple on an
    empty network with the same schema; afterwards every adjacency matrix
    equals the original exactly.
    """
    schema = network.schema
    seen_pairs: set[tuple[str, str]] = set()
    for edge_type in sorted(schema.edge_types, key=str):
        symmetric = schema.is_symmetric(edge_type.source, edge_type.target)
        if symmetric and (edge_type.target, edge_type.source) in seen_pairs:
            continue
        seen_pairs.add((edge_type.source, edge_type.target))
        matrix = network.adjacency(edge_type.source, edge_type.target).tocoo()
        same_type = edge_type.source == edge_type.target
        for i, j, count in zip(matrix.row, matrix.col, matrix.data):
            i, j, count = int(i), int(j), float(count)
            if symmetric and same_type:
                if i > j:
                    continue  # the lower triangle is the mirror
                if i == j:
                    count /= 2.0  # add_edge doubles self-loops on replay
            yield (
                VertexId(edge_type.source, i),
                VertexId(edge_type.target, j),
                count,
            )
