"""The heterogeneous information network store.

Design
------
Vertices of each type live in a contiguous per-type index space, so a vertex
is identified by a :class:`VertexId` ``(type, index)``.  Each registered edge
type ``(S, T)`` owns one sparse matrix ``A[S,T]`` of shape
``(num_vertices(S), num_vertices(T))`` whose entry ``(i, j)`` is the number of
parallel edges between the ``i``-th S-vertex and the ``j``-th T-vertex.

This layout makes meta-path materialization a chain of sparse matrix
products (paper Section 6) while keeping per-vertex traversal cheap through
CSR row slicing.

Mutation model: edges are buffered in per-edge-type COO lists; adjacency
matrices are (re)built lazily on first access after a mutation.  This keeps
bulk loading linear while leaving reads cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

import numpy as np
from scipy import sparse

from repro.exceptions import NetworkError, VertexNotFoundError
from repro.hin.schema import EdgeType, NetworkSchema
from repro.hin.storage import ArrayStore, make_store, spill_csr

__all__ = ["VertexId", "Vertex", "HeterogeneousInformationNetwork"]


@dataclass(frozen=True, order=True)
class VertexId:
    """Identifies a vertex by its type and its index within that type."""

    type: str
    index: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.type}#{self.index}"


@dataclass
class Vertex:
    """A vertex record: identity, display name, and free-form attributes."""

    id: VertexId
    name: str
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def type(self) -> str:
        return self.id.type


class _EdgeBuffer:
    """COO-style buffer of edge endpoints for one edge type."""

    __slots__ = ("rows", "cols", "counts")

    def __init__(self) -> None:
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.counts: list[float] = []

    def add(self, row: int, col: int, count: float) -> None:
        self.rows.append(row)
        self.cols.append(col)
        self.counts.append(count)

    def __len__(self) -> int:
        return len(self.rows)


class HeterogeneousInformationNetwork:
    """A multi-typed graph with per-edge-type sparse adjacency.

    Parameters
    ----------
    schema:
        The :class:`~repro.hin.schema.NetworkSchema` this network instantiates.

    Examples
    --------
    >>> from repro.hin import bibliographic_schema
    >>> net = HeterogeneousInformationNetwork(bibliographic_schema())
    >>> ava = net.add_vertex("author", "Ava")
    >>> p1 = net.add_vertex("paper", "p1")
    >>> kdd = net.add_vertex("venue", "KDD")
    >>> net.add_edge(p1, ava)
    >>> net.add_edge(p1, kdd)
    >>> net.num_vertices("author")
    1
    """

    def __init__(
        self,
        schema: NetworkSchema,
        *,
        storage: str = "ram",
        storage_dir: "str | None" = None,
    ) -> None:
        self._schema = schema
        # Storage tier for adjacency buffers: "ram" keeps CSR arrays on the
        # heap (historical behavior); "mmap" spills every rebuilt matrix to
        # read-only np.memmap files so resident memory tracks the working
        # set, not the graph size.  See repro.hin.storage.
        if storage not in ("ram", "mmap"):
            raise NetworkError(
                f"unknown storage mode {storage!r}; expected 'ram' or 'mmap'"
            )
        self._storage = storage
        self._store: ArrayStore | None = (
            make_store(storage, storage_dir) if storage != "ram" else None
        )
        # Per-type registries.
        self._names: dict[str, list[str]] = {t: [] for t in schema.vertex_types}
        self._name_index: dict[str, dict[str, int]] = {t: {} for t in schema.vertex_types}
        self._attributes: dict[str, list[dict[str, Any]]] = {t: [] for t in schema.vertex_types}
        # Edge storage: buffered COO triples + lazily built CSR per edge type.
        self._buffers: dict[EdgeType, _EdgeBuffer] = {}
        self._adjacency: dict[EdgeType, sparse.csr_matrix] = {}
        self._dirty: set[EdgeType] = set()
        self._num_edges = 0
        # Mutation counter: bumps on every vertex/edge insertion so index
        # layers can detect staleness (see repro.engine.strategies).
        self._version = 0
        # Set by :meth:`from_prebuilt`: a network wrapped around externally
        # owned adjacency buffers (shared-memory views) cannot be mutated —
        # its COO buffers are empty, so a rebuild would silently drop every
        # edge.  Mutations raise instead.
        self._frozen = False

    @classmethod
    def from_prebuilt(
        cls,
        schema: NetworkSchema,
        names: Mapping[str, list[str]],
        attributes: Mapping[str, list[dict[str, Any]]],
        adjacency: Mapping[tuple[str, str], sparse.csr_matrix],
        *,
        num_edges: int = 0,
        version: int = 0,
        storage: str = "ram",
        storage_dir: "str | None" = None,
    ) -> "HeterogeneousInformationNetwork":
        """Wrap pre-built adjacency matrices in a read-only network.

        The service's process backend reconstructs networks in worker
        processes from shared-memory CSR views: the matrices are installed
        directly (no copy, no COO rebuild) and the network is **frozen** —
        ``add_vertex`` / ``add_edge`` raise, because the COO buffers backing
        a rebuild are empty here and the underlying buffers are shared
        read-only pages.  ``version`` should carry the source network's
        mutation counter so result-cache keys agree across processes.

        With ``storage="mmap"`` each installed matrix is spilled to the
        network's memmap store and replaced by a read-only file-backed
        view, freeing the in-RAM copy — the path the streaming generator
        and the out-of-core bench use to hold 1M+-vertex adjacency at a
        bounded resident footprint.
        """
        network = cls(schema, storage=storage, storage_dir=storage_dir)
        for vertex_type, type_names in names.items():
            if not schema.has_vertex_type(vertex_type):
                raise NetworkError(
                    f"vertex type {vertex_type!r} is not in the schema"
                )
            network._names[vertex_type] = list(type_names)
            network._name_index[vertex_type] = {
                name: index for index, name in enumerate(type_names)
            }
            type_attributes = list(attributes.get(vertex_type, []))
            if len(type_attributes) < len(type_names):
                type_attributes.extend(
                    {} for _ in range(len(type_names) - len(type_attributes))
                )
            network._attributes[vertex_type] = type_attributes
        for (source, target), matrix in adjacency.items():
            if not schema.has_edge_type(source, target):
                raise NetworkError(
                    f"edge type {source}-{target} is not registered in the schema"
                )
            expected = (
                len(network._names[source]),
                len(network._names[target]),
            )
            if tuple(matrix.shape) != expected:
                raise NetworkError(
                    f"adjacency for {source}-{target} has shape "
                    f"{tuple(matrix.shape)}, expected {expected}"
                )
            edge_type = EdgeType(source, target)
            if network._store is not None:
                matrix = spill_csr(
                    network._store, f"adj:{source}:{target}", matrix.tocsr()
                )
            network._adjacency[edge_type] = matrix
        network._num_edges = num_edges
        network._version = version
        network._frozen = True
        return network

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------
    @property
    def schema(self) -> NetworkSchema:
        return self._schema

    @property
    def storage(self) -> str:
        """The adjacency storage tier: ``"ram"`` or ``"mmap"``."""
        return self._storage

    def copy_with_storage(
        self, storage: str, storage_dir: "str | None" = None
    ) -> "HeterogeneousInformationNetwork":
        """A frozen copy of this network on a different storage tier.

        Every registered edge type's adjacency is (re)built and handed to
        :meth:`from_prebuilt`, which spills to memmap files when
        ``storage="mmap"``.  Vertex registries are copied; the result is
        read-only.  The parity harness uses this to run the same graph
        through both tiers and assert byte-identical scores.
        """
        adjacency = {
            (et.source, et.target): self.adjacency(et.source, et.target)
            for et in self._schema.edge_types
        }
        return type(self).from_prebuilt(
            self._schema,
            self._names,
            self._attributes,
            adjacency,
            num_edges=self._num_edges,
            version=self._version,
            storage=storage,
            storage_dir=storage_dir,
        )

    def add_vertex(
        self,
        vertex_type: str,
        name: str,
        attributes: Mapping[str, Any] | None = None,
    ) -> VertexId:
        """Add a vertex and return its id.

        Adding a vertex with a ``(type, name)`` pair that already exists
        returns the existing id (names are unique per type); attributes of
        the existing vertex are left untouched.
        """
        if not self._schema.has_vertex_type(vertex_type):
            raise NetworkError(f"vertex type {vertex_type!r} is not in the schema")
        index_map = self._name_index[vertex_type]
        existing = index_map.get(name)
        if existing is not None:
            return VertexId(vertex_type, existing)
        if self._frozen:
            raise NetworkError(
                "this network wraps shared read-only adjacency buffers "
                "(from_prebuilt) and cannot be mutated"
            )
        index = len(self._names[vertex_type])
        self._version += 1
        self._names[vertex_type].append(name)
        index_map[name] = index
        self._attributes[vertex_type].append(dict(attributes or {}))
        # Grown vertex counts invalidate matrix shapes for this type.
        for edge_type in list(self._adjacency):
            if vertex_type in (edge_type.source, edge_type.target):
                self._dirty.add(edge_type)
        return VertexId(vertex_type, index)

    def add_vertices(self, vertex_type: str, names: Iterable[str]) -> list[VertexId]:
        """Bulk-add vertices; returns their ids in input order."""
        return [self.add_vertex(vertex_type, name) for name in names]

    def vertex(self, vertex_id: VertexId) -> Vertex:
        """Full vertex record for ``vertex_id``."""
        self._check_id(vertex_id)
        return Vertex(
            id=vertex_id,
            name=self._names[vertex_id.type][vertex_id.index],
            attributes=self._attributes[vertex_id.type][vertex_id.index],
        )

    def find_vertex(self, vertex_type: str, name: str) -> VertexId:
        """Look up a vertex by type and exact name.

        Raises
        ------
        VertexNotFoundError
            If no such vertex exists.
        """
        if not self._schema.has_vertex_type(vertex_type):
            raise VertexNotFoundError(f"vertex type {vertex_type!r} is not in the schema")
        index = self._name_index[vertex_type].get(name)
        if index is None:
            raise VertexNotFoundError(f"no {vertex_type} vertex named {name!r}")
        return VertexId(vertex_type, index)

    def has_vertex(self, vertex_type: str, name: str) -> bool:
        return (
            self._schema.has_vertex_type(vertex_type)
            and name in self._name_index[vertex_type]
        )

    def vertex_name(self, vertex_id: VertexId) -> str:
        self._check_id(vertex_id)
        return self._names[vertex_id.type][vertex_id.index]

    def num_vertices(self, vertex_type: str | None = None) -> int:
        """Vertex count for one type, or across all types when ``None``."""
        if vertex_type is None:
            return sum(len(names) for names in self._names.values())
        if not self._schema.has_vertex_type(vertex_type):
            raise NetworkError(f"vertex type {vertex_type!r} is not in the schema")
        return len(self._names[vertex_type])

    def vertices(self, vertex_type: str) -> Iterator[VertexId]:
        """Iterate all vertex ids of one type in index order."""
        if not self._schema.has_vertex_type(vertex_type):
            raise NetworkError(f"vertex type {vertex_type!r} is not in the schema")
        for index in range(len(self._names[vertex_type])):
            yield VertexId(vertex_type, index)

    def vertex_names(self, vertex_type: str) -> list[str]:
        """All names of one type, in index order (copy)."""
        if not self._schema.has_vertex_type(vertex_type):
            raise NetworkError(f"vertex type {vertex_type!r} is not in the schema")
        return list(self._names[vertex_type])

    def vertex_attributes(self, vertex_type: str) -> list[dict[str, Any]]:
        """Attribute dicts of one type, in index order (shallow copy of the
        list; the dicts are the live records)."""
        if not self._schema.has_vertex_type(vertex_type):
            raise NetworkError(f"vertex type {vertex_type!r} is not in the schema")
        return list(self._attributes[vertex_type])

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, u: VertexId, v: VertexId, count: float = 1.0) -> None:
        """Add ``count`` parallel edges between ``u`` and ``v``.

        The edge type ``(u.type, v.type)`` must exist in the schema.  If the
        reverse edge type is also registered (the symmetric/undirected
        default), the reverse direction is recorded as well so that both
        adjacency matrices stay transposes of one another.
        """
        self._check_id(u)
        self._check_id(v)
        if self._frozen:
            raise NetworkError(
                "this network wraps shared read-only adjacency buffers "
                "(from_prebuilt) and cannot be mutated"
            )
        if count <= 0:
            raise NetworkError(f"edge count must be positive, got {count}")
        if not self._schema.has_edge_type(u.type, v.type):
            raise NetworkError(
                f"edge type {u.type}-{v.type} is not registered in the schema"
            )
        self._buffer_for(EdgeType(u.type, v.type)).add(u.index, v.index, count)
        self._dirty.add(EdgeType(u.type, v.type))
        # Mirror into the reverse adjacency only for symmetric relations —
        # a directed relation (symmetric=False) stays one-way even when its
        # endpoints share a type or the opposite direction is registered
        # separately.
        if self._schema.is_symmetric(u.type, v.type):
            self._buffer_for(EdgeType(v.type, u.type)).add(v.index, u.index, count)
            self._dirty.add(EdgeType(v.type, u.type))
        self._num_edges += 1
        self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter: increments on every vertex or edge insertion.

        Index layers snapshot this at build time to detect staleness.
        """
        return self._version

    def bump_version(self) -> int:
        """Advance the mutation counter without changing any data.

        The hot-swap hook: bumping the version atomically invalidates every
        version-keyed consumer (result caches, sub-path caches, strategies
        built against the old index) even though the graph itself is
        unchanged.  Works on frozen (``from_prebuilt``) networks too — only
        the counter moves, never the shared buffers.  Returns the new
        version.
        """
        self._version += 1
        return self._version

    def num_edges(self) -> int:
        """Number of (undirected) edge insertions made so far."""
        return self._num_edges

    def adjacency(self, source_type: str, target_type: str) -> sparse.csr_matrix:
        """The adjacency matrix of edge type ``(source_type, target_type)``.

        Shape is ``(num_vertices(source_type), num_vertices(target_type))``;
        entries are parallel-edge counts.  The returned matrix is the
        network's cached instance — treat it as read-only.
        """
        edge_type = EdgeType(source_type, target_type)
        if not self._schema.has_edge_type(source_type, target_type):
            raise NetworkError(
                f"edge type {source_type}-{target_type} is not registered in the schema"
            )
        if edge_type in self._dirty or edge_type not in self._adjacency:
            self._rebuild(edge_type)
        return self._adjacency[edge_type]

    def degree(self, vertex_id: VertexId, neighbor_type: str) -> float:
        """Total edge count from ``vertex_id`` to vertices of ``neighbor_type``."""
        matrix = self.adjacency(vertex_id.type, neighbor_type)
        row = matrix.indptr[vertex_id.index], matrix.indptr[vertex_id.index + 1]
        return float(matrix.data[row[0]:row[1]].sum())

    def neighbors(self, vertex_id: VertexId, neighbor_type: str) -> list[VertexId]:
        """Distinct one-hop neighbors of ``vertex_id`` with type ``neighbor_type``."""
        matrix = self.adjacency(vertex_id.type, neighbor_type)
        start, stop = matrix.indptr[vertex_id.index], matrix.indptr[vertex_id.index + 1]
        return [VertexId(neighbor_type, int(j)) for j in matrix.indices[start:stop]]

    def neighbor_counts(self, vertex_id: VertexId, neighbor_type: str) -> dict[int, float]:
        """Map neighbor index -> parallel edge count for one-hop neighbors."""
        matrix = self.adjacency(vertex_id.type, neighbor_type)
        start, stop = matrix.indptr[vertex_id.index], matrix.indptr[vertex_id.index + 1]
        return {
            int(j): float(c)
            for j, c in zip(matrix.indices[start:stop], matrix.data[start:stop])
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _buffer_for(self, edge_type: EdgeType) -> _EdgeBuffer:
        buffer = self._buffers.get(edge_type)
        if buffer is None:
            buffer = _EdgeBuffer()
            self._buffers[edge_type] = buffer
        return buffer

    def _rebuild(self, edge_type: EdgeType) -> None:
        buffer = self._buffers.get(edge_type, _EdgeBuffer())
        shape = (
            len(self._names[edge_type.source]),
            len(self._names[edge_type.target]),
        )
        matrix = sparse.coo_matrix(
            (
                np.asarray(buffer.counts, dtype=np.float64),
                (
                    np.asarray(buffer.rows, dtype=np.int64),
                    np.asarray(buffer.cols, dtype=np.int64),
                ),
            ),
            shape=shape,
        ).tocsr()
        # Duplicate COO entries are summed by tocsr(), which is exactly the
        # parallel-edge-count semantics we want.
        matrix.sum_duplicates()
        if self._store is not None:
            # mmap tier: the freshly built matrix moves to read-only
            # file-backed buffers; the heap copy is dropped.  A later
            # rebuild of the same edge type re-spills and retires the old
            # files.
            matrix = spill_csr(
                self._store, f"adj:{edge_type.source}:{edge_type.target}", matrix
            )
        self._adjacency[edge_type] = matrix
        self._dirty.discard(edge_type)

    def _check_id(self, vertex_id: VertexId) -> None:
        if not self._schema.has_vertex_type(vertex_id.type):
            raise VertexNotFoundError(f"vertex type {vertex_id.type!r} is not in the schema")
        if not 0 <= vertex_id.index < len(self._names[vertex_id.type]):
            raise VertexNotFoundError(
                f"no {vertex_id.type} vertex with index {vertex_id.index}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = {t: len(n) for t, n in sorted(self._names.items())}
        return f"HIN(vertices={counts}, edges={self._num_edges})"
