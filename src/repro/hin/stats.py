"""Descriptive statistics for heterogeneous information networks.

Before querying an unfamiliar network an analyst wants its shape: how many
vertices per type, how dense each relation is, how skewed the degrees are.
:func:`network_summary` collects that into a structured report with a
printable rendering, also surfaced as ``repro stats`` on the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hin.network import HeterogeneousInformationNetwork

__all__ = ["EdgeTypeStats", "NetworkSummary", "network_summary"]


@dataclass(frozen=True)
class EdgeTypeStats:
    """Statistics of one (canonical-direction) edge type."""

    source: str
    target: str
    edges: float
    density: float
    mean_degree: float
    max_degree: float
    #: Gini coefficient of source-side degrees — 0 = uniform, → 1 = skewed.
    degree_gini: float


@dataclass(frozen=True)
class NetworkSummary:
    """The full report: per-type vertex counts + per-edge-type statistics."""

    vertex_counts: dict[str, int]
    edge_stats: tuple[EdgeTypeStats, ...]

    def describe(self) -> str:
        lines = ["vertex types:"]
        for vertex_type, count in sorted(self.vertex_counts.items()):
            lines.append(f"  {vertex_type:<12} {count:>8d}")
        lines.append("edge types:")
        lines.append(
            f"  {'relation':<22} {'edges':>9} {'density':>9} "
            f"{'mean deg':>9} {'max deg':>8} {'gini':>6}"
        )
        for stats in self.edge_stats:
            lines.append(
                f"  {stats.source + ' -- ' + stats.target:<22} "
                f"{stats.edges:>9.0f} {stats.density:>9.2g} "
                f"{stats.mean_degree:>9.2f} {stats.max_degree:>8.0f} "
                f"{stats.degree_gini:>6.2f}"
            )
        return "\n".join(lines)


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 for empty/uniform)."""
    if values.size == 0:
        return 0.0
    total = values.sum()
    if total == 0:
        return 0.0
    ordered = np.sort(values)
    n = ordered.size
    cumulative = np.cumsum(ordered)
    # Standard formula: G = (n + 1 - 2 * sum(cum)/total) / n
    return float((n + 1 - 2.0 * cumulative.sum() / total) / n)


def network_summary(network: HeterogeneousInformationNetwork) -> NetworkSummary:
    """Compute the :class:`NetworkSummary` of ``network``.

    Symmetric relations are reported once, in the lexicographically smaller
    source-type direction; degree statistics are over the source side.
    """
    vertex_counts = {
        vertex_type: network.num_vertices(vertex_type)
        for vertex_type in network.schema.vertex_types
    }
    edge_stats: list[EdgeTypeStats] = []
    seen: set[frozenset[str]] = set()
    for edge_type in sorted(network.schema.edge_types, key=str):
        pair = frozenset((edge_type.source, edge_type.target))
        if pair in seen:
            continue
        seen.add(pair)
        matrix = network.adjacency(edge_type.source, edge_type.target)
        rows, cols = matrix.shape
        degrees = np.asarray(matrix.sum(axis=1)).ravel()
        total_edges = float(matrix.sum())
        cells = rows * cols
        edge_stats.append(
            EdgeTypeStats(
                source=edge_type.source,
                target=edge_type.target,
                edges=total_edges,
                density=(matrix.nnz / cells) if cells else 0.0,
                mean_degree=float(degrees.mean()) if rows else 0.0,
                max_degree=float(degrees.max()) if rows else 0.0,
                degree_gini=_gini(degrees),
            )
        )
    return NetworkSummary(
        vertex_counts=vertex_counts, edge_stats=tuple(edge_stats)
    )
