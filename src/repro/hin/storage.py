"""Array storage tiers for the HIN substrate: RAM and ``np.memmap``-backed.

Everything above this module (adjacency matrices, PM/SPM index buffers)
stores flat numpy arrays.  At AMiner scale (millions of vertices, 10⁸+
non-zeros) those buffers no longer fit comfortably in RAM, so the network
and index grow a ``storage={ram,mmap}`` switch backed by the two
:class:`ArrayStore` implementations here:

* :class:`RamArrayStore` — plain in-process arrays, the historical default.
* :class:`MmapArrayStore` — one raw little-endian binary file per array in
  a directory, reopened as **read-only** ``np.memmap`` views.  The kernel
  pages data in on demand and evicts it under pressure, so resident memory
  tracks the working set instead of the total index size.

Writes never go through a writable memmap: spilling dirties pages that
count against RSS until the kernel writes them back.  Instead arrays are
written with buffered file I/O (in bounded chunks, so a spill of a 10 GB
buffer needs ~16 MB of transient heap) and then reopened ``mode="r"``.

The mmap store doubles as the out-of-core index builder's **atomic
publish** target: data files carry no meaning until :meth:`~MmapArrayStore.
commit` writes ``manifest.json`` (to a temp sibling, then ``os.replace`` —
the same manifest-written-last discipline as :mod:`repro.engine.index_io`).
:meth:`MmapArrayStore.open` refuses a directory without a committed
manifest, so an interrupted build is invisible, never half-loaded.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np
from scipy import sparse

from repro import faultinject
from repro.exceptions import ExecutionError, NetworkError

__all__ = [
    "ArrayStore",
    "RamArrayStore",
    "MmapArrayStore",
    "make_store",
    "spill_csr",
    "STORAGE_MODES",
]

#: Recognized values of every ``storage=`` switch in the HIN/engine layers.
STORAGE_MODES = ("ram", "mmap")

_MANIFEST_NAME = "manifest.json"
_FORMAT_VERSION = 1

#: Spill chunk size: bounds the transient heap used while writing one array
#: out (and while copying one back in), independent of the array's size.
_CHUNK_BYTES = 16 << 20


def _require_1d(array: np.ndarray, key: str) -> np.ndarray:
    flat = np.ascontiguousarray(array)
    if flat.ndim != 1:
        raise ExecutionError(
            f"array store holds flat 1-D buffers; {key!r} has shape {flat.shape}"
        )
    return flat


class ArrayAppender:
    """Incremental writer for one array: ``append`` chunks, then ``finalize``.

    The out-of-core index builder streams block products through this —
    each completed row block is appended and released, so peak memory is
    one block, not one matrix.
    """

    def append(self, chunk: np.ndarray) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def finalize(self) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError


class ArrayStore:
    """Named flat-array storage behind the ``storage={ram,mmap}`` switch."""

    storage: str = "ram"

    def put(self, key: str, array: np.ndarray) -> np.ndarray:
        """Store ``array`` under ``key``; returns the view to use from now on."""
        raise NotImplementedError  # pragma: no cover - interface

    def get(self, key: str) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - interface

    def keys(self) -> list[str]:
        raise NotImplementedError  # pragma: no cover - interface

    def appender(self, key: str, dtype: np.dtype) -> ArrayAppender:
        raise NotImplementedError  # pragma: no cover - interface

    def commit(self, extra: Mapping | None = None) -> None:
        """Publish the store's contents (a no-op for the RAM tier)."""

    def arrays(self) -> dict[str, np.ndarray]:
        """Materialize the full ``key -> array`` map (views, not copies)."""
        return {key: self.get(key) for key in self.keys()}


class _RamAppender(ArrayAppender):
    __slots__ = ("_store", "_key", "_dtype", "_chunks")

    def __init__(self, store: "RamArrayStore", key: str, dtype: np.dtype) -> None:
        self._store = store
        self._key = key
        self._dtype = np.dtype(dtype)
        self._chunks: list[np.ndarray] = []

    def append(self, chunk: np.ndarray) -> None:
        self._chunks.append(
            _require_1d(chunk, self._key).astype(self._dtype, copy=False)
        )

    def finalize(self) -> np.ndarray:
        if self._chunks:
            merged = np.concatenate(self._chunks)
        else:
            merged = np.empty(0, dtype=self._dtype)
        self._chunks = []
        return self._store.put(self._key, merged)


class RamArrayStore(ArrayStore):
    """The in-RAM tier: arrays stay exactly where they are."""

    storage = "ram"

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}

    def put(self, key: str, array: np.ndarray) -> np.ndarray:
        flat = _require_1d(array, key)
        self._arrays[key] = flat
        return flat

    def get(self, key: str) -> np.ndarray:
        try:
            return self._arrays[key]
        except KeyError:
            raise ExecutionError(f"array store has no array named {key!r}") from None

    def keys(self) -> list[str]:
        return list(self._arrays)

    def appender(self, key: str, dtype: np.dtype) -> ArrayAppender:
        return _RamAppender(self, key, dtype)


class _MmapAppender(ArrayAppender):
    __slots__ = ("_store", "_key", "_dtype", "_path", "_handle", "_count")

    def __init__(
        self, store: "MmapArrayStore", key: str, dtype: np.dtype, path: Path
    ) -> None:
        self._store = store
        self._key = key
        self._dtype = np.dtype(dtype)
        self._path = path
        self._handle = open(path, "wb")
        self._count = 0

    def append(self, chunk: np.ndarray) -> None:
        flat = _require_1d(chunk, self._key).astype(self._dtype, copy=False)
        step = max(1, _CHUNK_BYTES // max(1, flat.itemsize))
        for start in range(0, flat.size, step):
            # Slice-then-tobytes keeps the transient copy one chunk wide no
            # matter how large the source array is.
            self._handle.write(flat[start:start + step].tobytes())
        self._count += flat.size

    def finalize(self) -> np.ndarray:
        self._handle.close()
        return self._store._register(
            self._key, self._path, self._dtype, (self._count,)
        )


class MmapArrayStore(ArrayStore):
    """Directory of raw binary array files reopened as read-only memmaps.

    Parameters
    ----------
    directory:
        Where array files live.  ``None`` creates a private temporary
        directory that is removed when the store is garbage-collected (the
        ephemeral case: an mmap-tier network whose adjacency should not
        outlive the process).  An explicit directory is left on disk — the
        persistent case, paired with :meth:`commit` / :meth:`open`.
    """

    storage = "mmap"

    def __init__(self, directory: str | Path | None = None) -> None:
        self._tempdir: tempfile.TemporaryDirectory | None = None
        if directory is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-mmap-")
            directory = self._tempdir.name
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        # key -> (file name, dtype, shape).  File names are sequential so
        # arbitrary key strings (they contain ':') never fight the
        # filesystem, and a re-put never clobbers a file a live memmap
        # still reads.
        self._entries: dict[str, tuple[str, np.dtype, tuple[int, ...]]] = {}
        self._views: dict[str, np.ndarray] = {}
        self._sequence = 0

    # ------------------------------------------------------------------
    # Construction from a committed directory
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory: str | Path) -> "MmapArrayStore":
        """Attach to a directory previously published with :meth:`commit`.

        Raises
        ------
        ExecutionError
            When no committed manifest exists (e.g. an interrupted build
            left only data files) or the manifest/data are inconsistent.
        """
        root = Path(directory)
        manifest_path = root / _MANIFEST_NAME
        if not manifest_path.exists():
            raise ExecutionError(
                f"no committed array-store manifest at {manifest_path} — "
                "the store was never published (or a build was interrupted)"
            )
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
            raise ExecutionError(
                f"corrupt array-store manifest at {manifest_path}: {error}"
            ) from error
        if not isinstance(manifest, dict) or manifest.get("format_version") != _FORMAT_VERSION:
            raise ExecutionError(
                f"unsupported array-store manifest at {manifest_path}"
            )
        store = cls(root)
        try:
            for key, entry in manifest["arrays"].items():
                dtype = np.dtype(entry["dtype"])
                shape = tuple(int(s) for s in entry["shape"])
                file_path = root / entry["file"]
                expected = int(np.prod(shape)) * dtype.itemsize if shape else 0
                if shape and shape[0] and not file_path.exists():
                    raise ExecutionError(
                        f"array-store data file missing: {file_path}"
                    )
                if shape and shape[0] and file_path.stat().st_size != expected:
                    raise ExecutionError(
                        f"array-store data file {file_path} has "
                        f"{file_path.stat().st_size} bytes, expected {expected}"
                    )
                store._entries[key] = (entry["file"], dtype, shape)
            store._extra = dict(manifest.get("extra", {}))
        except (KeyError, TypeError, ValueError) as error:
            raise ExecutionError(
                f"corrupt array-store manifest at {manifest_path}: {error!r}"
            ) from error
        store._sequence = len(store._entries)
        return store

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        return self._directory

    def _next_file(self) -> Path:
        name = f"array_{self._sequence:05d}.bin"
        self._sequence += 1
        return self._directory / name

    def _register(
        self, key: str, path: Path, dtype: np.dtype, shape: tuple[int, ...]
    ) -> np.ndarray:
        previous = self._entries.get(key)
        self._entries[key] = (path.name, dtype, shape)
        self._views.pop(key, None)
        if previous is not None and previous[0] != path.name:
            # A re-put (e.g. an adjacency rebuild after mutation) retires
            # the old file.  Live memmaps keep reading the unlinked inode.
            try:
                (self._directory / previous[0]).unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        return self.get(key)

    def put(self, key: str, array: np.ndarray) -> np.ndarray:
        flat = _require_1d(array, key)
        appender = self.appender(key, flat.dtype)
        appender.append(flat)
        return appender.finalize()

    def appender(self, key: str, dtype: np.dtype) -> ArrayAppender:
        return _MmapAppender(self, key, np.dtype(dtype), self._next_file())

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, key: str) -> np.ndarray:
        view = self._views.get(key)
        if view is not None:
            return view
        entry = self._entries.get(key)
        if entry is None:
            raise ExecutionError(f"array store has no array named {key!r}")
        file_name, dtype, shape = entry
        if not shape or shape[0] == 0:
            view = np.empty(shape or (0,), dtype=dtype)
        else:
            view = np.memmap(
                self._directory / file_name, dtype=dtype, mode="r", shape=shape
            )
        self._views[key] = view
        return view

    def keys(self) -> list[str]:
        return list(self._entries)

    # ------------------------------------------------------------------
    # Atomic publish
    # ------------------------------------------------------------------
    @property
    def extra(self) -> dict:
        """Application payload recorded at :meth:`commit` time."""
        return getattr(self, "_extra", {})

    def commit(self, extra: Mapping | None = None) -> None:
        """Publish the store: write ``manifest.json`` atomically, last.

        Until this runs, :meth:`open` refuses the directory — data files
        written by an interrupted build are invisible.  Goes through the
        ``io`` fault point like every other index write.
        """
        manifest = {
            "format_version": _FORMAT_VERSION,
            "arrays": {
                key: {
                    "file": file_name,
                    "dtype": np.dtype(dtype).str,
                    "shape": [int(s) for s in shape],
                }
                for key, (file_name, dtype, shape) in self._entries.items()
            },
            "extra": dict(extra or {}),
        }
        self._extra = dict(extra or {})
        faultinject.check("io")
        temp = self._directory / (_MANIFEST_NAME + ".tmp")
        temp.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
        os.replace(temp, self._directory / _MANIFEST_NAME)


def make_store(storage: str, directory: str | Path | None = None) -> ArrayStore:
    """Instantiate the store behind a ``storage={ram,mmap}`` switch value."""
    if storage == "ram":
        return RamArrayStore()
    if storage == "mmap":
        return MmapArrayStore(directory)
    raise NetworkError(
        f"unknown storage mode {storage!r}; expected one of {STORAGE_MODES}"
    )


def spill_csr(
    store: ArrayStore, prefix: str, matrix: sparse.csr_matrix
) -> sparse.csr_matrix:
    """Move a CSR matrix's buffers into ``store``; returns the store-backed view.

    The matrix is canonicalized first (sorted, duplicate-free) so the
    returned view can be flagged canonical — scipy must never attempt an
    in-place ``sort_indices`` on a read-only memmap.
    """
    csr = matrix.tocsr()
    csr.sum_duplicates()
    csr.sort_indices()
    data = store.put(f"{prefix}:data", csr.data)
    indices = store.put(f"{prefix}:indices", csr.indices)
    indptr = store.put(f"{prefix}:indptr", csr.indptr)
    return csr_from_buffers(data, indices, indptr, csr.shape)


def csr_from_buffers(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: Iterable[int],
) -> sparse.csr_matrix:
    """Adopt pre-canonical buffers as a CSR matrix without copying.

    Used for store-backed (memmap) and shared-memory buffers alike; the
    canonical flags are set up front because the buffers may be read-only.
    """
    matrix = sparse.csr_matrix(tuple(int(s) for s in shape), dtype=data.dtype)
    matrix.data, matrix.indices, matrix.indptr = data, indices, indptr
    matrix.has_sorted_indices = True
    matrix.has_canonical_format = True
    return matrix


def is_store_backed(matrix: sparse.spmatrix) -> bool:
    """True when a matrix's buffers already live in a memmap store."""
    return sparse.issparse(matrix) and isinstance(
        getattr(matrix, "data", None), np.memmap
    )
