"""Persistence for heterogeneous information networks.

Two formats are supported:

* **JSON** — a single self-describing document with the schema, vertex
  registries (including attributes), and edge lists.  Round-trips exactly.
* **TSV edge lists** — the common interchange format for HIN datasets: one
  file with ``source_type  source_name  target_type  target_name  [count]``
  per line, plus an accompanying schema.  Attributes are not preserved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO

from repro.exceptions import NetworkError
from repro.hin.edges import canonical_edges
from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.hin.schema import NetworkSchema

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "save_json",
    "load_json",
    "write_edge_list",
    "read_edge_list",
]

_FORMAT_VERSION = 2


def network_to_dict(network: HeterogeneousInformationNetwork) -> dict:
    """Serialize a network to a JSON-compatible dictionary."""
    schema = network.schema
    vertices = {}
    for vertex_type in sorted(schema.vertex_types):
        records = []
        for vertex_id in network.vertices(vertex_type):
            vertex = network.vertex(vertex_id)
            record: dict = {"name": vertex.name}
            if vertex.attributes:
                record["attributes"] = vertex.attributes
            records.append(record)
        vertices[vertex_type] = records

    edges = [
        {
            "source_type": u.type,
            "source": u.index,
            "target_type": v.type,
            "target": v.index,
            "count": count,
        }
        for u, v, count in canonical_edges(network)
    ]

    return {
        "format_version": _FORMAT_VERSION,
        "schema": {
            "vertex_types": sorted(schema.vertex_types),
            "edge_types": sorted(
                (
                    {
                        "source": et.source,
                        "target": et.target,
                        "symmetric": schema.is_symmetric(et.source, et.target),
                    }
                    for et in schema.edge_types
                ),
                key=lambda e: (e["source"], e["target"]),
            ),
        },
        "vertices": vertices,
        "edges": edges,
    }


def network_from_dict(
    data: dict,
    *,
    storage: str = "ram",
    storage_dir: "str | None" = None,
) -> HeterogeneousInformationNetwork:
    """Deserialize a network produced by :func:`network_to_dict`.

    ``storage="mmap"`` rebuilds adjacency into read-only memmap files (see
    :mod:`repro.hin.storage`) — the ``repro serve --storage mmap`` load
    path for networks larger than comfortable RAM.
    """
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise NetworkError(f"unsupported network format version: {version!r}")
    schema = NetworkSchema(data["schema"]["vertex_types"])
    for entry in data["schema"]["edge_types"]:
        # Every registered direction is listed; symmetric relations carry
        # the flag so edge insertions mirror correctly after reload.
        schema.add_edge_type(
            entry["source"], entry["target"], symmetric=entry["symmetric"]
        )
    network = HeterogeneousInformationNetwork(
        schema, storage=storage, storage_dir=storage_dir
    )
    for vertex_type, records in data["vertices"].items():
        for record in records:
            network.add_vertex(vertex_type, record["name"], record.get("attributes"))
    for edge in data["edges"]:
        u = VertexId(edge["source_type"], edge["source"])
        v = VertexId(edge["target_type"], edge["target"])
        network.add_edge(u, v, edge.get("count", 1.0))
    return network


def save_json(network: HeterogeneousInformationNetwork, path: str | Path) -> None:
    """Write ``network`` to ``path`` as JSON."""
    payload = network_to_dict(network)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_json(
    path: str | Path,
    *,
    storage: str = "ram",
    storage_dir: "str | None" = None,
) -> HeterogeneousInformationNetwork:
    """Read a network previously written by :func:`save_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return network_from_dict(
            json.load(handle), storage=storage, storage_dir=storage_dir
        )


def write_edge_list(network: HeterogeneousInformationNetwork, handle: TextIO) -> int:
    """Write tab-separated edges to an open text handle.

    Returns the number of lines written.  Symmetric relations are written
    once, in the canonical (lexicographically smaller source type) direction.
    """
    lines = 0
    for u, v, count in canonical_edges(network):
        handle.write(
            f"{u.type}\t{network.vertex_name(u)}\t"
            f"{v.type}\t{network.vertex_name(v)}\t{count:g}\n"
        )
        lines += 1
    return lines


def read_edge_list(
    handle: TextIO, schema: NetworkSchema
) -> HeterogeneousInformationNetwork:
    """Read a tab-separated edge list into a new network over ``schema``."""
    network = HeterogeneousInformationNetwork(schema)
    for line_number, line in enumerate(handle, start=1):
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) not in (4, 5):
            raise NetworkError(
                f"edge list line {line_number}: expected 4 or 5 tab-separated "
                f"fields, got {len(fields)}"
            )
        source_type, source_name, target_type, target_name = fields[:4]
        count = float(fields[4]) if len(fields) == 5 else 1.0
        u = network.add_vertex(source_type, source_name)
        v = network.add_vertex(target_type, target_name)
        network.add_edge(u, v, count)
    return network
