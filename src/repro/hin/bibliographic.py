"""DBLP-style bibliographic network construction.

The paper's running example is a bibliographic HIN with vertex types
``author`` (A), ``paper`` (P), ``venue`` (V), ``term`` (T), where each
publication record generates P-A, P-V, and P-T links.  This module provides
a :class:`Publication` record and a builder that expands records into the
network, mirroring how the paper builds its DBLP/AMiner network.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import NetworkError
from repro.hin.network import HeterogeneousInformationNetwork
from repro.hin.schema import bibliographic_schema

__all__ = [
    "AUTHOR",
    "PAPER",
    "VENUE",
    "TERM",
    "Publication",
    "BibliographicNetworkBuilder",
    "tokenize_title",
]

AUTHOR = "author"
PAPER = "paper"
VENUE = "venue"
TERM = "term"

# Short stop-word list for title tokenization; enough to keep generated
# term vocabularies meaningful without pulling in NLP dependencies.
_STOP_WORDS = frozenset(
    """a an and are as at be by for from in into is it of on or that the
    this to toward towards using via with""".split()
)

_TOKEN_PATTERN = re.compile(r"[a-z0-9][a-z0-9-]*")


def tokenize_title(title: str) -> list[str]:
    """Lower-case, split, and stop-word-filter a paper title into terms.

    >>> tokenize_title("Mining Outliers in Large Networks")
    ['mining', 'outliers', 'large', 'networks']
    """
    tokens = _TOKEN_PATTERN.findall(title.lower())
    return [t for t in tokens if t not in _STOP_WORDS]


@dataclass
class Publication:
    """One publication record: the unit that generates HIN links.

    Attributes
    ----------
    key:
        Unique paper key (becomes the ``paper`` vertex name).
    authors:
        Author names, in byline order.
    venue:
        Venue name, or ``None`` for missing data.  Missing venues are
        materialized as the sentinel vertex ``"NULL"`` — the paper's Table 5
        shows exactly this artifact surfacing as a top outlier.
    title:
        Optional title; tokenized into ``term`` vertices.
    terms:
        Explicit term list; used instead of tokenizing ``title`` when given.
    year:
        Optional publication year, stored as a paper attribute.
    """

    key: str
    authors: Sequence[str]
    venue: str | None = None
    title: str = ""
    terms: Sequence[str] = field(default_factory=tuple)
    year: int | None = None

    def term_list(self) -> list[str]:
        if self.terms:
            return list(self.terms)
        return tokenize_title(self.title)


class BibliographicNetworkBuilder:
    """Builds a bibliographic HIN from :class:`Publication` records.

    Parameters
    ----------
    null_venue_name:
        Vertex name used for records with a missing venue.  Set to ``None``
        to skip the venue link entirely instead.

    Examples
    --------
    >>> builder = BibliographicNetworkBuilder()
    >>> builder.add_publication(Publication("p1", ["Ava", "Liam"], "KDD",
    ...                                     title="Graph mining"))
    >>> net = builder.build()
    >>> net.num_vertices("author")
    2
    """

    def __init__(self, null_venue_name: str | None = "NULL") -> None:
        self._network = HeterogeneousInformationNetwork(bibliographic_schema())
        self._null_venue_name = null_venue_name
        self._publication_count = 0

    @property
    def publication_count(self) -> int:
        return self._publication_count

    def add_publication(self, publication: Publication) -> None:
        """Expand one publication record into P-A, P-V, and P-T links."""
        if not publication.authors:
            raise NetworkError(f"publication {publication.key!r} has no authors")
        attributes = {}
        if publication.year is not None:
            attributes["year"] = publication.year
        if publication.title:
            attributes["title"] = publication.title
        paper = self._network.add_vertex(PAPER, publication.key, attributes)
        for author_name in publication.authors:
            author = self._network.add_vertex(AUTHOR, author_name)
            self._network.add_edge(paper, author)
        venue_name = publication.venue
        if venue_name is None:
            venue_name = self._null_venue_name
        if venue_name is not None:
            venue = self._network.add_vertex(VENUE, venue_name)
            self._network.add_edge(paper, venue)
        for term_name in publication.term_list():
            term = self._network.add_vertex(TERM, term_name)
            self._network.add_edge(paper, term)
        self._publication_count += 1

    def add_publications(self, publications: Iterable[Publication]) -> None:
        for publication in publications:
            self.add_publication(publication)

    def build(self) -> HeterogeneousInformationNetwork:
        """Return the assembled bibliographic network."""
        return self._network
