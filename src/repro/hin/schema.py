"""Network schemas: the type-level description of a HIN.

A schema declares the set of vertex types and the set of *edge types*.
Following Definition 1 of the paper, the network is formally directed; an
undirected relation (e.g. paper–author) is represented by a symmetric pair
of directed edge types.  :meth:`NetworkSchema.add_edge_type` therefore
registers both directions by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.exceptions import SchemaError

__all__ = ["EdgeType", "NetworkSchema", "bibliographic_schema"]


@dataclass(frozen=True)
class EdgeType:
    """A directed edge type between two vertex types.

    Attributes
    ----------
    source:
        Vertex type at the tail of the edge.
    target:
        Vertex type at the head of the edge.
    """

    source: str
    target: str

    def reversed(self) -> "EdgeType":
        """The edge type with source and target swapped."""
        return EdgeType(self.target, self.source)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.source}-{self.target}"


class NetworkSchema:
    """Vertex and edge types of a heterogeneous information network.

    The schema is the single source of truth for what meta-paths are legal:
    a meta-path ``(T0 T1 ... Tl)`` is valid iff every consecutive pair
    ``(Tx, Tx+1)`` is a registered edge type.

    Parameters
    ----------
    vertex_types:
        Optional initial vertex type names.
    """

    def __init__(self, vertex_types: Iterable[str] = ()) -> None:
        self._vertex_types: set[str] = set()
        self._edge_types: set[EdgeType] = set()
        # Relations registered as symmetric (undirected): for these,
        # inserting an edge (u, v) also populates the reverse adjacency.
        self._symmetric: set[EdgeType] = set()
        for vertex_type in vertex_types:
            self.add_vertex_type(vertex_type)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex_type(self, name: str) -> None:
        """Register a vertex type.  Re-registering the same name is a no-op."""
        if not isinstance(name, str) or not name:
            raise SchemaError(f"vertex type must be a non-empty string, got {name!r}")
        if not name.isidentifier():
            raise SchemaError(
                f"vertex type {name!r} must be a valid identifier so it can be "
                "referenced from the query language"
            )
        self._vertex_types.add(name)

    def add_edge_type(self, source: str, target: str, *, symmetric: bool = True) -> None:
        """Register an edge type between two previously declared vertex types.

        Parameters
        ----------
        source, target:
            Endpoint vertex types (must already be registered).
        symmetric:
            When true (default) the reverse direction is registered too,
            modelling an undirected relation as two directed edge types.
        """
        for endpoint in (source, target):
            if endpoint not in self._vertex_types:
                raise SchemaError(
                    f"cannot add edge type {source}-{target}: vertex type "
                    f"{endpoint!r} is not declared"
                )
        self._edge_types.add(EdgeType(source, target))
        if symmetric:
            self._edge_types.add(EdgeType(target, source))
            self._symmetric.add(EdgeType(source, target))
            self._symmetric.add(EdgeType(target, source))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def vertex_types(self) -> frozenset[str]:
        return frozenset(self._vertex_types)

    @property
    def edge_types(self) -> frozenset[EdgeType]:
        return frozenset(self._edge_types)

    def has_vertex_type(self, name: str) -> bool:
        return name in self._vertex_types

    def has_edge_type(self, source: str, target: str) -> bool:
        return EdgeType(source, target) in self._edge_types

    def is_symmetric(self, source: str, target: str) -> bool:
        """True when the relation was registered as symmetric (undirected).

        Symmetric relations mirror edge insertions into the reverse
        adjacency; directed relations (``symmetric=False``) do not — which
        is what makes a same-type directed relation (e.g. ``paper cites
        paper``) genuinely one-way.
        """
        return EdgeType(source, target) in self._symmetric

    def neighbor_types(self, vertex_type: str) -> frozenset[str]:
        """Vertex types reachable from ``vertex_type`` by one edge type."""
        if vertex_type not in self._vertex_types:
            raise SchemaError(f"unknown vertex type {vertex_type!r}")
        return frozenset(e.target for e in self._edge_types if e.source == vertex_type)

    def validate_type_sequence(self, types: Iterable[str]) -> None:
        """Raise :class:`SchemaError` unless ``types`` is a legal meta-path.

        A legal sequence has at least one type, every type registered, and
        every consecutive pair a registered edge type.
        """
        sequence = list(types)
        if not sequence:
            raise SchemaError("a meta-path needs at least one vertex type")
        for vertex_type in sequence:
            if vertex_type not in self._vertex_types:
                raise SchemaError(f"unknown vertex type {vertex_type!r} in meta-path")
        for left, right in zip(sequence, sequence[1:]):
            if not self.has_edge_type(left, right):
                raise SchemaError(
                    f"meta-path step {left}-{right} is not a registered edge type"
                )

    def length2_metapaths(self) -> Iterator[tuple[str, str, str]]:
        """Yield every legal length-2 type sequence ``(T0, T1, T2)``.

        These are exactly the meta-paths the PM strategy pre-materializes
        (paper Section 6.2).
        """
        for first in sorted(self._edge_types, key=str):
            for second in sorted(self._edge_types, key=str):
                if first.target == second.source:
                    yield (first.source, first.target, second.target)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NetworkSchema):
            return NotImplemented
        return (
            self._vertex_types == other._vertex_types
            and self._edge_types == other._edge_types
            and self._symmetric == other._symmetric
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkSchema(vertex_types={sorted(self._vertex_types)}, "
            f"edge_types={sorted(map(str, self._edge_types))})"
        )


def bibliographic_schema() -> NetworkSchema:
    """The DBLP-style schema of the paper's running example (Figure 1a).

    Vertex types: ``author``, ``paper``, ``venue``, ``term``.  Papers link to
    authors (written-by), venues (published-in), and terms (title-contains);
    all relations are symmetric.
    """
    schema = NetworkSchema(["author", "paper", "venue", "term"])
    schema.add_edge_type("paper", "author")
    schema.add_edge_type("paper", "venue")
    schema.add_edge_type("paper", "term")
    return schema
