"""Interoperability with :mod:`networkx`.

Converts between :class:`~repro.hin.network.HeterogeneousInformationNetwork`
and ``networkx.MultiGraph``/``Graph`` objects so users can bring existing
graphs into the query framework, or take a HIN out for visualization and
graph algorithms.

Conventions for the networkx side:

* node keys are ``(type, name)`` tuples, and every node carries
  ``vertex_type`` and ``name`` attributes (plus any HIN vertex attributes);
* parallel-edge multiplicity is carried in an edge ``count`` attribute
  (summed when exporting to a plain ``Graph``).
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import NetworkError, SchemaError
from repro.hin.edges import canonical_edges
from repro.hin.network import HeterogeneousInformationNetwork
from repro.hin.schema import NetworkSchema

__all__ = ["to_networkx", "from_networkx", "infer_schema_from_networkx"]


def to_networkx(network: HeterogeneousInformationNetwork) -> nx.Graph:
    """Export a HIN to an undirected ``networkx.Graph``.

    Each symmetric relation is exported once; multiplicities land in the
    ``count`` edge attribute.
    """
    schema = network.schema
    directed = [
        str(et)
        for et in schema.edge_types
        if not schema.is_symmetric(et.source, et.target)
    ]
    if directed:
        raise NetworkError(
            "to_networkx exports undirected graphs; the schema has directed "
            f"relations: {sorted(directed)}"
        )
    graph = nx.Graph()
    for vertex_type in sorted(schema.vertex_types):
        for vertex_id in network.vertices(vertex_type):
            vertex = network.vertex(vertex_id)
            graph.add_node(
                (vertex_type, vertex.name),
                vertex_type=vertex_type,
                name=vertex.name,
                **vertex.attributes,
            )
    for vertex_u, vertex_v, count in canonical_edges(network):
        u = (vertex_u.type, network.vertex_name(vertex_u))
        v = (vertex_v.type, network.vertex_name(vertex_v))
        if graph.has_edge(u, v):
            graph[u][v]["count"] += count
        else:
            graph.add_edge(u, v, count=count)
    return graph


def infer_schema_from_networkx(graph: nx.Graph) -> NetworkSchema:
    """Infer a :class:`NetworkSchema` from node ``vertex_type`` attributes.

    Every distinct ``vertex_type`` becomes a vertex type; every observed
    (type, type) edge pair becomes a symmetric edge type.

    Raises
    ------
    SchemaError
        If any node lacks a ``vertex_type`` attribute.
    """
    schema = NetworkSchema()
    for node, attributes in graph.nodes(data=True):
        vertex_type = attributes.get("vertex_type")
        if vertex_type is None:
            raise SchemaError(
                f"node {node!r} has no 'vertex_type' attribute; set one on "
                "every node (or convert with to_networkx conventions)"
            )
        schema.add_vertex_type(vertex_type)
    for u, v in graph.edges():
        schema.add_edge_type(
            graph.nodes[u]["vertex_type"], graph.nodes[v]["vertex_type"]
        )
    return schema


def from_networkx(
    graph: nx.Graph,
    schema: NetworkSchema | None = None,
) -> HeterogeneousInformationNetwork:
    """Import a typed ``networkx`` graph into a HIN.

    Nodes must carry a ``vertex_type`` attribute; the node's display name
    is its ``name`` attribute when present, else ``str(node)``.  Edge
    multiplicity is read from the ``count`` attribute (default 1); for
    ``MultiGraph`` inputs, parallel edges accumulate.

    Parameters
    ----------
    schema:
        Schema to validate against; inferred from the graph when omitted.
    """
    if schema is None:
        schema = infer_schema_from_networkx(graph)
    network = HeterogeneousInformationNetwork(schema)

    def describe(node) -> tuple[str, str, dict]:
        attributes = dict(graph.nodes[node])
        vertex_type = attributes.pop("vertex_type", None)
        if vertex_type is None:
            raise NetworkError(f"node {node!r} has no 'vertex_type' attribute")
        name = attributes.pop("name", None)
        if name is None:
            name = str(node)
        return vertex_type, name, attributes

    for node in graph.nodes():
        vertex_type, name, attributes = describe(node)
        network.add_vertex(vertex_type, name, attributes)

    if graph.is_multigraph():
        edge_iterator = (
            (u, v, data.get("count", 1.0))
            for u, v, data in graph.edges(data=True)
        )
    else:
        edge_iterator = (
            (u, v, data.get("count", 1.0)) for u, v, data in graph.edges(data=True)
        )
    for u, v, count in edge_iterator:
        u_type, u_name, __ = describe(u)
        v_type, v_name, __ = describe(v)
        network.add_edge(
            network.find_vertex(u_type, u_name),
            network.find_vertex(v_type, v_name),
            float(count),
        )
    return network
