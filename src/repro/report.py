"""Self-contained HTML reports for outlier query results (paper §8).

Section 8 suggests visualizing outliers "to provide more insight"; beyond
the terminal views in :mod:`repro.viz`, analysts share results.  This
module renders an :class:`~repro.core.results.OutlierResult` into a single
HTML file with no external assets: the ranked table with score bars, the
candidate Ω distribution, per-feature breakdowns when available, and the
query text for provenance.
"""

from __future__ import annotations

import html
from pathlib import Path

import numpy as np

from repro.core.results import OutlierResult

__all__ = ["render_html_report", "write_html_report"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 0.35rem 0.6rem;
         border-bottom: 1px solid #e0e0ea; font-size: 0.92rem; }
th { background: #f4f4fa; }
.bar { display: inline-block; height: 0.75rem; background: #5661b3;
       border-radius: 2px; vertical-align: middle; }
.hist .bar { background: #9aa3d4; }
.hist .outlier .bar { background: #d4564e; }
.mono { font-family: ui-monospace, Menlo, Consolas, monospace;
        background: #f4f4fa; padding: 0.8rem; border-radius: 4px;
        white-space: pre-wrap; font-size: 0.85rem; }
.muted { color: #71718a; font-size: 0.85rem; }
"""


def _bar(fraction: float, max_width_px: int = 220) -> str:
    width = max(1, int(round(fraction * max_width_px)))
    return f'<span class="bar" style="width:{width}px"></span>'


def render_html_report(
    result: OutlierResult,
    *,
    title: str = "Outlier query result",
    query_text: str | None = None,
) -> str:
    """Render ``result`` as a standalone HTML document (returned as text)."""
    scores = np.fromiter(result.scores.values(), dtype=float)
    peak = float(scores.max()) if scores.size and scores.max() > 0 else 1.0

    parts: list[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="muted">measure: {html.escape(result.measure)} '
        f"(lower Ω = more outlying) &middot; {result.candidate_count} "
        f"candidates &middot; {result.reference_count} reference vertices</p>",
    ]
    if query_text:
        parts.append("<h2>Query</h2>")
        parts.append(f'<div class="mono">{html.escape(query_text.strip())}</div>')

    # Ranked table.  Bars show *outlyingness*: 1 - score/peak.
    parts.append(f"<h2>Top {len(result)} outliers</h2>")
    headers = ["#", "Name", "Ω", "Outlyingness"]
    feature_paths = sorted(result.feature_scores) if result.feature_scores else []
    headers.extend(f"Ω({path})" for path in feature_paths)
    parts.append("<table><thead><tr>")
    parts.extend(f"<th>{html.escape(header)}</th>" for header in headers)
    parts.append("</tr></thead><tbody>")
    for entry in result.outliers:
        outlyingness = 1.0 - (entry.score / peak if peak else 0.0)
        cells = [
            f"<td>{entry.rank}</td>",
            f"<td>{html.escape(entry.name)}</td>",
            f"<td>{entry.score:.4g}</td>",
            f"<td>{_bar(max(outlyingness, 0.0))}</td>",
        ]
        for path in feature_paths:
            value = result.feature_scores[path].get(entry.vertex)
            cells.append(f"<td>{value:.4g}</td>" if value is not None else "<td></td>")
        parts.append("<tr>" + "".join(cells) + "</tr>")
    parts.append("</tbody></table>")

    # Score distribution histogram.
    if scores.size:
        parts.append("<h2>Candidate Ω distribution</h2>")
        counts, edges = np.histogram(scores, bins=min(12, max(3, scores.size // 4)))
        outlier_scores = {entry.score for entry in result.outliers}
        top = counts.max() if counts.max() > 0 else 1
        parts.append('<table class="hist"><tbody>')
        for count, low, high in zip(counts, edges, edges[1:]):
            has_outlier = any(
                low <= score < high or (high == edges[-1] and score == high)
                for score in outlier_scores
            )
            row_class = ' class="outlier"' if has_outlier else ""
            parts.append(
                f"<tr{row_class}><td>[{low:.3g}, {high:.3g})</td>"
                f"<td>{_bar(count / top)}</td><td>{count}</td></tr>"
            )
        parts.append("</tbody></table>")
        parts.append(
            '<p class="muted">red bins contain the reported top-k outliers</p>'
        )

    parts.append("</body></html>")
    return "\n".join(parts)


def write_html_report(
    result: OutlierResult,
    path: str | Path,
    *,
    title: str = "Outlier query result",
    query_text: str | None = None,
) -> None:
    """Write the HTML report to ``path``."""
    document = render_html_report(result, title=title, query_text=query_text)
    Path(path).write_text(document, encoding="utf-8")
