"""A database of relational tables with referential-integrity checking."""

from __future__ import annotations

from typing import Iterator

from repro.relational.table import RelationalError, Table

__all__ = ["RelationalDatabase"]


class RelationalDatabase:
    """A named collection of :class:`~repro.relational.table.Table` objects.

    Responsibilities: table registry, foreign-key target validation at
    registration time, and whole-database referential-integrity checking
    before conversion to a HIN.

    Examples
    --------
    >>> from repro.relational import Column, ForeignKey, Table
    >>> db = RelationalDatabase()
    >>> db.add_table(Table("customer", [Column("id", int)], "id"))
    >>> db.add_table(Table(
    ...     "order",
    ...     [Column("id", int), Column("customer_id", int)],
    ...     "id",
    ...     [ForeignKey("customer_id", "customer", "id")],
    ... ))
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Register a table; FK targets must already be registered."""
        if table.name in self._tables:
            raise RelationalError(f"duplicate table {table.name!r}")
        for fk in table.foreign_keys:
            target = self._tables.get(fk.table)
            if target is None:
                raise RelationalError(
                    f"table {table.name!r}: foreign key references unknown "
                    f"table {fk.table!r}"
                )
            if fk.ref_column != target.primary_key:
                raise RelationalError(
                    f"table {table.name!r}: foreign key must reference the "
                    f"primary key of {fk.table!r} ({target.primary_key!r}), "
                    f"got {fk.ref_column!r}"
                )
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            raise RelationalError(f"unknown table {name!r}")
        return table

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def check_integrity(self) -> None:
        """Raise :class:`RelationalError` on any dangling foreign key.

        Null foreign-key values are allowed (they simply produce no edge on
        conversion, mirroring the paper's NULL missing-data artifact).
        """
        for table in self._tables.values():
            for fk in table.foreign_keys:
                target = self.table(fk.table)
                for row in table.rows():
                    value = row[fk.column]
                    if value is None:
                        continue
                    if not target.has_key(value):
                        raise RelationalError(
                            f"table {table.name!r}: row "
                            f"{row[table.primary_key]!r} references missing "
                            f"{fk.table}.{fk.ref_column} = {value!r}"
                        )

    def junction_tables(self) -> list[Table]:
        """Tables that are pure many-to-many junctions.

        A junction table has exactly two foreign keys and no data columns
        besides its primary key and the FK columns — the shape that
        conversion can collapse into direct edges.
        """
        junctions = []
        for table in self._tables.values():
            if len(table.foreign_keys) != 2:
                continue
            fk_columns = {fk.column for fk in table.foreign_keys}
            data_columns = set(table.columns) - fk_columns - {table.primary_key}
            if not data_columns:
                junctions.append(table)
        return junctions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelationalDatabase(tables={self.table_names})"
