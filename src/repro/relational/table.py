"""A minimal in-memory relational table model.

Just enough relational machinery to express the paper's §8 scenario:
tables with named, typed columns, a primary key, foreign keys to other
tables, and row storage as dictionaries.  Loading from iterables and CSV
text is supported; there is deliberately no query engine here — querying
happens in the outlier query language after conversion to a HIN.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.exceptions import ReproError

__all__ = ["Column", "ForeignKey", "Table", "RelationalError"]


class RelationalError(ReproError):
    """A relational schema or data constraint was violated."""


@dataclass(frozen=True)
class Column:
    """A typed column.

    Attributes
    ----------
    name:
        Column name (a valid identifier, so it can appear in meta-paths).
    dtype:
        Python type values are coerced to (``str``, ``int``, ``float``).
    """

    name: str
    dtype: type = str

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise RelationalError(
                f"column name {self.name!r} must be a valid identifier"
            )
        if self.dtype not in (str, int, float):
            raise RelationalError(
                f"column {self.name!r}: dtype must be str, int, or float"
            )

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to the column type (``None`` passes through)."""
        if value is None:
            return None
        try:
            return self.dtype(value)
        except (TypeError, ValueError) as error:
            raise RelationalError(
                f"column {self.name!r}: cannot coerce {value!r} to "
                f"{self.dtype.__name__}"
            ) from error


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint: ``column`` references ``table.ref_column``."""

    column: str
    table: str
    ref_column: str


class Table:
    """An in-memory relational table.

    Parameters
    ----------
    name:
        Table name (becomes the vertex type after conversion, so it must be
        a valid identifier).
    columns:
        Column definitions.
    primary_key:
        Name of the primary-key column (values must be unique, not null).
    foreign_keys:
        Foreign-key constraints; validated by the owning database.

    Examples
    --------
    >>> table = Table("customer", [Column("id", int), Column("city")], "id")
    >>> table.insert({"id": 1, "city": "Boston"})
    >>> table.row_count
    1
    """

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        primary_key: str,
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        if not name.isidentifier():
            raise RelationalError(f"table name {name!r} must be a valid identifier")
        self.name = name
        self.columns: dict[str, Column] = {}
        for column in columns:
            if column.name in self.columns:
                raise RelationalError(
                    f"table {name!r}: duplicate column {column.name!r}"
                )
            self.columns[column.name] = column
        if primary_key not in self.columns:
            raise RelationalError(
                f"table {name!r}: primary key {primary_key!r} is not a column"
            )
        self.primary_key = primary_key
        self.foreign_keys: list[ForeignKey] = list(foreign_keys)
        for fk in self.foreign_keys:
            if fk.column not in self.columns:
                raise RelationalError(
                    f"table {name!r}: foreign key column {fk.column!r} is not "
                    "a column"
                )
        self._rows: dict[Any, dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return len(self._rows)

    def insert(self, row: Mapping[str, Any]) -> None:
        """Insert one row (a mapping of column name to value).

        Unknown columns are rejected; missing columns default to ``None``
        (except the primary key, which is required and must be unique).
        """
        for key in row:
            if key not in self.columns:
                raise RelationalError(
                    f"table {self.name!r}: unknown column {key!r}"
                )
        record = {
            name: column.coerce(row.get(name))
            for name, column in self.columns.items()
        }
        key = record[self.primary_key]
        if key is None:
            raise RelationalError(
                f"table {self.name!r}: primary key {self.primary_key!r} is null"
            )
        if key in self._rows:
            raise RelationalError(
                f"table {self.name!r}: duplicate primary key {key!r}"
            )
        self._rows[key] = record

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> None:
        for row in rows:
            self.insert(row)

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate rows in insertion order (copies)."""
        for record in self._rows.values():
            yield dict(record)

    def get(self, key: Any) -> dict[str, Any]:
        """Row by primary key (KeyError-style failure via RelationalError)."""
        record = self._rows.get(key)
        if record is None:
            raise RelationalError(
                f"table {self.name!r}: no row with {self.primary_key} = {key!r}"
            )
        return dict(record)

    def has_key(self, key: Any) -> bool:
        return key in self._rows

    def distinct(self, column: str) -> set[Any]:
        """Distinct non-null values of ``column``."""
        if column not in self.columns:
            raise RelationalError(f"table {self.name!r}: unknown column {column!r}")
        return {
            record[column]
            for record in self._rows.values()
            if record[column] is not None
        }

    # ------------------------------------------------------------------
    # CSV loading
    # ------------------------------------------------------------------
    @classmethod
    def from_csv(
        cls,
        name: str,
        text: str,
        primary_key: str,
        *,
        dtypes: Mapping[str, type] | None = None,
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> "Table":
        """Build a table from CSV text (first line = header).

        Empty strings load as ``None``; column types default to ``str``
        unless given in ``dtypes``.
        """
        reader = csv.DictReader(io.StringIO(text))
        if reader.fieldnames is None:
            raise RelationalError(f"table {name!r}: CSV input has no header")
        dtypes = dict(dtypes or {})
        columns = [Column(field, dtypes.get(field, str)) for field in reader.fieldnames]
        table = cls(name, columns, primary_key, foreign_keys)
        for row in reader:
            cleaned = {k: (v if v != "" else None) for k, v in row.items()}
            table.insert(cleaned)
        return table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Table({self.name!r}, columns={list(self.columns)}, "
            f"rows={self.row_count})"
        )
