"""Relational-database front end (paper §8).

Section 8: *"It is also possible to apply our query-based outlier detection
idea on traditional relational databases, with a structure similar to our
defined outlier query language."*  This package makes that concrete:

* :mod:`~repro.relational.table` — a small in-memory relational model:
  typed columns, primary keys, foreign keys, CSV loading.
* :mod:`~repro.relational.database` — a database of tables with referential
  integrity checking.
* :mod:`~repro.relational.convert` — the schema mapping onto a HIN: tables
  become vertex types, rows become vertices, foreign keys become edge
  types, junction tables optionally collapse into direct edges, and
  categorical columns can be expanded into value vertices.

After conversion, the full outlier query language applies unchanged — the
meta-path ``order.customer`` reads exactly like the SQL join it replaces.
"""

from repro.relational.table import Column, ForeignKey, Table
from repro.relational.database import RelationalDatabase
from repro.relational.convert import database_to_hin

__all__ = [
    "Column",
    "ForeignKey",
    "Table",
    "RelationalDatabase",
    "database_to_hin",
]
