"""Converting a relational database into a heterogeneous information network.

The §8 mapping, made concrete:

* each table becomes a **vertex type**; each row becomes a vertex named by
  its primary key (or a designated display column);
* each foreign key becomes a symmetric **edge type** between the two
  tables' vertex types, with one edge per non-null reference;
* **junction tables** (exactly two FKs, no other data) can be collapsed
  into direct edges between the referenced tables, one per junction row —
  the natural reading of a many-to-many relation;
* selected **categorical columns** can be *expanded* into vertices of a new
  type (one vertex per distinct value, an edge per row), which is how a
  ``city`` or ``category`` column becomes a judgeable meta-path dimension.

After conversion the outlier query language applies unchanged:
``FIND OUTLIERS FROM customer JUDGED BY customer.order.product TOP 5;``
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.hin.network import HeterogeneousInformationNetwork, VertexId
from repro.hin.schema import NetworkSchema
from repro.relational.database import RelationalDatabase
from repro.relational.table import RelationalError, Table

__all__ = ["database_to_hin"]


def _row_name(table: Table, row: dict, name_column: str | None) -> str:
    if name_column is not None:
        value = row.get(name_column)
        if value is not None:
            return str(value)
    return str(row[table.primary_key])


def database_to_hin(
    database: RelationalDatabase,
    *,
    name_columns: Mapping[str, str] | None = None,
    expand_columns: Mapping[str, Sequence[str]] | None = None,
    collapse_junction_tables: bool = True,
    check_integrity: bool = True,
) -> HeterogeneousInformationNetwork:
    """Convert ``database`` into a HIN ready for outlier queries.

    Parameters
    ----------
    name_columns:
        Per-table display-name column (defaults to the primary key).  Names
        must be unique per table — primary keys are appended on collision.
    expand_columns:
        Per-table categorical columns to expand into vertex types.  The new
        vertex type is named after the column; expanding two tables'
        same-named columns merges their value spaces (usually what you
        want for shared vocabularies).
    collapse_junction_tables:
        Collapse pure many-to-many junction tables into direct edges
        between the referenced tables instead of materializing row
        vertices.
    check_integrity:
        Run referential-integrity checking first (recommended).

    Raises
    ------
    RelationalError
        On integrity violations or invalid expansion columns.
    """
    if check_integrity:
        database.check_integrity()
    name_columns = dict(name_columns or {})
    expand_columns = {k: list(v) for k, v in (expand_columns or {}).items()}

    for table_name, columns in expand_columns.items():
        table = database.table(table_name)
        for column in columns:
            if column not in table.columns:
                raise RelationalError(
                    f"cannot expand unknown column {table_name}.{column}"
                )

    junctions = (
        {t.name for t in database.junction_tables()}
        if collapse_junction_tables
        else set()
    )

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    schema = NetworkSchema()
    for table in database.tables():
        if table.name in junctions:
            continue
        schema.add_vertex_type(table.name)
    for columns in expand_columns.values():
        for column in columns:
            schema.add_vertex_type(column)
    for table in database.tables():
        if table.name in junctions:
            # Junction: edge type directly between the two referenced tables.
            left, right = table.foreign_keys
            schema.add_edge_type(left.table, right.table)
            continue
        for fk in table.foreign_keys:
            if fk.table in junctions:
                raise RelationalError(
                    f"table {table.name!r} references junction table "
                    f"{fk.table!r}; disable collapse_junction_tables"
                )
            schema.add_edge_type(table.name, fk.table)
    for table_name, columns in expand_columns.items():
        if table_name in junctions:
            raise RelationalError(
                f"cannot expand columns of junction table {table_name!r} "
                "while collapsing it; disable collapse_junction_tables"
            )
        for column in columns:
            schema.add_edge_type(table_name, column)

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------
    network = HeterogeneousInformationNetwork(schema)
    row_vertices: dict[tuple[str, object], VertexId] = {}
    for table in database.tables():
        if table.name in junctions:
            continue
        name_column = name_columns.get(table.name)
        fk_columns = {fk.column for fk in table.foreign_keys}
        expanded = set(expand_columns.get(table.name, ()))
        for row in table.rows():
            name = _row_name(table, row, name_column)
            if network.has_vertex(table.name, name):
                name = f"{name}#{row[table.primary_key]}"
            attributes = {
                column: value
                for column, value in row.items()
                if column not in fk_columns
                and column not in expanded
                and column != table.primary_key
                and value is not None
            }
            vertex = network.add_vertex(table.name, name, attributes)
            row_vertices[(table.name, row[table.primary_key])] = vertex

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    for table in database.tables():
        if table.name in junctions:
            left, right = table.foreign_keys
            for row in table.rows():
                left_key, right_key = row[left.column], row[right.column]
                if left_key is None or right_key is None:
                    continue
                network.add_edge(
                    row_vertices[(left.table, left_key)],
                    row_vertices[(right.table, right_key)],
                )
            continue
        for fk in table.foreign_keys:
            for row in table.rows():
                value = row[fk.column]
                if value is None:
                    continue
                network.add_edge(
                    row_vertices[(table.name, row[table.primary_key])],
                    row_vertices[(fk.table, value)],
                )
        for column in expand_columns.get(table.name, ()):
            for row in table.rows():
                value = row[column]
                if value is None:
                    continue
                value_vertex = network.add_vertex(column, str(value))
                network.add_edge(
                    row_vertices[(table.name, row[table.primary_key])],
                    value_vertex,
                )
    return network
