"""Query-workload generation for the efficiency study (paper §7.1).

The paper randomly selects 10,000 author vertices and substitutes them into
the Table 4 templates to form the query sets Q1-Q3.  These helpers do the
same at a configurable scale.
"""

from __future__ import annotations

import numpy as np

from repro.hin.network import HeterogeneousInformationNetwork
from repro.query.templates import QueryTemplate
from repro.utils.rng import ensure_rng

__all__ = ["random_author_anchors", "generate_query_set"]


def random_author_anchors(
    network: HeterogeneousInformationNetwork,
    count: int,
    seed: int | np.random.Generator = 0,
    *,
    vertex_type: str = "author",
    with_replacement: bool = False,
) -> list[str]:
    """Draw ``count`` random anchor names of ``vertex_type``.

    Sampling is without replacement when the type has enough vertices
    (matching the paper's random selection); set ``with_replacement`` to
    allow repeats explicitly.
    """
    rng = ensure_rng(seed)
    names = network.vertex_names(vertex_type)
    if not names:
        raise ValueError(f"the network has no vertices of type {vertex_type!r}")
    replace = with_replacement or count > len(names)
    chosen = rng.choice(len(names), size=count, replace=replace)
    return [names[int(i)] for i in chosen]


def generate_query_set(
    network: HeterogeneousInformationNetwork,
    template: QueryTemplate,
    count: int,
    seed: int | np.random.Generator = 0,
) -> list[str]:
    """Instantiate ``template`` over ``count`` random anchors (Table 4 style)."""
    anchors = random_author_anchors(
        network, count, seed, vertex_type=template.anchor_type
    )
    return [template.render(anchor) for anchor in anchors]
