"""Data generation: paper fixtures, synthetic corpora, and query workloads.

* :mod:`~repro.datagen.fixtures` — the exact toy networks of the paper's
  Figure 1(b), Figure 2, and Table 1, used for exact-value tests.
* :mod:`~repro.datagen.synthetic` — a configurable community-structured
  DBLP-like bibliographic generator standing in for the AMiner corpus,
  including the planted outlier archetypes the case studies rely on.
* :mod:`~repro.datagen.workloads` — Table 4 query-set generation for the
  efficiency benchmarks.
* :mod:`~repro.datagen.security` — a second-domain (security-operations)
  HIN generator demonstrating schema generality.
* :mod:`~repro.datagen.aminer` — loader for the actual AMiner/ArnetMiner
  text format the paper evaluates on, for users who download the dump.
"""

from repro.datagen.fixtures import (
    figure1_network,
    figure2_network,
    table1_network,
    TABLE1_CANDIDATES,
    TABLE1_REFERENCE_SIZE,
)
from repro.datagen.synthetic import (
    BibliographicNetworkGenerator,
    EgoNetworkSpec,
    GeneratorConfig,
    PaperChunk,
    StreamingCorpusConfig,
    StructuralOutlierCorpus,
    hub_ego_corpus,
    stream_paper_chunks,
    streaming_bibliographic_network,
    structural_outlier_corpus,
)
from repro.datagen.workloads import generate_query_set, random_author_anchors
from repro.datagen.security import SecurityNetworkGenerator, security_schema
from repro.datagen.aminer import iter_aminer_records, load_aminer, parse_aminer

__all__ = [
    "figure1_network",
    "figure2_network",
    "table1_network",
    "TABLE1_CANDIDATES",
    "TABLE1_REFERENCE_SIZE",
    "GeneratorConfig",
    "BibliographicNetworkGenerator",
    "EgoNetworkSpec",
    "hub_ego_corpus",
    "StructuralOutlierCorpus",
    "structural_outlier_corpus",
    "StreamingCorpusConfig",
    "PaperChunk",
    "stream_paper_chunks",
    "streaming_bibliographic_network",
    "generate_query_set",
    "random_author_anchors",
    "SecurityNetworkGenerator",
    "security_schema",
    "parse_aminer",
    "load_aminer",
    "iter_aminer_records",
]
