"""Synthetic DBLP-like bibliographic corpora.

This generator stands in for the paper's AMiner corpus (2.2M papers): a
community-structured bibliographic network over the same schema (author,
paper, venue, term) with the degree skew that drives both the case-study
effectiveness results and the efficiency benchmarks:

* authors and venues are selected within a community by Zipf-like weights,
  so a few authors are prolific and a few venues are large;
* papers occasionally cross communities (coauthors or venues from another
  community), creating the weak inter-community connectivity real
  bibliographies have;
* a small fraction of records carries missing data — a ``NULL`` author or a
  ``NULL`` venue — reproducing the data artifact the paper's Table 5
  surfaces as a top outlier.

:func:`hub_ego_corpus` additionally plants the ego-network archetypes the
paper's Tables 3 and 5 are built around: a prolific hub author
(Christos-like), *cross-field established* coauthors (high visibility,
publishing mostly in another community), and *low-visibility students*
(a single paper with the hub in a rare venue).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hin.bibliographic import BibliographicNetworkBuilder, Publication
from repro.hin.network import HeterogeneousInformationNetwork
from repro.utils.rng import ensure_rng
from repro.utils.validation import require, require_probability

__all__ = [
    "GeneratorConfig",
    "BibliographicNetworkGenerator",
    "EgoNetworkSpec",
    "hub_ego_corpus",
    "StructuralOutlierCorpus",
    "structural_outlier_corpus",
    "StreamingCorpusConfig",
    "PaperChunk",
    "stream_paper_chunks",
    "streaming_bibliographic_network",
]


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the synthetic bibliographic corpus.

    Defaults produce a laptop-scale network (~1k authors, ~4k papers) in
    well under a second; benchmarks scale the counts up explicitly.
    """

    num_communities: int = 5
    authors_per_community: int = 200
    venues_per_community: int = 8
    terms_per_community: int = 120
    common_terms: int = 40
    papers_per_community: int = 800
    max_authors_per_paper: int = 4
    terms_per_paper: tuple[int, int] = (3, 7)
    #: Probability that one author slot is drawn from a foreign community.
    cross_community_author_prob: float = 0.05
    #: Probability that the venue is drawn from a foreign community.
    cross_community_venue_prob: float = 0.03
    #: Probability a record's venue is missing (materializes as ``NULL``).
    missing_venue_prob: float = 0.002
    #: Probability one author slot is a missing-data marker (``NULL``).
    missing_author_prob: float = 0.002
    #: Zipf-ish skew exponents for author productivity and venue size.
    author_skew: float = 0.9
    venue_skew: float = 1.1

    def __post_init__(self) -> None:
        require(self.num_communities >= 1, "num_communities must be >= 1")
        require(self.authors_per_community >= 1, "authors_per_community must be >= 1")
        require(self.venues_per_community >= 1, "venues_per_community must be >= 1")
        require(self.max_authors_per_paper >= 1, "max_authors_per_paper must be >= 1")
        low, high = self.terms_per_paper
        require(1 <= low <= high, "terms_per_paper must be an increasing pair")
        require_probability(self.cross_community_author_prob, "cross_community_author_prob")
        require_probability(self.cross_community_venue_prob, "cross_community_venue_prob")
        require_probability(self.missing_venue_prob, "missing_venue_prob")
        require_probability(self.missing_author_prob, "missing_author_prob")


def _zipf_weights(count: int, skew: float) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-skew)
    return weights / weights.sum()


class BibliographicNetworkGenerator:
    """Generates deterministic synthetic bibliographic corpora.

    Parameters
    ----------
    config:
        Corpus parameters; defaults are laptop-scale.
    seed:
        Integer seed or generator; the same seed reproduces the same corpus
        exactly.

    Examples
    --------
    >>> generator = BibliographicNetworkGenerator(seed=7)
    >>> publications = generator.generate_publications()
    >>> network = generator.build_network(publications)
    >>> network.num_vertices("paper") == len(publications)
    True
    """

    def __init__(
        self,
        config: GeneratorConfig | None = None,
        seed: int | np.random.Generator = 0,
    ) -> None:
        self.config = config or GeneratorConfig()
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    # Naming scheme
    # ------------------------------------------------------------------
    def author_name(self, community: int, rank: int) -> str:
        """Name of the ``rank``-th author of ``community`` (0-based rank)."""
        return f"C{community}-Author-{rank:04d}"

    def venue_name(self, community: int, rank: int) -> str:
        """Name of the ``rank``-th venue of ``community``."""
        return f"C{community}-Venue-{rank}"

    def term_name(self, community: int, rank: int) -> str:
        return f"c{community}-term-{rank}"

    def common_term_name(self, rank: int) -> str:
        return f"common-term-{rank}"

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate_publications(self) -> list[Publication]:
        """Generate the publication records of the corpus."""
        config = self.config
        rng = self._rng
        author_weights = _zipf_weights(config.authors_per_community, config.author_skew)
        venue_weights = _zipf_weights(config.venues_per_community, config.venue_skew)
        publications: list[Publication] = []
        paper_counter = 0
        for community in range(config.num_communities):
            for _ in range(config.papers_per_community):
                paper_counter += 1
                publications.append(
                    self._generate_paper(
                        f"P{paper_counter:07d}",
                        community,
                        author_weights,
                        venue_weights,
                        rng,
                    )
                )
        return publications

    def _generate_paper(
        self,
        key: str,
        community: int,
        author_weights: np.ndarray,
        venue_weights: np.ndarray,
        rng: np.random.Generator,
    ) -> Publication:
        config = self.config
        author_count = int(rng.integers(1, config.max_authors_per_paper + 1))
        authors: list[str] = []
        for _ in range(author_count):
            if rng.random() < config.missing_author_prob:
                authors.append("NULL")
                continue
            author_community = community
            if (
                config.num_communities > 1
                and rng.random() < config.cross_community_author_prob
            ):
                author_community = self._other_community(community, rng)
            rank = int(rng.choice(config.authors_per_community, p=author_weights))
            name = self.author_name(author_community, rank)
            if name not in authors:
                authors.append(name)
        if not authors:
            authors.append(self.author_name(community, 0))

        venue: str | None
        if rng.random() < config.missing_venue_prob:
            venue = None
        else:
            venue_community = community
            if (
                config.num_communities > 1
                and rng.random() < config.cross_community_venue_prob
            ):
                venue_community = self._other_community(community, rng)
            venue_rank = int(rng.choice(config.venues_per_community, p=venue_weights))
            venue = self.venue_name(venue_community, venue_rank)

        low, high = config.terms_per_paper
        term_count = int(rng.integers(low, high + 1))
        terms: list[str] = []
        for _ in range(term_count):
            if config.common_terms and rng.random() < 0.25:
                terms.append(self.common_term_name(int(rng.integers(config.common_terms))))
            else:
                terms.append(
                    self.term_name(community, int(rng.integers(config.terms_per_community)))
                )
        year = int(rng.integers(1995, 2015))
        return Publication(key, authors, venue, terms=sorted(set(terms)), year=year)

    def _other_community(self, community: int, rng: np.random.Generator) -> int:
        offset = int(rng.integers(1, self.config.num_communities))
        return (community + offset) % self.config.num_communities

    def build_network(
        self, publications: list[Publication] | None = None
    ) -> HeterogeneousInformationNetwork:
        """Expand publications (generated on demand) into a network."""
        if publications is None:
            publications = self.generate_publications()
        builder = BibliographicNetworkBuilder()
        builder.add_publications(publications)
        return builder.build()


@dataclass
class EgoNetworkSpec:
    """Parameters for the planted hub ego network (Tables 3 and 5 testbed)."""

    hub_name: str = "Prof. Hub"
    hub_community: int = 0
    #: Papers the hub coauthors with same-community collaborators.
    hub_papers: int = 60
    cross_field_count: int = 5
    #: Publications of each cross-field author in their own (foreign) field.
    cross_field_papers: tuple[int, int] = (60, 140)
    #: Papers each cross-field author publishes in hub-community venues
    #: (creates the small overlap that separates PathSim from NetOut).
    cross_field_home_papers: int = 4
    student_count: int = 5
    seed: int = 0


@dataclass
class HubEgoCorpus:
    """The generated corpus plus the planted-group ground truth."""

    network: HeterogeneousInformationNetwork
    hub: str
    normal_coauthors: list[str]
    cross_field: list[str]
    students: list[str]
    publications: list[Publication] = field(repr=False, default_factory=list)


def hub_ego_corpus(
    config: GeneratorConfig | None = None,
    spec: EgoNetworkSpec | None = None,
) -> HubEgoCorpus:
    """Generate a corpus with a planted hub ego network.

    The planted groups reproduce the paper's Table 3 setting:

    * ``normal_coauthors`` — same-community collaborators of the hub with
      ordinary publication profiles (high NetOut scores: not outliers);
    * ``cross_field`` — established authors (high visibility) who coauthored
      once or twice with the hub but publish overwhelmingly in a different
      community's venues — NetOut's expected top outliers;
    * ``students`` — single-paper authors whose only paper is with the hub
      in an otherwise unused venue — PathSim/CosSim's (biased) top outliers.
    """
    spec = spec or EgoNetworkSpec()
    generator = BibliographicNetworkGenerator(config, seed=spec.seed)
    config = generator.config
    require(
        config.num_communities >= 2,
        "hub_ego_corpus needs at least two communities for cross-field authors",
    )
    rng = ensure_rng(spec.seed + 1)
    publications = generator.generate_publications()
    counter = len(publications)

    def next_key() -> str:
        nonlocal counter
        counter += 1
        return f"E{counter:07d}"

    home = spec.hub_community
    venue_weights = _zipf_weights(config.venues_per_community, config.venue_skew)
    author_weights = _zipf_weights(config.authors_per_community, config.author_skew)

    def home_venue() -> str:
        return generator.venue_name(home, int(rng.choice(config.venues_per_community, p=venue_weights)))

    def home_author() -> str:
        return generator.author_name(home, int(rng.choice(config.authors_per_community, p=author_weights)))

    normal_coauthors: set[str] = set()
    # Hub collaborations inside the home community.
    for _ in range(spec.hub_papers):
        coauthor_count = int(rng.integers(1, 4))
        coauthors = {home_author() for _ in range(coauthor_count)}
        normal_coauthors |= coauthors
        publications.append(
            Publication(
                next_key(),
                [spec.hub_name, *sorted(coauthors)],
                home_venue(),
                terms=["mining", "networks"],
            )
        )

    # Cross-field established coauthors.
    cross_field: list[str] = []
    low, high = spec.cross_field_papers
    for i in range(spec.cross_field_count):
        name = f"CrossField-{i + 1}"
        cross_field.append(name)
        foreign = 1 + (i % (config.num_communities - 1))
        # One collaboration with the hub, in a home venue.
        publications.append(
            Publication(next_key(), [spec.hub_name, name], home_venue(), terms=["joint"])
        )
        # A small home-community presence (overlap with the reference set).
        for _ in range(spec.cross_field_home_papers):
            publications.append(
                Publication(next_key(), [name], home_venue(), terms=["visit"])
            )
        # The bulk of their record, in foreign venues.
        for _ in range(int(rng.integers(low, high + 1))):
            venue = generator.venue_name(
                foreign, int(rng.choice(config.venues_per_community, p=venue_weights))
            )
            publications.append(
                Publication(next_key(), [name], venue, terms=["field"])
            )

    # Low-visibility students: one paper with the hub in a rare venue.  The
    # paper has four authors (hub, student, an established coauthor, and a
    # home colleague), so the student's NetOut score equals 4 — matching the
    # paper's Table 5, where the single-paper student ranks just below the
    # established cross-field outliers (Ω = 4.00 at rank 7).
    students: list[str] = []
    for i in range(spec.student_count):
        name = f"Student-{i + 1}"
        students.append(name)
        publications.append(
            Publication(
                next_key(),
                [
                    spec.hub_name,
                    name,
                    cross_field[i % len(cross_field)],
                    home_author(),
                ],
                f"RareVenue-{i + 1}",
                terms=["thesis"],
            )
        )

    network = generator.build_network(publications)
    return HubEgoCorpus(
        network=network,
        hub=spec.hub_name,
        normal_coauthors=sorted(normal_coauthors),
        cross_field=cross_field,
        students=students,
        publications=publications,
    )


@dataclass
class StructuralOutlierCorpus:
    """A synthetic corpus with planted *structural* outlier authors.

    Unlike the attribute archetype (a normal-degree author with an unusual
    venue profile), a structural outlier has an abnormal *shape*: an order
    of magnitude more papers than any real author, all single-authored, and
    scattered uniformly over every community's venues — the
    degree-plus-boundary anomaly classical structural detectors target.
    """

    network: HeterogeneousInformationNetwork
    outlier_authors: list[str]
    publications: list[Publication] = field(repr=False, default_factory=list)


def structural_outlier_corpus(
    config: GeneratorConfig | None = None,
    *,
    num_outliers: int = 3,
    papers_per_outlier: int = 40,
    seed: int = 0,
) -> StructuralOutlierCorpus:
    """Generate a corpus with planted structural outlier authors.

    Each planted author (``Structural-1`` ...) publishes
    ``papers_per_outlier`` single-author papers whose venues cycle through
    *every* community (venue ranks drawn with the corpus's own skew).  With
    community authors averaging a handful of coauthored, home-community
    papers, the planted records are extreme in both degree and
    cross-community spread while remaining attribute-plausible paper by
    paper.  Deterministic given ``seed``.
    """
    require(num_outliers >= 1, "num_outliers must be >= 1")
    require(papers_per_outlier >= 1, "papers_per_outlier must be >= 1")
    generator = BibliographicNetworkGenerator(config, seed=seed)
    config = generator.config
    rng = ensure_rng(seed + 1)
    publications = generator.generate_publications()
    counter = len(publications)
    venue_weights = _zipf_weights(config.venues_per_community, config.venue_skew)

    outliers: list[str] = []
    for i in range(num_outliers):
        name = f"Structural-{i + 1}"
        outliers.append(name)
        for j in range(papers_per_outlier):
            counter += 1
            community = j % config.num_communities
            venue = generator.venue_name(
                community,
                int(rng.choice(config.venues_per_community, p=venue_weights)),
            )
            publications.append(
                Publication(
                    f"S{counter:07d}",
                    [name],
                    venue,
                    terms=[generator.common_term_name(i % max(1, config.common_terms))]
                    if config.common_terms
                    else [generator.term_name(community, 0)],
                )
            )

    return StructuralOutlierCorpus(
        network=generator.build_network(publications),
        outlier_authors=outliers,
        publications=publications,
    )


# ----------------------------------------------------------------------
# Streaming million-vertex generation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamingCorpusConfig:
    """Parameters of the chunked large-scale corpus.

    Defaults produce a ~1.08M-vertex network (600K papers, 350K authors,
    120K terms, 5K venues) whose full-PM index materializes to a few GB —
    big enough to demonstrate the out-of-core tier, small enough to build
    in minutes on one core.  The mild ``skew`` (0.3, versus 0.9–1.1 in the
    laptop-scale generator) keeps the length-2 product matrices from
    blowing up quadratically around the hottest hubs: the nnz of e.g.
    ``paper.venue.paper`` scales with the sum of squared venue degrees.
    """

    num_papers: int = 600_000
    num_authors: int = 350_000
    num_venues: int = 5_000
    num_terms: int = 120_000
    authors_per_paper: tuple[int, int] = (1, 3)
    terms_per_paper: tuple[int, int] = (3, 6)
    #: Zipf-like exponent for author/venue/term popularity.
    skew: float = 0.3
    #: Papers sampled per chunk; peak transient RAM during generation is
    #: proportional to this, not to ``num_papers``.
    chunk_papers: int = 100_000

    def __post_init__(self) -> None:
        for name in ("num_papers", "num_authors", "num_venues", "num_terms"):
            require(getattr(self, name) >= 1, f"{name} must be >= 1")
        for name in ("authors_per_paper", "terms_per_paper"):
            low, high = getattr(self, name)
            require(1 <= low <= high, f"{name} must be an increasing pair")
        require(self.skew >= 0.0, "skew must be >= 0")
        require(self.chunk_papers >= 1, "chunk_papers must be >= 1")

    @property
    def num_vertices(self) -> int:
        return (
            self.num_papers + self.num_authors + self.num_venues + self.num_terms
        )


@dataclass(frozen=True)
class PaperChunk:
    """One chunk of generated publications, as flat index arrays.

    ``paper_start`` is the global index of the chunk's first paper;
    ``authors``/``terms`` are ragged (flat values + CSR-style ``indptr``
    over the chunk's papers), ``venues`` holds one venue index per paper.
    """

    paper_start: int
    author_values: np.ndarray
    author_indptr: np.ndarray
    venue_values: np.ndarray
    term_values: np.ndarray
    term_indptr: np.ndarray

    @property
    def num_papers(self) -> int:
        return len(self.venue_values)


def stream_paper_chunks(
    config: StreamingCorpusConfig | None = None,
    seed: int | np.random.Generator = 0,
):
    """Yield :class:`PaperChunk` batches, deterministically per seed.

    All sampling is vectorized per chunk — no per-paper Python loop — so a
    million-paper corpus generates in seconds while the transient working
    set stays ``O(chunk_papers)``.
    """
    config = config or StreamingCorpusConfig()
    rng = ensure_rng(seed)
    author_weights = _zipf_weights(config.num_authors, config.skew)
    venue_weights = _zipf_weights(config.num_venues, config.skew)
    term_weights = _zipf_weights(config.num_terms, config.skew)
    a_low, a_high = config.authors_per_paper
    t_low, t_high = config.terms_per_paper
    for start in range(0, config.num_papers, config.chunk_papers):
        count = min(config.chunk_papers, config.num_papers - start)
        author_counts = rng.integers(a_low, a_high + 1, size=count)
        term_counts = rng.integers(t_low, t_high + 1, size=count)
        author_indptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(author_counts, out=author_indptr[1:])
        term_indptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(term_counts, out=term_indptr[1:])
        yield PaperChunk(
            paper_start=start,
            author_values=rng.choice(
                config.num_authors, size=int(author_indptr[-1]), p=author_weights
            ).astype(np.int32),
            author_indptr=author_indptr,
            venue_values=rng.choice(
                config.num_venues, size=count, p=venue_weights
            ).astype(np.int32),
            term_values=rng.choice(
                config.num_terms, size=int(term_indptr[-1]), p=term_weights
            ).astype(np.int32),
            term_indptr=term_indptr,
        )


def streaming_bibliographic_network(
    config: StreamingCorpusConfig | None = None,
    *,
    seed: int | np.random.Generator = 0,
    storage: str = "ram",
    storage_dir: "str | None" = None,
) -> HeterogeneousInformationNetwork:
    """Materialize a large bibliographic network from the chunk stream.

    Edge endpoints accumulate as int32 index arrays (``O(edges)``, the
    floor for a network that is about to exist), the six adjacency
    matrices are assembled one edge type at a time, and — with
    ``storage="mmap"`` — each is spilled to file-backed buffers by
    :meth:`~repro.hin.network.HeterogeneousInformationNetwork.from_prebuilt`,
    so peak RSS stays ``O(edges)`` and never approaches the full in-RAM
    footprint of network plus materialized index.  Vertex names are
    compact (``p0``/``a0``/``v0``/``t0``…);
    ``a0`` is always the most prolific author (Zipf rank 1), which gives
    benchmarks a deterministic hot anchor.
    """
    from scipy import sparse

    from repro.hin.schema import bibliographic_schema

    config = config or StreamingCorpusConfig()
    paper_author: list[tuple[np.ndarray, np.ndarray]] = []
    paper_venue: list[tuple[np.ndarray, np.ndarray]] = []
    paper_term: list[tuple[np.ndarray, np.ndarray]] = []
    num_edges = 0
    for chunk in stream_paper_chunks(config, seed):
        papers = np.arange(
            chunk.paper_start,
            chunk.paper_start + chunk.num_papers,
            dtype=np.int32,
        )
        author_rows = np.repeat(papers, np.diff(chunk.author_indptr))
        term_rows = np.repeat(papers, np.diff(chunk.term_indptr))
        paper_author.append((author_rows, chunk.author_values))
        paper_venue.append((papers, chunk.venue_values))
        paper_term.append((term_rows, chunk.term_values))
        num_edges += (
            len(chunk.author_values)
            + len(chunk.venue_values)
            + len(chunk.term_values)
        )

    def _assemble(pairs, shape):
        rows = np.concatenate([p[0] for p in pairs])
        cols = np.concatenate([p[1] for p in pairs])
        forward = sparse.coo_matrix(
            (np.ones(len(rows), dtype=np.float64), (rows, cols)), shape=shape
        ).tocsr()
        forward.sum_duplicates()
        forward.sort_indices()
        reverse = forward.T.tocsr()
        reverse.sum_duplicates()
        reverse.sort_indices()
        return forward, reverse

    adjacency: dict[tuple[str, str], "sparse.csr_matrix"] = {}
    for pairs, other, count in (
        (paper_author, "author", config.num_authors),
        (paper_venue, "venue", config.num_venues),
        (paper_term, "term", config.num_terms),
    ):
        forward, reverse = _assemble(pairs, (config.num_papers, count))
        adjacency[("paper", other)] = forward
        adjacency[(other, "paper")] = reverse
        pairs.clear()

    names = {
        "paper": [f"p{i}" for i in range(config.num_papers)],
        "author": [f"a{i}" for i in range(config.num_authors)],
        "venue": [f"v{i}" for i in range(config.num_venues)],
        "term": [f"t{i}" for i in range(config.num_terms)],
    }
    return HeterogeneousInformationNetwork.from_prebuilt(
        bibliographic_schema(),
        names,
        {},
        adjacency,
        num_edges=num_edges,
        storage=storage,
        storage_dir=storage_dir,
    )
