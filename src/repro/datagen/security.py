"""A security-operations HIN: the framework beyond bibliography.

The paper (funded by the Army Research Lab) motivates query-based outlier
detection for security analytics.  This generator builds a heterogeneous
network of users, hosts, security alerts, and alert categories:

* ``user — host``   (login sessions; parallel edges count logins)
* ``host — alert``  (alerts raised on the host)
* ``alert — category`` (each alert has a category)

Two outlier archetypes can be planted, each with exact ground truth:

* a *compromised host* receives an unusual mix of alert categories
  relative to its peers, so a query like::

      FIND OUTLIERS FROM user{"analyst-0"}.host
      JUDGED BY host.alert.category
      TOP 5;

  surfaces it — demonstrating that the query language and NetOut work
  unchanged on a non-bibliographic schema;
* a *fraud ring* is a clique of planted users whose entire login activity
  concentrates on one small shared set of ring hosts — the collusion
  pattern (shared-resource abuse) the detector zoo's ``fraud-ring``
  scenario evaluates.  Normal users touch ~10 % random hosts outside their
  working pool; ring members never leave the ring, so their ``user.host``
  profiles are near-identical to each other and unlike everyone else's.

The generator reports exactly which vertices it perturbed
(:attr:`SecurityCorpus.compromised_hosts`, :attr:`SecurityCorpus.fraud_users`,
:attr:`SecurityCorpus.ring_hosts`), making every planting a labeled
ground-truth set for evaluation harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hin.builder import NetworkBuilder
from repro.hin.network import HeterogeneousInformationNetwork
from repro.hin.schema import NetworkSchema
from repro.utils.rng import ensure_rng
from repro.utils.validation import require

__all__ = ["security_schema", "SecurityNetworkGenerator", "SecurityCorpus"]


def security_schema() -> NetworkSchema:
    """Schema: user, host, alert, category with login/raise/classify edges."""
    schema = NetworkSchema(["user", "host", "alert", "category"])
    schema.add_edge_type("user", "host")
    schema.add_edge_type("host", "alert")
    schema.add_edge_type("alert", "category")
    return schema


@dataclass
class SecurityCorpus:
    """Generated network plus the planted ground truth.

    Attributes
    ----------
    network:
        The generated heterogeneous network.
    compromised_hosts:
        Hosts planted with attack-category alert bursts (empty when
        ``num_compromised=0``).
    analyst_users:
        The regular (non-planted) user population, in index order.
    fraud_users:
        Users planted as a collusion ring (empty when
        ``num_fraud_users=0``).
    ring_hosts:
        The shared hosts the fraud ring concentrates on (empty when no
        ring was planted).
    """

    network: HeterogeneousInformationNetwork
    compromised_hosts: list[str]
    analyst_users: list[str]
    fraud_users: list[str] = field(default_factory=list)
    ring_hosts: list[str] = field(default_factory=list)


_BENIGN_CATEGORIES = (
    "failed-login",
    "policy-violation",
    "av-signature",
    "port-scan-inbound",
)

_ATTACK_CATEGORIES = (
    "lateral-movement",
    "data-exfiltration",
    "privilege-escalation",
    "c2-beacon",
)


class SecurityNetworkGenerator:
    """Generates a deterministic security-operations network.

    Parameters
    ----------
    num_users, num_hosts:
        Population sizes.
    logins_per_user:
        Login sessions per user (hosts drawn with locality: each user has a
        small working set of hosts).
    alerts_per_host:
        Expected benign alerts per host.
    num_compromised:
        Hosts to plant with attack-category alert profiles.
    num_fraud_users:
        Users to plant as a collusion ring concentrated on ``ring_size``
        shared hosts (0 disables the ring and leaves generation
        byte-identical to earlier versions).
    ring_size:
        Distinct hosts the fraud ring shares.
    seed:
        Determinism seed.
    """

    def __init__(
        self,
        *,
        num_users: int = 60,
        num_hosts: int = 80,
        logins_per_user: int = 30,
        alerts_per_host: int = 12,
        num_compromised: int = 2,
        num_fraud_users: int = 0,
        ring_size: int = 3,
        seed: int | np.random.Generator = 0,
    ) -> None:
        require(num_users >= 1, "num_users must be >= 1")
        require(num_hosts >= 2, "num_hosts must be >= 2")
        require(0 <= num_compromised <= num_hosts, "num_compromised out of range")
        require(num_fraud_users >= 0, "num_fraud_users must be >= 0")
        require(
            num_fraud_users == 0 or 1 <= ring_size <= num_hosts,
            "ring_size out of range",
        )
        self.num_users = num_users
        self.num_hosts = num_hosts
        self.logins_per_user = logins_per_user
        self.alerts_per_host = alerts_per_host
        self.num_compromised = num_compromised
        self.num_fraud_users = num_fraud_users
        self.ring_size = ring_size
        self._rng = ensure_rng(seed)

    def generate(self) -> SecurityCorpus:
        """Build the network and return it with the planted ground truth."""
        rng = self._rng
        builder = NetworkBuilder(security_schema())
        hosts = [f"host-{i:03d}" for i in range(self.num_hosts)]
        users = [f"analyst-{i}" for i in range(self.num_users)]
        compromised = list(
            rng.choice(hosts, size=self.num_compromised, replace=False)
        )

        # Login sessions: each user works mostly on a local pool of hosts.
        pool_size = max(3, self.num_hosts // 10)
        for user in users:
            pool = rng.choice(self.num_hosts, size=pool_size, replace=False)
            for _ in range(self.logins_per_user):
                if rng.random() < 0.1:
                    host_index = int(rng.integers(self.num_hosts))
                else:
                    host_index = int(rng.choice(pool))
                builder.add_edge("user", user, "host", hosts[host_index])

        # Benign alert background on every host.
        alert_counter = 0
        for host in hosts:
            alert_count = max(1, int(rng.poisson(self.alerts_per_host)))
            for _ in range(alert_count):
                alert_counter += 1
                alert = f"alert-{alert_counter:05d}"
                category = str(rng.choice(_BENIGN_CATEGORIES))
                builder.add_edge("host", host, "alert", alert)
                builder.add_edge("alert", alert, "category", category)

        # Planted compromise: bursts of attack-category alerts.
        for host in compromised:
            burst = max(6, self.alerts_per_host)
            for _ in range(burst):
                alert_counter += 1
                alert = f"alert-{alert_counter:05d}"
                category = str(rng.choice(_ATTACK_CATEGORIES))
                builder.add_edge("host", host, "alert", alert)
                builder.add_edge("alert", alert, "category", category)
            # Make sure the compromised host appears in analyst workflows so
            # it lands in candidate sets.
            for user in users[: max(3, self.num_users // 10)]:
                builder.add_edge("user", user, "host", host)

        # Planted fraud ring: a clique of users whose logins all land on one
        # small shared host set (and nowhere else).  Ring hosts avoid the
        # compromised set so the two archetypes stay independently labeled.
        fraud_users: list[str] = []
        ring_hosts: list[str] = []
        if self.num_fraud_users:
            eligible = [h for h in hosts if h not in set(compromised)]
            require(
                len(eligible) >= self.ring_size,
                "not enough uncompromised hosts for the fraud ring",
            )
            ring_hosts = [
                str(h)
                for h in rng.choice(eligible, size=self.ring_size, replace=False)
            ]
            fraud_users = [f"fraud-user-{i}" for i in range(self.num_fraud_users)]
            for user in fraud_users:
                # Cover every ring host at least once, then concentrate the
                # remaining sessions randomly inside the ring.
                for host in ring_hosts:
                    builder.add_edge("user", user, "host", host)
                for _ in range(max(0, self.logins_per_user - self.ring_size)):
                    host = ring_hosts[int(rng.integers(self.ring_size))]
                    builder.add_edge("user", user, "host", host)

        return SecurityCorpus(
            network=builder.build(),
            compromised_hosts=[str(h) for h in compromised],
            analyst_users=users,
            fraud_users=fraud_users,
            ring_hosts=ring_hosts,
        )
