"""Exact toy networks from the paper, used as ground-truth test fixtures.

Each fixture reconstructs a figure or table precisely enough that the
quantities the paper derives from it are reproduced to the digit:

* :func:`figure1_network` — the instantiated bibliographic network of
  Figure 1(b): ``|π_APA(Ava, Liam)| = 1``, ``|π_APA(Liam, Zoe)| = 2``,
  ``φ_APA(Zoe) = [Ava: 1, Liam: 2, Zoe: 5]``,
  ``φ_APV(Zoe) = [ICDE: 2, KDD: 3]``.
* :func:`figure2_network` — the Jim/Mary path-counting example of
  Figure 2: connectivity ``2·4 + 1·2 + 3·6 = 28``, ``κ(Jim, Mary) = 0.5``,
  ``κ(Mary, Jim) = 2``.
* :func:`table1_network` — Table 1's candidates (Sarah, Rob, Lucy, Joe,
  Emma) against 100 reference authors with identical publication records;
  feeding it to the measures reproduces every Ω value in Table 2.
"""

from __future__ import annotations

from repro.hin.bibliographic import BibliographicNetworkBuilder, Publication
from repro.hin.network import HeterogeneousInformationNetwork

__all__ = [
    "figure1_network",
    "figure2_network",
    "table1_network",
    "TABLE1_CANDIDATES",
    "TABLE1_REFERENCE_SIZE",
]


def figure1_network() -> HeterogeneousInformationNetwork:
    """The instantiated bibliographic network of Figure 1(b).

    Zoe has five papers (two in ICDE, three in KDD); exactly one is
    coauthored with Ava and Liam together and one more with Liam alone,
    giving the neighbor vectors quoted in Section 3.
    """
    builder = BibliographicNetworkBuilder()
    builder.add_publications(
        [
            # Zoe's five papers; p1 with Ava and Liam, p2 with Liam.
            Publication("p1", ["Zoe", "Ava", "Liam"], "ICDE", terms=["mining"]),
            Publication("p2", ["Zoe", "Liam"], "ICDE", terms=["graphs"]),
            Publication("p3", ["Zoe"], "KDD", terms=["mining"]),
            Publication("p4", ["Zoe"], "KDD", terms=["outliers"]),
            Publication("p5", ["Zoe"], "KDD", terms=["networks"]),
        ]
    )
    return builder.build()


def figure2_network() -> HeterogeneousInformationNetwork:
    """The Figure 2 example: Jim and Mary publishing in three shared venues.

    Jim's venue counts are (4, 2, 6) and Mary's (2, 1, 3), so the
    connectivity along ``(A P V P A)`` is ``4·2 + 2·1 + 6·3 = 28`` with
    visibilities 56 (Jim) and 14 (Mary) — hence κ(Jim, Mary) = 0.5 and
    κ(Mary, Jim) = 2 exactly as in Section 5.1.
    """
    builder = BibliographicNetworkBuilder()
    publications = []
    counter = 0
    venue_counts = {"Jim": (4, 2, 6), "Mary": (2, 1, 3)}
    for author, counts in venue_counts.items():
        for venue, paper_count in zip(("V1", "V2", "V3"), counts):
            for _ in range(paper_count):
                counter += 1
                publications.append(
                    Publication(f"q{counter}", [author], venue, terms=["t"])
                )
    builder.add_publications(publications)
    return builder.build()


#: Candidate author names of Table 1, in paper order.
TABLE1_CANDIDATES = ("Sarah", "Rob", "Lucy", "Joe", "Emma")

#: Size of the Table 1 reference set (identical publication records).
TABLE1_REFERENCE_SIZE = 100

#: Publication counts per venue: (VLDB, KDD, STOC, SIGGRAPH).
_TABLE1_RECORDS: dict[str, tuple[int, int, int, int]] = {
    "Sarah": (10, 10, 1, 1),
    "Rob": (0, 1, 20, 20),
    "Lucy": (0, 5, 10, 10),
    "Joe": (0, 0, 0, 2),
    "Emma": (0, 0, 0, 30),
}

_TABLE1_VENUES = ("VLDB", "KDD", "STOC", "SIGGRAPH")

_TABLE1_REFERENCE_RECORD = (10, 10, 1, 1)


def table1_network() -> tuple[HeterogeneousInformationNetwork, list[str], list[str]]:
    """The Table 1 toy data set.

    Returns
    -------
    (network, candidates, reference):
        The network, the candidate author names (Table 1 order), and the
        100 reference author names (``Ref001`` .. ``Ref100``), each with
        publication record (VLDB: 10, KDD: 10, STOC: 1, SIGGRAPH: 1).
    """
    builder = BibliographicNetworkBuilder()
    counter = 0

    def add_record(author: str, record: tuple[int, int, int, int]) -> None:
        nonlocal counter
        for venue, paper_count in zip(_TABLE1_VENUES, record):
            for _ in range(paper_count):
                counter += 1
                builder.add_publication(
                    Publication(f"r{counter}", [author], venue, terms=["t"])
                )

    reference_names = [f"Ref{i:03d}" for i in range(1, TABLE1_REFERENCE_SIZE + 1)]
    for name in reference_names:
        add_record(name, _TABLE1_REFERENCE_RECORD)
    for name in TABLE1_CANDIDATES:
        add_record(name, _TABLE1_RECORDS[name])
    return builder.build(), list(TABLE1_CANDIDATES), reference_names
