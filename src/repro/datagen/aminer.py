"""Loader for the AMiner/ArnetMiner citation-dataset text format.

The paper's evaluation corpus is the ArnetMiner bibliographic dump
(https://arnetminer.org, 2,244,018 papers).  The dataset cannot be bundled
here, but its plain-text format is well documented; with a downloaded copy
this loader reproduces the paper's exact network.  Records look like::

    #index 1083734
    #* Some paper title
    #@ Author One; Author Two
    #t 2009
    #c SIGMOD Conference
    #! optional abstract ...

Records are blank-line separated.  Author lists use ``;`` or ``,`` as
separators (both occur in the wild).  Missing authors/venues map to the
``NULL`` markers exactly as the paper's Table 5 exhibits.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.exceptions import NetworkError
from repro.hin.bibliographic import BibliographicNetworkBuilder, Publication
from repro.hin.network import HeterogeneousInformationNetwork

__all__ = ["parse_aminer", "load_aminer", "iter_aminer_records"]


def _split_authors(text: str) -> list[str]:
    separator = ";" if ";" in text else ","
    names = [name.strip() for name in text.split(separator)]
    return [name for name in names if name]


def iter_aminer_records(handle: TextIO) -> Iterator[Publication]:
    """Yield one :class:`Publication` per AMiner record in ``handle``.

    Unknown tag lines are ignored (the format has grown tags over the
    years).  Records without an ``#index`` get a sequential synthetic key.
    Records with no authors at all become single-``NULL``-author papers —
    the paper's missing-data convention — rather than being dropped, so
    paper counts match the source file.
    """
    fields: dict[str, str] = {}
    fallback_counter = 0

    def flush() -> Publication | None:
        nonlocal fallback_counter
        if not fields:
            return None
        key = fields.get("index")
        if key is None:
            fallback_counter += 1
            key = f"noindex-{fallback_counter:07d}"
        authors = _split_authors(fields.get("authors", ""))
        if not authors:
            authors = ["NULL"]
        venue = fields.get("venue") or None
        year_text = fields.get("year", "")
        year = int(year_text) if year_text.strip().isdigit() else None
        return Publication(
            key=key,
            authors=authors,
            venue=venue,
            title=fields.get("title", ""),
            year=year,
        )

    for raw in handle:
        line = raw.rstrip("\n")
        if not line.strip():
            record = flush()
            if record is not None:
                yield record
            fields = {}
            continue
        if line.startswith("#index"):
            # A new #index without a blank separator also starts a record.
            if "index" in fields:
                record = flush()
                if record is not None:
                    yield record
                fields = {}
            fields["index"] = line[len("#index"):].strip()
        elif line.startswith("#*"):
            fields["title"] = line[2:].strip()
        elif line.startswith("#@"):
            fields["authors"] = line[2:].strip()
        elif line.startswith("#t"):
            fields["year"] = line[2:].strip()
        elif line.startswith("#c"):
            fields["venue"] = line[2:].strip()
        # Other tags (#!, #%, #i, ...) are ignored.
    record = flush()
    if record is not None:
        yield record


def parse_aminer(
    source: str | TextIO,
    *,
    limit: int | None = None,
) -> list[Publication]:
    """Parse AMiner-format text (string or open handle) into publications.

    Parameters
    ----------
    limit:
        Stop after this many records (useful for sampling the 2.2M-paper
        dump).
    """
    import io

    handle = io.StringIO(source) if isinstance(source, str) else source
    publications: list[Publication] = []
    for record in iter_aminer_records(handle):
        publications.append(record)
        if limit is not None and len(publications) >= limit:
            break
    return publications


def load_aminer(
    path: str | Path,
    *,
    limit: int | None = None,
) -> HeterogeneousInformationNetwork:
    """Load an AMiner dump file into a bibliographic HIN.

    This is the paper's exact corpus construction: each record generates
    P-A, P-V, and P-T links (terms tokenized from the title), with ``NULL``
    markers for missing authors/venues.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise NetworkError(f"AMiner file not found: {file_path}")
    builder = BibliographicNetworkBuilder()
    with open(file_path, "r", encoding="utf-8", errors="replace") as handle:
        for count, record in enumerate(iter_aminer_records(handle)):
            builder.add_publication(record)
            if limit is not None and count + 1 >= limit:
                break
    return builder.build()
