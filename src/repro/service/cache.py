"""Result caching keyed by the canonical form of a query.

Serving workloads repeat themselves: the same dashboards re-issue the same
outlier queries, and ad-hoc users re-run a query while tweaking one clause.
The :class:`ResultCache` memoizes whole
:class:`~repro.core.results.OutlierResult` objects under a *canonicalized*
query key, so textual variation that cannot change the answer — whitespace,
clause layout, keyword case — still hits.

Canonicalization is the shared :func:`repro.service.keys.canonical_query_key`
(re-exported here for compatibility): the query language round-trip
(:func:`~repro.query.parser.parse_query` →
:func:`~repro.query.formatter.format_query`), the same normal form the
formatter's property tests guarantee re-parses identically and the replica
router hashes for placement.

Entries carry the engine's network **version**; a lookup against a newer
version drops the entry (explicit invalidation also exists for operators).
A TTL bounds staleness against out-of-band changes; both mechanisms expose
counters so the stats endpoint can show hit/miss/shed behavior live.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.core.results import OutlierResult
from repro.exceptions import ServiceError
from repro.service.keys import canonical_query_key

__all__ = ["ResultCache", "canonical_query_key"]


@dataclass
class _Entry:
    result: OutlierResult
    version: int
    expires_at: float | None


class ResultCache:
    """Thread-safe LRU of query results with TTL and version invalidation.

    Parameters
    ----------
    max_entries:
        Capacity; least-recently-used entries evict first.  ``0`` creates a
        disabled cache (every get misses, every put is dropped) so callers
        need no special-casing.
    ttl_seconds:
        Entry lifetime from insertion (``None`` = no time-based expiry).
    clock:
        Monotonic time source, injectable for deterministic tests.
    """

    def __init__(
        self,
        *,
        max_entries: int = 1024,
        ttl_seconds: float | None = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 0:
            raise ServiceError(f"max_entries must be >= 0, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds < 0:
            raise ServiceError(f"ttl_seconds must be >= 0, got {ttl_seconds}")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.invalidations = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(self, key: str, *, version: int) -> OutlierResult | None:
        """The cached result for ``key`` at ``version``, or ``None``.

        A hit requires the entry to be unexpired *and* recorded at the
        caller's network version; failing either drops the entry (counted
        separately as expiration vs invalidation) and reports a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.version != version:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            if entry.expires_at is not None and self._clock() >= entry.expires_at:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.result

    def put(self, key: str, result: OutlierResult, *, version: int) -> None:
        """Insert ``result`` under ``key``, stamped with ``version``.

        Degraded results are cacheable on purpose — they are valid answers
        produced under pressure — but carry their flags with them, so a
        cache hit reports the degradation exactly as the original did.
        """
        if not self.enabled:
            return
        expires_at = (
            self._clock() + self.ttl_seconds
            if self.ttl_seconds is not None
            else None
        )
        with self._lock:
            self._entries[key] = _Entry(result, version, expires_at)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    # ------------------------------------------------------------------
    # Invalidation / introspection
    # ------------------------------------------------------------------
    def invalidate(self) -> int:
        """Drop every entry (operator-initiated); returns how many."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
            return dropped

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Point-in-time counters for the stats endpoint."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "enabled": self.enabled,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "ttl_seconds": self.ttl_seconds,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "expirations": self.expirations,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
            }
