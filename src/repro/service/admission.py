"""Admission control: a bounded in-flight budget with typed load shedding.

A service that queues without bound does not fail loudly — it fails by
letting every request's latency crawl toward infinity.  The
:class:`AdmissionController` enforces the alternative: at most
``capacity = workers + queue_depth`` requests may be admitted (executing or
waiting) at once, and a request beyond that is *shed* immediately with
:class:`~repro.exceptions.ServiceOverloadedError`, carrying a
``retry_after_seconds`` hint derived from the service's recent latency.

The enqueue path is instrumented with the ``service.enqueue`` fault point
(:mod:`repro.faultinject`), so the fault harness can simulate a stalled or
refusing queue; an injected fault there is converted into a shed — the
admission layer must never crash a request, only refuse it in a typed way.
"""

from __future__ import annotations

import threading

from repro import faultinject
from repro.exceptions import ServiceError, ServiceOverloadedError, TransientFaultError

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounded concurrent-admission counter with shedding counters.

    Parameters
    ----------
    capacity:
        Maximum requests admitted simultaneously (executing + queued).
    retry_after_seconds:
        Baseline retry hint attached to shed errors; callers may pass a
        live estimate per :meth:`admit` call instead.

    Notes
    -----
    This is intentionally a counter, not a queue: the service's worker pool
    already provides the FIFO; admission only decides *whether* a request
    may join it.  All state transitions happen under one lock, so counters
    are exact even under a thundering herd.
    """

    def __init__(
        self, capacity: int, *, retry_after_seconds: float = 0.1
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"admission capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.retry_after_seconds = retry_after_seconds
        self._lock = threading.Lock()
        self._in_flight = 0
        #: Requests admitted over the controller's lifetime.
        self.admitted = 0
        #: Requests refused because the budget was exhausted.
        self.shed = 0
        #: Requests refused because the enqueue fault point fired.
        self.faulted = 0
        #: High-water mark of simultaneous admissions.
        self.peak_in_flight = 0

    @property
    def in_flight(self) -> int:
        """Requests currently admitted (executing or queued)."""
        with self._lock:
            return self._in_flight

    def admit(self, *, retry_after_seconds: float | None = None) -> None:
        """Claim one admission slot or raise ``ServiceOverloadedError``.

        Every successful :meth:`admit` must be paired with exactly one
        :meth:`release` (the service does this in a ``finally`` around
        execution).  The ``service.enqueue`` fault point fires *before* the
        slot is claimed, so an injected queue stall sheds cleanly without
        leaking capacity.
        """
        hint = (
            retry_after_seconds
            if retry_after_seconds is not None
            else self.retry_after_seconds
        )
        with self._lock:
            try:
                faultinject.check("service.enqueue")
            except TransientFaultError as error:
                self.faulted += 1
                self.shed += 1
                raise ServiceOverloadedError(
                    f"request shed: the admission queue is stalled ({error})",
                    retry_after_seconds=hint,
                    queued=self._in_flight,
                    capacity=self.capacity,
                ) from error
            if self._in_flight >= self.capacity:
                self.shed += 1
                raise ServiceOverloadedError(
                    f"request shed: {self._in_flight} requests in flight, "
                    f"capacity {self.capacity}; retry in {hint:.3g}s",
                    retry_after_seconds=hint,
                    queued=self._in_flight,
                    capacity=self.capacity,
                )
            self._in_flight += 1
            self.admitted += 1
            self.peak_in_flight = max(self.peak_in_flight, self._in_flight)

    def release(self) -> None:
        """Return one admission slot (called when a request finishes)."""
        with self._lock:
            if self._in_flight <= 0:
                raise ServiceError("release() without a matching admit()")
            self._in_flight -= 1

    def snapshot(self) -> dict:
        """Point-in-time counters, keyed for the service's stats endpoint."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "in_flight": self._in_flight,
                "peak_in_flight": self.peak_in_flight,
                "admitted": self.admitted,
                "shed": self.shed,
                "faulted": self.faulted,
            }
