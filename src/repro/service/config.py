"""Tuning knobs for the concurrent query service.

One :class:`ServiceConfig` instance describes a deployment: which execution
backend runs queries (threads in-process, or worker processes over
shared-memory indexes), how many workers, how deep the admission queue may
grow before the service sheds load, the per-request time budget, and the
result cache's size and freshness window.  The CLI's ``repro serve`` flags
map onto these fields one-to-one (see ``docs/service.md`` for tuning
guidance).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.exceptions import ServiceError

__all__ = ["ServiceConfig", "auto_worker_count"]

#: Execution backends understood by the service layer.
BACKENDS = ("thread", "process")


def auto_worker_count() -> int:
    """Worker count for ``workers=0``: an estimate of *physical* cores.

    ``os.cpu_count()`` reports logical CPUs; on SMT machines that is twice
    the physical core count, and CPU-bound sparse kernels gain nothing from
    hyperthread siblings fighting over the same vector units.  Halving the
    logical count (floor 1) is the standard portable estimate — Python
    exposes no physical-core API.
    """
    return max(1, (os.cpu_count() or 1) // 2)


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable service deployment settings.

    Attributes
    ----------
    workers:
        Workers executing queries against the shared engine.  ``0``
        auto-sizes to the physical-core estimate of
        :func:`auto_worker_count` (the resolved count is stored, so
        ``config.workers`` is always the real pool size).
    backend:
        ``"thread"`` (default) runs queries on a thread pool sharing the
        parent's engine; ``"process"`` spawns worker processes that attach
        zero-copy shared-memory views of the warmed CSR index — the choice
        never changes results, only how the compute parallelizes (see
        ``docs/service.md``).
    queue_depth:
        Requests allowed to *wait* beyond the ones the workers are busy
        with.  A request arriving when ``workers + queue_depth`` requests
        are in flight is shed with
        :class:`~repro.exceptions.ServiceOverloadedError` — bounded queues
        are the backpressure mechanism, not a failure mode.
    timeout_seconds:
        Per-request cooperative deadline (``None`` = unlimited).  Enforced
        from the moment a worker picks the request up, via the engine's
        existing :class:`~repro.engine.deadline.Deadline` machinery, so a
        shed-or-degrade decision composes with the resilience ladder.
    cache_ttl_seconds:
        Result cache entry lifetime (``None`` = entries never expire; they
        still invalidate when the network/index version moves).
    cache_max_entries:
        Result cache capacity in entries; ``0`` disables result caching.
    collect_stats:
        Attach per-phase :class:`~repro.engine.stats.ExecutionStats` to
        results (the service's own counters are always collected).
    """

    workers: int = 4
    backend: str = "thread"
    queue_depth: int = 64
    timeout_seconds: float | None = None
    cache_ttl_seconds: float | None = 60.0
    cache_max_entries: int = 1024
    collect_stats: bool = True

    def __post_init__(self) -> None:
        if self.workers == 0:
            # Frozen dataclass: resolve the auto-size in place so every
            # consumer (admission capacity, stats, backends) sees the real
            # worker count rather than the sentinel.
            object.__setattr__(self, "workers", auto_worker_count())
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 0, got {self.workers}")
        if self.backend not in BACKENDS:
            raise ServiceError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.queue_depth < 0:
            raise ServiceError(
                f"queue_depth must be >= 0, got {self.queue_depth}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ServiceError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.cache_ttl_seconds is not None and self.cache_ttl_seconds < 0:
            raise ServiceError(
                f"cache_ttl_seconds must be >= 0, got {self.cache_ttl_seconds}"
            )
        if self.cache_max_entries < 0:
            raise ServiceError(
                f"cache_max_entries must be >= 0, got {self.cache_max_entries}"
            )

    @property
    def capacity(self) -> int:
        """Maximum concurrently admitted requests (executing + queued)."""
        return self.workers + self.queue_depth
