"""Tuning knobs for the concurrent query service.

One :class:`ServiceConfig` instance describes a deployment: which execution
backend runs queries (threads in-process, or worker processes over
shared-memory indexes), how many workers, how deep the admission queue may
grow before the service sheds load, the per-request time budget, and the
result cache's size and freshness window.  The CLI's ``repro serve`` flags
map onto these fields one-to-one (see ``docs/service.md`` for tuning
guidance).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.exceptions import ServiceError

__all__ = [
    "ServiceConfig",
    "RouterConfig",
    "SupervisorConfig",
    "auto_worker_count",
]

#: Execution backends understood by the service layer.
BACKENDS = ("thread", "process")


def auto_worker_count() -> int:
    """Worker count for ``workers=0``: an estimate of *physical* cores.

    ``os.cpu_count()`` reports logical CPUs; on SMT machines that is twice
    the physical core count, and CPU-bound sparse kernels gain nothing from
    hyperthread siblings fighting over the same vector units.  Halving the
    logical count (floor 1) is the standard portable estimate — Python
    exposes no physical-core API.
    """
    return max(1, (os.cpu_count() or 1) // 2)


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable service deployment settings.

    Attributes
    ----------
    workers:
        Workers executing queries against the shared engine.  ``0``
        auto-sizes to the physical-core estimate of
        :func:`auto_worker_count` (the resolved count is stored, so
        ``config.workers`` is always the real pool size).
    backend:
        ``"thread"`` (default) runs queries on a thread pool sharing the
        parent's engine; ``"process"`` spawns worker processes that attach
        zero-copy shared-memory views of the warmed CSR index — the choice
        never changes results, only how the compute parallelizes (see
        ``docs/service.md``).
    queue_depth:
        Requests allowed to *wait* beyond the ones the workers are busy
        with.  A request arriving when ``workers + queue_depth`` requests
        are in flight is shed with
        :class:`~repro.exceptions.ServiceOverloadedError` — bounded queues
        are the backpressure mechanism, not a failure mode.
    timeout_seconds:
        Per-request cooperative deadline (``None`` = unlimited).  Enforced
        from the moment a worker picks the request up, via the engine's
        existing :class:`~repro.engine.deadline.Deadline` machinery, so a
        shed-or-degrade decision composes with the resilience ladder.
    cache_ttl_seconds:
        Result cache entry lifetime (``None`` = entries never expire; they
        still invalidate when the network/index version moves).
    cache_max_entries:
        Result cache capacity in entries; ``0`` disables result caching.
    collect_stats:
        Attach per-phase :class:`~repro.engine.stats.ExecutionStats` to
        results (the service's own counters are always collected).
    subpath_cache_mb:
        Size budget (MiB) of the shared length-2 sub-path product cache
        consulted by every blocked materialization; ``0`` disables it.
    adaptive:
        Enable the workload-adaptive re-indexing loop (SPM strategy only):
        admitted queries feed a bounded admission log, and a background
        re-indexer periodically rebuilds the SPM index around the observed
        hot vertices and hot-swaps it atomically (``docs/service.md``,
        "Adaptive indexing").
    reindex_interval_seconds:
        Period of the background re-index cycle.
    reindex_min_queries:
        New admissions required since the last cycle before a re-plan is
        attempted — re-planning an unchanged workload wastes a rebuild.
    admission_log_entries:
        In-memory admission log window the re-indexer mines.
    admission_log_path:
        Optional JSONL file every admitted query key is appended to for
        offline workload inspection (``None`` = no spill).
    max_index_mb:
        Byte budget (MiB) for adaptively rebuilt SPM indexes; vertices are
        admitted hottest-first until the budget is exhausted (``None`` =
        unbounded, like the paper's static build).
    storage:
        Array storage tier: ``"ram"`` (default) keeps adjacency and index
        buffers on the heap; ``"mmap"`` spills them to read-only
        ``np.memmap`` files (see :mod:`repro.hin.storage`) and the process
        backend exports **file-backed** segments instead of ``/dev/shm``
        ones, so one copy of a many-GB index lives on disk rather than in
        RAM-backed tmpfs.
    storage_dir:
        Directory for mmap-tier array files and file-backed segments
        (``None`` = a private temp dir).
    index_build_block_rows:
        Row-block width of the out-of-core PM/SPM index builders used when
        ``storage="mmap"``.
    max_build_memory_mb:
        Optional per-block memory budget for the out-of-core build; blocks
        shrink below ``index_build_block_rows`` when a product's expected
        density would exceed it (``None`` = no shrink).
    """

    workers: int = 4
    backend: str = "thread"
    queue_depth: int = 64
    timeout_seconds: float | None = None
    cache_ttl_seconds: float | None = 60.0
    cache_max_entries: int = 1024
    collect_stats: bool = True
    subpath_cache_mb: float = 32.0
    adaptive: bool = False
    reindex_interval_seconds: float = 30.0
    reindex_min_queries: int = 32
    admission_log_entries: int = 4096
    admission_log_path: str | None = None
    max_index_mb: float | None = None
    storage: str = "ram"
    storage_dir: str | None = None
    index_build_block_rows: int = 8192
    max_build_memory_mb: float | None = None

    def __post_init__(self) -> None:
        if self.workers == 0:
            # Frozen dataclass: resolve the auto-size in place so every
            # consumer (admission capacity, stats, backends) sees the real
            # worker count rather than the sentinel.
            object.__setattr__(self, "workers", auto_worker_count())
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 0, got {self.workers}")
        if self.backend not in BACKENDS:
            raise ServiceError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.queue_depth < 0:
            raise ServiceError(
                f"queue_depth must be >= 0, got {self.queue_depth}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ServiceError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.cache_ttl_seconds is not None and self.cache_ttl_seconds < 0:
            raise ServiceError(
                f"cache_ttl_seconds must be >= 0, got {self.cache_ttl_seconds}"
            )
        if self.cache_max_entries < 0:
            raise ServiceError(
                f"cache_max_entries must be >= 0, got {self.cache_max_entries}"
            )
        if self.subpath_cache_mb < 0:
            raise ServiceError(
                f"subpath_cache_mb must be >= 0, got {self.subpath_cache_mb}"
            )
        if self.reindex_interval_seconds <= 0:
            raise ServiceError(
                "reindex_interval_seconds must be positive, got "
                f"{self.reindex_interval_seconds}"
            )
        if self.reindex_min_queries < 1:
            raise ServiceError(
                "reindex_min_queries must be >= 1, got "
                f"{self.reindex_min_queries}"
            )
        if self.admission_log_entries < 1:
            raise ServiceError(
                "admission_log_entries must be >= 1, got "
                f"{self.admission_log_entries}"
            )
        if self.max_index_mb is not None and self.max_index_mb <= 0:
            raise ServiceError(
                f"max_index_mb must be positive or None, got {self.max_index_mb}"
            )
        if self.storage not in ("ram", "mmap"):
            raise ServiceError(
                f"storage must be 'ram' or 'mmap', got {self.storage!r}"
            )
        if self.index_build_block_rows < 1:
            raise ServiceError(
                "index_build_block_rows must be >= 1, got "
                f"{self.index_build_block_rows}"
            )
        if self.max_build_memory_mb is not None and self.max_build_memory_mb <= 0:
            raise ServiceError(
                "max_build_memory_mb must be positive or None, got "
                f"{self.max_build_memory_mb}"
            )

    @property
    def segment_backing(self) -> str:
        """Transport of the process backend's shared segment.

        The mmap storage tier pairs with file-backed segments — the whole
        point is keeping the one shared index copy out of RAM-backed
        ``/dev/shm``.
        """
        return "file" if self.storage == "mmap" else "shm"

    @property
    def capacity(self) -> int:
        """Maximum concurrently admitted requests (executing + queued)."""
        return self.workers + self.queue_depth


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs for the consistent-hash replica router.

    Attributes
    ----------
    virtual_nodes:
        Ring positions per replica.  More virtual nodes smooth the key
        distribution (the classic consistent-hashing trade: memory and
        lookup cost vs balance); 64 keeps per-replica load within a few
        percent of even for small fleets.
    probe_interval_seconds:
        Period of the active health probe against each replica's
        ``/healthz``.  This bounds how long a dead or draining replica can
        keep receiving fresh keys: one interval.
    probe_timeout_seconds:
        Socket timeout of one probe request.
    attempt_timeout_seconds:
        Per-replica socket timeout for one forwarded request; an overrun
        counts as that replica failing and triggers failover.
    max_attempts:
        Distinct replicas tried (in ring order) before the router gives up
        with :class:`~repro.exceptions.NoReplicasAvailableError`.
    failover_backoff_seconds:
        Pause between failover attempts of one request — long enough to
        avoid hammering a fleet that is restarting, short enough that a
        client barely notices a single failover.
    breaker_threshold, breaker_reset_seconds:
        Per-replica circuit-breaker settings (consecutive failures to open;
        open window before the half-open trial).  Reuses
        :class:`~repro.engine.resilience.CircuitBreaker`.
    """

    virtual_nodes: int = 64
    probe_interval_seconds: float = 1.0
    probe_timeout_seconds: float = 2.0
    attempt_timeout_seconds: float = 30.0
    max_attempts: int = 3
    failover_backoff_seconds: float = 0.02
    breaker_threshold: int = 3
    breaker_reset_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.virtual_nodes < 1:
            raise ServiceError(
                f"virtual_nodes must be >= 1, got {self.virtual_nodes}"
            )
        if self.probe_interval_seconds <= 0:
            raise ServiceError(
                "probe_interval_seconds must be positive, got "
                f"{self.probe_interval_seconds}"
            )
        if self.probe_timeout_seconds <= 0:
            raise ServiceError(
                "probe_timeout_seconds must be positive, got "
                f"{self.probe_timeout_seconds}"
            )
        if self.attempt_timeout_seconds <= 0:
            raise ServiceError(
                "attempt_timeout_seconds must be positive, got "
                f"{self.attempt_timeout_seconds}"
            )
        if self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.failover_backoff_seconds < 0:
            raise ServiceError(
                "failover_backoff_seconds must be >= 0, got "
                f"{self.failover_backoff_seconds}"
            )
        if self.breaker_threshold < 1:
            raise ServiceError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_reset_seconds <= 0:
            raise ServiceError(
                "breaker_reset_seconds must be positive, got "
                f"{self.breaker_reset_seconds}"
            )


@dataclass(frozen=True)
class SupervisorConfig:
    """Restart policy for supervised ``repro serve`` replica processes.

    Attributes
    ----------
    restart_base_delay_seconds, restart_multiplier, restart_max_delay_seconds:
        Exponential backoff between successive restarts of one replica:
        ``base * multiplier**(restart - 1)``, capped at the max.
    restart_jitter_fraction:
        Uniform jitter applied to each delay (``delay * (1 ± fraction)``)
        so a fleet-wide crash does not restart in lockstep and hammer the
        shared network file / CPU simultaneously.
    max_restarts_in_window, restart_window_seconds:
        The crash-loop quarantine budget: a replica restarted more than
        ``max_restarts_in_window`` times within a sliding
        ``restart_window_seconds`` window is *quarantined* — taken out of
        rotation permanently (until an operator restarts the router) rather
        than forking forever.
    start_timeout_seconds:
        How long one replica may take to print its serving banner before
        start-up counts as a failure.
    stagger_seconds:
        Pause between initial replica launches, so N index builds do not
        all land on the same cores at the same instant.
    """

    restart_base_delay_seconds: float = 0.5
    restart_multiplier: float = 2.0
    restart_max_delay_seconds: float = 15.0
    restart_jitter_fraction: float = 0.2
    max_restarts_in_window: int = 5
    restart_window_seconds: float = 60.0
    start_timeout_seconds: float = 120.0
    stagger_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.restart_base_delay_seconds < 0:
            raise ServiceError(
                "restart_base_delay_seconds must be >= 0, got "
                f"{self.restart_base_delay_seconds}"
            )
        if self.restart_multiplier < 1.0:
            raise ServiceError(
                "restart_multiplier must be >= 1, got "
                f"{self.restart_multiplier}"
            )
        if self.restart_max_delay_seconds < self.restart_base_delay_seconds:
            raise ServiceError(
                "restart_max_delay_seconds must be >= the base delay, got "
                f"{self.restart_max_delay_seconds}"
            )
        if not 0.0 <= self.restart_jitter_fraction <= 1.0:
            raise ServiceError(
                "restart_jitter_fraction must be in [0, 1], got "
                f"{self.restart_jitter_fraction}"
            )
        if self.max_restarts_in_window < 0:
            raise ServiceError(
                "max_restarts_in_window must be >= 0, got "
                f"{self.max_restarts_in_window}"
            )
        if self.restart_window_seconds <= 0:
            raise ServiceError(
                "restart_window_seconds must be positive, got "
                f"{self.restart_window_seconds}"
            )
        if self.start_timeout_seconds <= 0:
            raise ServiceError(
                "start_timeout_seconds must be positive, got "
                f"{self.start_timeout_seconds}"
            )
        if self.stagger_seconds < 0:
            raise ServiceError(
                f"stagger_seconds must be >= 0, got {self.stagger_seconds}"
            )
