"""Tuning knobs for the concurrent query service.

One :class:`ServiceConfig` instance describes a deployment: how many worker
threads execute queries, how deep the admission queue may grow before the
service sheds load, the per-request time budget, and the result cache's
size and freshness window.  The CLI's ``repro serve`` flags map onto these
fields one-to-one (see ``docs/service.md`` for tuning guidance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ServiceError

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable service deployment settings.

    Attributes
    ----------
    workers:
        Worker threads executing queries against the shared engine.
    queue_depth:
        Requests allowed to *wait* beyond the ones the workers are busy
        with.  A request arriving when ``workers + queue_depth`` requests
        are in flight is shed with
        :class:`~repro.exceptions.ServiceOverloadedError` — bounded queues
        are the backpressure mechanism, not a failure mode.
    timeout_seconds:
        Per-request cooperative deadline (``None`` = unlimited).  Enforced
        from the moment a worker picks the request up, via the engine's
        existing :class:`~repro.engine.deadline.Deadline` machinery, so a
        shed-or-degrade decision composes with the resilience ladder.
    cache_ttl_seconds:
        Result cache entry lifetime (``None`` = entries never expire; they
        still invalidate when the network/index version moves).
    cache_max_entries:
        Result cache capacity in entries; ``0`` disables result caching.
    collect_stats:
        Attach per-phase :class:`~repro.engine.stats.ExecutionStats` to
        results (the service's own counters are always collected).
    """

    workers: int = 4
    queue_depth: int = 64
    timeout_seconds: float | None = None
    cache_ttl_seconds: float | None = 60.0
    cache_max_entries: int = 1024
    collect_stats: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.queue_depth < 0:
            raise ServiceError(
                f"queue_depth must be >= 0, got {self.queue_depth}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ServiceError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.cache_ttl_seconds is not None and self.cache_ttl_seconds < 0:
            raise ServiceError(
                f"cache_ttl_seconds must be >= 0, got {self.cache_ttl_seconds}"
            )
        if self.cache_max_entries < 0:
            raise ServiceError(
                f"cache_max_entries must be >= 0, got {self.cache_max_entries}"
            )

    @property
    def capacity(self) -> int:
        """Maximum concurrently admitted requests (executing + queued)."""
        return self.workers + self.queue_depth
