"""Canonical query keys — the one normal form shared across the stack.

Three layers key on "the same query": the result cache (memoization slot),
the replica router (consistent-hash placement so a recurring query lands on
the replica whose caches are warm), and the adaptive workload recorder (hot
query mining).  All three MUST agree byte-for-byte, or a query routes to a
replica whose cache keys it differently and every hit turns into a miss —
so the canonicalization lives here, once, and the regression test in
``tests/service/test_keys.py`` pins the call sites together.

Canonicalization reuses the query language round-trip
(:func:`~repro.query.parser.parse_query` →
:func:`~repro.query.formatter.format_query`), the same normal form the
formatter's property tests guarantee re-parses identically.
"""

from __future__ import annotations

import json

from repro.query.ast import Query
from repro.query.formatter import format_query
from repro.query.parser import parse_query

__all__ = ["canonical_query_key", "extract_query_text"]


def canonical_query_key(query: str | Query) -> str:
    """One canonical text per query meaning.

    Parses (when given text) and re-formats, so all textual spellings of
    the same query share a cache slot.  Raises
    :class:`~repro.exceptions.QueryError` for malformed queries — the
    service surfaces that as a client error *before* spending an admission
    slot.
    """
    ast = parse_query(query) if isinstance(query, str) else query
    return format_query(ast)


def extract_query_text(body: bytes) -> str:
    """The ``"query"`` string out of a ``POST /query`` JSON body.

    The one body-parsing rule both HTTP front doors (replica and router)
    apply, so a body one accepts is never rejected by the other.  Raises
    ``json.JSONDecodeError`` for malformed JSON, ``KeyError`` when the
    field is absent, and ``TypeError`` when the payload is not an object
    or the field is not a string — callers catch exactly that triple and
    shape a 400.
    """
    payload = json.loads(body or b"{}")
    query_text = payload["query"]
    if not isinstance(query_text, str):
        raise TypeError("'query' must be a string")
    return query_text
