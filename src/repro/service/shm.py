"""Zero-copy shared-memory transport for warmed CSR arrays.

The process backend (:mod:`repro.service.backends`) must give every worker
process the same multi-hundred-megabyte adjacency and PM/SPM index matrices
without N copies of them.  This module implements the flat-buffer layer that
makes that possible:

* :func:`export_arrays` packs a set of named numpy arrays into **one**
  ``multiprocessing.shared_memory`` segment (64-byte-aligned slots) and
  returns an owner handle plus a picklable :class:`SegmentManifest`
  describing every array's dtype, shape, and offset.
* :func:`attach_arrays` maps that segment inside a worker process and
  rebuilds the arrays as **views** over the shared buffer — zero bytes
  copied, marked read-only so an accidental in-place mutation fails loudly
  instead of corrupting every other worker.
* A content :func:`fingerprint` travels with the manifest and is recomputed
  on attach, so a torn, stale, or mismatched segment is rejected before the
  engine ever multiplies through it.

Lifecycle: the parent owns the segment (create → close+unlink); workers
only ever ``close`` their mapping.  :func:`active_segments` tracks segments
this process created and has not yet unlinked — the cleanup regression
tests assert it drains to empty on every path, including error paths.
"""

from __future__ import annotations

import hashlib
import secrets
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Mapping

import numpy as np

from repro.exceptions import ServiceError

__all__ = [
    "ArraySpec",
    "SegmentManifest",
    "SharedArraySegment",
    "active_segments",
    "attach_arrays",
    "export_arrays",
]

#: Slot alignment inside the segment; 64 bytes keeps every array on its own
#: cache line and satisfies any SIMD alignment numpy/scipy could want.
_ALIGN = 64

#: Bytes of head/tail content hashed per array.  Hashing whole gigabyte
#: segments on every attach would dominate worker start-up; shape + dtype +
#: nbytes + boundary bytes catches the realistic failure modes (wrong
#: segment, torn write, stale manifest) at O(1) cost per array.
_DIGEST_SPAN = 1024

# Segments created (and not yet unlinked) by this process, for leak checks.
_ACTIVE: set[str] = set()
_ACTIVE_LOCK = threading.Lock()


def active_segments() -> set[str]:
    """Names of shared-memory segments this process currently owns."""
    with _ACTIVE_LOCK:
        return set(_ACTIVE)


@dataclass(frozen=True)
class ArraySpec:
    """Location and layout of one array inside a shared segment."""

    key: str
    dtype: str
    shape: tuple[int, ...]
    offset: int
    nbytes: int


@dataclass(frozen=True)
class SegmentManifest:
    """Everything a worker needs to reattach a segment (picklable)."""

    segment: str
    total_bytes: int
    arrays: tuple[ArraySpec, ...]
    fingerprint: str


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _digest_update(digest, spec: ArraySpec, view: np.ndarray) -> None:
    digest.update(spec.key.encode())
    digest.update(spec.dtype.encode())
    digest.update(repr(spec.shape).encode())
    digest.update(spec.nbytes.to_bytes(8, "little"))
    # Head and tail spans, without materializing the whole buffer.
    buffer = view.view(np.uint8).reshape(-1)
    digest.update(buffer[:_DIGEST_SPAN].tobytes())
    if buffer.size > _DIGEST_SPAN:
        digest.update(buffer[-_DIGEST_SPAN:].tobytes())


def fingerprint(specs: "tuple[ArraySpec, ...]", views: Mapping[str, np.ndarray]) -> str:
    """Content fingerprint over array layout plus boundary bytes."""
    digest = hashlib.blake2b(digest_size=16)
    for spec in specs:
        _digest_update(digest, spec, np.ascontiguousarray(views[spec.key]))
    return digest.hexdigest()


class SharedArraySegment:
    """Owner-side handle of one exported segment.

    ``close()`` drops this process's mapping; ``unlink()`` removes the
    segment from the OS (idempotent).  The parent service calls both on
    shutdown — workers never unlink.
    """

    def __init__(self, shm: shared_memory.SharedMemory, manifest: SegmentManifest) -> None:
        self._shm = shm
        self.manifest = manifest
        self._unlinked = False

    @property
    def name(self) -> str:
        return self.manifest.segment

    def close(self) -> None:
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - platform-specific double close
            pass

    def unlink(self) -> None:
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        finally:
            with _ACTIVE_LOCK:
                _ACTIVE.discard(self.manifest.segment)

    def release(self) -> None:
        """Close the mapping and unlink the segment (full owner teardown)."""
        self.close()
        self.unlink()


def export_arrays(
    arrays: Mapping[str, np.ndarray], *, name_hint: str = "repro"
) -> SharedArraySegment:
    """Pack ``arrays`` into one new shared-memory segment.

    Arrays are copied once (parent → segment); the returned manifest lets
    any process rebuild zero-copy views with :func:`attach_arrays`.  Keys
    are preserved; iteration order determines layout, so the fingerprint is
    deterministic for a deterministic input mapping.
    """
    specs: list[ArraySpec] = []
    offset = 0
    contiguous: dict[str, np.ndarray] = {}
    for key, array in arrays.items():
        view = np.ascontiguousarray(array)
        contiguous[key] = view
        offset = _aligned(offset)
        specs.append(
            ArraySpec(
                key=key,
                dtype=view.dtype.str,
                shape=tuple(int(s) for s in view.shape),
                offset=offset,
                nbytes=int(view.nbytes),
            )
        )
        offset += int(view.nbytes)
    total = max(offset, 1)  # zero-byte segments are not creatable
    name = f"{name_hint}-{secrets.token_hex(6)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=total)
    with _ACTIVE_LOCK:
        _ACTIVE.add(shm.name)
    try:
        for spec in specs:
            target = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=shm.buf,
                offset=spec.offset,
            )
            target[...] = contiguous[spec.key]
        spec_tuple = tuple(specs)
        views = {
            spec.key: np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=shm.buf,
                offset=spec.offset,
            )
            for spec in spec_tuple
        }
        manifest = SegmentManifest(
            segment=shm.name,
            total_bytes=total,
            arrays=spec_tuple,
            fingerprint=fingerprint(spec_tuple, views),
        )
    except BaseException:
        # Creation failed mid-copy: never leak the segment.
        shm.close()
        shm.unlink()
        with _ACTIVE_LOCK:
            _ACTIVE.discard(name)
        raise
    return SharedArraySegment(shm, manifest)


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach ``shm`` from the resource tracker when it would over-clean.

    Python < 3.13 registers every *attached* segment with a resource
    tracker, and a tracker unlinks everything still registered when it
    shuts down.  Which tracker matters:

    * ``multiprocessing`` children inherit the parent's tracker — their
      attach-register is a set no-op and their exit unlinks nothing, so
      unregistering here would instead erase the *owner's* registration.
      Skip.
    * A process that started its **own** tracker (``_pid`` set) would
      unlink the shared segment when it exits — destroying data the owner
      still serves.  Unregister the attachment so only the owner's
      ``unlink()`` removes the segment.  (3.13+ exposes ``track=False``
      for exactly this; this keeps 3.10–3.12 correct.)
    """
    tracker = getattr(resource_tracker, "_resource_tracker", None)
    if tracker is None or getattr(tracker, "_pid", None) is None:
        return  # inherited (or no) tracker: registration belongs to the owner
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # pragma: no cover - tracker not running / renamed API
        pass


def attach_arrays(
    manifest: SegmentManifest, *, verify: bool = True
) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Map an exported segment and rebuild read-only zero-copy views.

    Raises
    ------
    ServiceError
        When the segment cannot be found or its content fingerprint does
        not match the manifest (stale or torn export).
    """
    try:
        shm = shared_memory.SharedMemory(name=manifest.segment)
    except FileNotFoundError as error:
        raise ServiceError(
            f"shared-memory segment {manifest.segment!r} is gone; was the "
            "service closed while workers were starting?"
        ) from error
    # Workers must detach from the resource tracker (it would unlink on
    # their exit); the owner process attaching to its *own* segment must
    # not, or the create-time registration would be dropped twice.
    with _ACTIVE_LOCK:
        owner = manifest.segment in _ACTIVE
    if not owner:
        _untrack(shm)
    views: dict[str, np.ndarray] = {}
    for spec in manifest.arrays:
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=shm.buf,
            offset=spec.offset,
        )
        view.flags.writeable = False
        views[spec.key] = view
    if verify:
        observed = fingerprint(manifest.arrays, views)
        if observed != manifest.fingerprint:
            shm.close()
            raise ServiceError(
                f"shared-memory segment {manifest.segment!r} failed its "
                f"fingerprint check ({observed} != {manifest.fingerprint}); "
                "refusing to serve from a torn or mismatched index"
            )
    return shm, views
